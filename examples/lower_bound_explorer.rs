//! Explore the Fekete/Theorem 2 lower-bound landscape: how many rounds
//! 1-agreement on a tree *must* take, as a function of diameter and the
//! corruption ratio.
//!
//! ```sh
//! cargo run --example lower_bound_explorer
//! ```

use tree_aa_repro::lower_bound::{
    fekete_k, max_product_partition, round_lower_bound, theorem2_formula,
};

fn main() {
    println!("Optimal Byzantine budget partitions (sup prod t_i, budget t, <= R parts):");
    for (t, r) in [(6usize, 2usize), (6, 6), (10, 3), (12, 12)] {
        let p = max_product_partition(t, r);
        let prod: usize = p.iter().product();
        println!("  t = {t:>2}, R = {r:>2}: {p:?} -> product {prod}");
    }

    println!("\nK(R, D): the spread Fekete's chain forces after R rounds");
    println!("(n = 31, t = 10, D = 10^6):");
    for r in 1..=10u32 {
        let k = fekete_k(r, 1e6, 31, 10);
        let marker = if k > 1.0 {
            "  <- 1-agreement impossible"
        } else {
            ""
        };
        println!("  R = {r:>2}: K = {k:>14.4}{marker}");
    }

    println!("\nExact round lower bounds vs the Theorem 2 closed form:");
    println!(
        "{:>12} {:>8} {:>8} {:>10} {:>10}",
        "D(T)", "n", "t", "exact LB", "formula"
    );
    for exp in [4u32, 8, 16, 32, 64] {
        let d = 2f64.powi(exp as i32);
        for (n, t) in [(31usize, 10usize), (100, 33), (100, 5)] {
            println!(
                "{:>12} {:>8} {:>8} {:>10} {:>10.2}",
                format!("2^{exp}"),
                n,
                t,
                round_lower_bound(d, n, t),
                theorem2_formula(d, n, t)
            );
        }
    }
    println!(
        "\nReading: more Byzantine parties (t closer to n/3) and larger diameters \
         both push the bound up; with t = Theta(n) it grows as log D / log log D."
    );
}
