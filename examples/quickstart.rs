//! Quickstart: approximate agreement on a small tree with one Byzantine
//! party.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::error::Error;
use std::sync::Arc;

use tree_aa_repro::sim_net::{run_simulation, PartyId, SimConfig};
use tree_aa_repro::tree_aa::adversary::TreeAaChaos;
use tree_aa_repro::tree_aa::{check_tree_aa, EngineKind, TreeAaConfig, TreeAaParty};
use tree_aa_repro::tree_model::Tree;

fn main() -> Result<(), Box<dyn Error>> {
    // The public input space: the paper's Figure 3 tree.
    let tree = Arc::new(Tree::from_labeled_edges(
        ["v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8"],
        [
            ("v1", "v2"),
            ("v2", "v3"),
            ("v3", "v6"),
            ("v3", "v7"),
            ("v2", "v4"),
            ("v4", "v8"),
            ("v2", "v5"),
        ],
    )?);

    // Four parties; up to one Byzantine. Parties 0-2 are honest with
    // inputs v6, v5, v3; party 3 is controlled by a chaos adversary.
    let (n, t) = (4, 1);
    let inputs: Vec<_> = ["v6", "v5", "v3", "v8"]
        .iter()
        .map(|l| tree.vertex(l).expect("label exists"))
        .collect();

    let cfg = TreeAaConfig::new(n, t, EngineKind::Gradecast, &tree)
        .map_err(|e| format!("bad parameters: {e}"))?;
    println!(
        "TreeAA on |V| = {} (D = {}): {} communication rounds",
        tree.vertex_count(),
        tree.diameter(),
        cfg.total_rounds()
    );

    let adversary = TreeAaChaos::new(vec![PartyId(3)], 7, 2.0 * tree.vertex_count() as f64);
    let report = run_simulation(
        SimConfig {
            n,
            t,
            max_rounds: cfg.total_rounds() + 5,
        },
        |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
        adversary,
    )?;

    let honest_inputs = &inputs[..3];
    let outputs = report.honest_outputs();
    for (i, &v) in outputs.iter().enumerate() {
        println!(
            "party {i}: input {} -> output {}",
            tree.label(inputs[i]),
            tree.label(v)
        );
    }

    // Definition 2: outputs are 1-close and inside the honest hull.
    check_tree_aa(&tree, honest_inputs, &outputs)?;
    println!("validity and 1-agreement verified.");
    Ok(())
}
