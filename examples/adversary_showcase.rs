//! A tour of the adversary framework: the same `RealAA` instance run
//! against progressively nastier fault models, with the Byzantine
//! detection (muting) made visible.
//!
//! ```sh
//! cargo run --example adversary_showcase
//! ```

use std::error::Error;

use tree_aa_repro::real_aa::adversary::{
    equal_split_schedule, BudgetSplitEquivocator, RealAaChaos,
};
use tree_aa_repro::real_aa::{RealAaConfig, RealAaParty};
use tree_aa_repro::sim_net::{
    run_simulation, Adversary, CrashAdversary, PartyId, Passive, SimConfig,
};

fn spread(outs: &[f64]) -> f64 {
    let lo = outs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = outs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    hi - lo
}

fn run_with<A>(name: &str, adversary: A) -> Result<(), Box<dyn Error>>
where
    A: Adversary<tree_aa_repro::real_aa::RealAaMsg>,
{
    let (n, t) = (7, 2);
    let d = 100.0;
    let cfg = RealAaConfig::new(n, t, 1.0, d).map_err(|e| format!("bad parameters: {e}"))?;
    let inputs: Vec<f64> = (0..n).map(|i| d * i as f64 / (n - 1) as f64).collect();
    let report = run_simulation(
        SimConfig {
            n,
            t,
            max_rounds: cfg.rounds() + 5,
        },
        |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
        adversary,
    )?;
    let outs = report.honest_outputs();
    println!(
        "{name:<22} rounds {:>3}   messages {:>6}   final spread {:.4}   (eps = 1)",
        report.communication_rounds(),
        report.metrics.total_messages(),
        spread(&outs),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("RealAA, n = 7, t = 2, inputs spread over [0, 100]:\n");

    run_with("passive", Passive)?;
    run_with(
        "crash (2 parties)",
        CrashAdversary {
            crashes: vec![(PartyId(0), 2), (PartyId(1), 5)],
        },
    )?;
    run_with(
        "chaos spam",
        RealAaChaos::new(vec![PartyId(0), PartyId(1)], 11, (-50.0, 150.0)),
    )?;
    run_with(
        "budget-split [1,1]",
        BudgetSplitEquivocator::new(7, vec![PartyId(0), PartyId(1)], equal_split_schedule(2, 2)),
    )?;
    run_with(
        "budget-split [2]",
        BudgetSplitEquivocator::new(7, vec![PartyId(0), PartyId(1)], vec![2]),
    )?;

    println!(
        "\nEvery strategy leaves the honest outputs within the honest input range \
         and within eps of each other; the budget-split strategies are the ones \
         that track Fekete's lower-bound envelope (see experiment E2)."
    );
    Ok(())
}
