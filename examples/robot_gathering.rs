//! Robot gathering on a tree-shaped road network — one of the motivating
//! applications in the paper's introduction (and the framing of the
//! Edge-Gathering literature it cites).
//!
//! A fleet of robots is scattered over a map whose road network is a tree
//! (a spider: depot in the middle, radial roads). Each robot knows the map
//! and its own position; some robots are compromised and lie arbitrarily.
//! The honest robots must pick rendezvous points that are (i) on the part
//! of the map between honest robots — no detours past compromised
//! positions — and (ii) identical or adjacent, so they end up within one
//! road segment of each other.
//!
//! ```sh
//! cargo run --example robot_gathering
//! ```

use std::error::Error;
use std::sync::Arc;

use tree_aa_repro::sim_net::{run_simulation, PartyId, SimConfig};
use tree_aa_repro::tree_aa::adversary::TreeAaChaos;
use tree_aa_repro::tree_aa::{check_tree_aa, EngineKind, TreeAaConfig, TreeAaParty};
use tree_aa_repro::tree_model::generate;

fn main() -> Result<(), Box<dyn Error>> {
    // The map: a depot with 5 radial roads of 6 segments each.
    let map = Arc::new(generate::spider(5, 6));
    println!(
        "road network: {} junctions, farthest pair {} segments apart",
        map.vertex_count(),
        map.diameter()
    );

    // Seven robots, up to two compromised (ids 5 and 6 here).
    let (n, t) = (7, 2);
    let positions: Vec<_> = [
        "v0003", "v0005", "v0009", "v0002", "v0008", "v0013", "v0030",
    ]
    .iter()
    .map(|l| map.vertex(l).expect("position on the map"))
    .collect();
    for (i, &p) in positions.iter().enumerate() {
        let role = if i < 5 { "honest" } else { "compromised" };
        println!("robot {i} ({role}) starts at {}", map.label(p));
    }

    let cfg = TreeAaConfig::new(n, t, EngineKind::Gradecast, &map)
        .map_err(|e| format!("bad parameters: {e}"))?;
    println!(
        "gathering protocol: {} synchronous rounds",
        cfg.total_rounds()
    );

    let adversary = TreeAaChaos::new(
        vec![PartyId(5), PartyId(6)],
        2024,
        2.0 * map.vertex_count() as f64,
    );
    let report = run_simulation(
        SimConfig {
            n,
            t,
            max_rounds: cfg.total_rounds() + 5,
        },
        |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(&map), positions[id.index()]),
        adversary,
    )?;

    let honest_positions = &positions[..5];
    let rendezvous = report.honest_outputs();
    for (i, &v) in rendezvous.iter().enumerate() {
        println!("robot {i} heads to {}", map.label(v));
    }

    check_tree_aa(&map, honest_positions, &rendezvous)?;
    println!(
        "rendezvous points verified: within one road segment of each other, \
         and between honest starting positions."
    );
    Ok(())
}
