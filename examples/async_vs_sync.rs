//! Synchronous vs asynchronous agreement on the same tree — the model
//! comparison behind the paper's contribution.
//!
//! The same fleet, map, and fault pattern runs three ways: the paper's
//! synchronous `TreeAA`, the synchronous safe-area baseline, and the
//! asynchronous safe-area protocol (reliable broadcast + witnesses) under
//! a hostile delivery schedule where one honest party's links are slow.
//!
//! ```sh
//! cargo run --example async_vs_sync
//! ```

use std::error::Error;
use std::sync::Arc;

use tree_aa_repro::async_aa::{AsyncTreeAaConfig, AsyncTreeAaParty};
use tree_aa_repro::async_net::{run_async, AsyncConfig, DelayModel, SilentAsync};
use tree_aa_repro::sim_net::{run_simulation, CrashAdversary, Outcome, PartyId, SimConfig};
use tree_aa_repro::tree_aa::{
    check_tree_aa, EngineKind, NowakRybickiConfig, NowakRybickiParty, TreeAaConfig, TreeAaParty,
};
use tree_aa_repro::tree_model::{generate, VertexId};

fn main() -> Result<(), Box<dyn Error>> {
    let tree = Arc::new(generate::caterpillar(40, 2));
    let (n, t) = (7, 2);
    let m = tree.vertex_count();
    let inputs: Vec<VertexId> = (0..n)
        .map(|i| tree.vertices().nth((i * 17) % m).expect("in range"))
        .collect();
    let faulty = [PartyId(2), PartyId(5)];
    let honest_inputs: Vec<VertexId> = (0..n)
        .filter(|&i| i != 2 && i != 5)
        .map(|i| inputs[i])
        .collect();
    println!(
        "map: caterpillar, |V| = {m}, D = {}; n = {n}, t = {t}, parties 2 and 5 faulty\n",
        tree.diameter()
    );

    // 1. Synchronous TreeAA (the paper).
    let cfg = TreeAaConfig::new(n, t, EngineKind::Gradecast, &tree)
        .map_err(|e| format!("bad parameters: {e}"))?;
    let report = run_simulation(
        SimConfig {
            n,
            t,
            max_rounds: cfg.total_rounds() + 5,
        },
        |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
        CrashAdversary {
            crashes: faulty.iter().map(|&p| (p, 3)).collect(),
        },
    )?;
    check_tree_aa(&tree, &honest_inputs, &report.honest_outputs())?;
    println!(
        "synchronous TreeAA      {:>6} rounds   {:>7} messages",
        report.communication_rounds(),
        report.metrics.total_messages()
    );

    // 2. Synchronous safe-area baseline.
    let nr = NowakRybickiConfig::new(n, t, &tree).map_err(|e| format!("bad parameters: {e}"))?;
    let report = run_simulation(
        SimConfig {
            n,
            t,
            max_rounds: nr.rounds() + 5,
        },
        |id, _| NowakRybickiParty::new(id, nr.clone(), Arc::clone(&tree), inputs[id.index()]),
        CrashAdversary {
            crashes: faulty.iter().map(|&p| (p, 3)).collect(),
        },
    )?;
    check_tree_aa(&tree, &honest_inputs, &report.honest_outputs())?;
    println!(
        "synchronous safe-area   {:>6} rounds   {:>7} messages",
        report.communication_rounds(),
        report.metrics.total_messages()
    );

    // 3. Asynchronous safe-area protocol with a slow honest party: no
    //    round clock exists, so "time" counts normalized delay units.
    let acfg = AsyncTreeAaConfig::new(n, t, &tree).map_err(|e| format!("bad parameters: {e}"))?;
    let report = run_async(
        AsyncConfig {
            n,
            t,
            seed: 42,
            delay: DelayModel::SlowParties {
                slow: vec![PartyId(0)],
                min: 0.05,
            },
            max_events: 10_000_000,
        },
        |id, _| AsyncTreeAaParty::new(acfg.clone(), Arc::clone(&tree), inputs[id.index()]),
        SilentAsync {
            parties: faulty.to_vec(),
        },
    )?;
    let outputs: Vec<_> = report
        .honest_outputs()
        .into_iter()
        .map(Outcome::into_value)
        .collect();
    check_tree_aa(&tree, &honest_inputs, &outputs)?;
    println!(
        "asynchronous safe-area  {:>6.1} time    {:>7} messages (slow-party schedule)",
        report.completion_time, report.messages_delivered
    );

    println!(
        "\nAll three satisfy Definition 2 on this run. The paper's point is the \
         first number's growth law: O(log|V|/loglog|V|) for TreeAA vs O(log D) \
         for both safe-area protocols — see experiments E3 and E13."
    );
    Ok(())
}
