//! Version reconciliation on a fork tree — a discrete input space where
//! real-valued AA does not apply but AA on trees does.
//!
//! Replicas of a data store have observed different versions of an object
//! whose history forms a *fork tree* (each version has one parent; forks
//! create branches). After a partition heals, the replicas must converge
//! on a common rollback/repair version that is (i) on the history between
//! versions honest replicas actually saw — never a fabricated branch —
//! and (ii) agreed up to one step, so at most one final sync hop remains.
//! Up to `t` replicas may be malicious and claim arbitrary versions.
//!
//! ```sh
//! cargo run --example version_reconciliation
//! ```

use std::error::Error;
use std::sync::Arc;

use tree_aa_repro::sim_net::{run_simulation, PartyId, SimConfig};
use tree_aa_repro::tree_aa::adversary::TreeAaChaos;
use tree_aa_repro::tree_aa::{check_tree_aa, EngineKind, TreeAaConfig, TreeAaParty};
use tree_aa_repro::tree_model::TreeBuilder;

fn main() -> Result<(), Box<dyn Error>> {
    // Version history: trunk r0..r4, a feature branch off r2, a hotfix
    // branch off r3, and a stale branch off r1.
    let mut b = TreeBuilder::new();
    for v in [
        "r0",
        "r1",
        "r2",
        "r3",
        "r4", // trunk
        "r2-feat-1",
        "r2-feat-2", // feature branch off r2
        "r3-fix-1",  // hotfix off r3
        "r1-old-1",
        "r1-old-2", // stale branch off r1
    ] {
        b.add_vertex(v)?;
    }
    for (p, c) in [
        ("r0", "r1"),
        ("r1", "r2"),
        ("r2", "r3"),
        ("r3", "r4"),
        ("r2", "r2-feat-1"),
        ("r2-feat-1", "r2-feat-2"),
        ("r3", "r3-fix-1"),
        ("r1", "r1-old-1"),
        ("r1-old-1", "r1-old-2"),
    ] {
        b.add_edge(p, c)?;
    }
    let history = Arc::new(b.build()?);

    // Four replicas; replica 3 is malicious.
    let (n, t) = (4, 1);
    let observed: Vec<_> = ["r4", "r2-feat-2", "r3-fix-1", "r1-old-2"]
        .iter()
        .map(|l| history.vertex(l).expect("known version"))
        .collect();
    println!("replica observations:");
    for (i, &v) in observed.iter().enumerate() {
        let role = if i < 3 { "honest" } else { "malicious" };
        println!("  replica {i} ({role}): {}", history.label(v));
    }

    let cfg = TreeAaConfig::new(n, t, EngineKind::Gradecast, &history)
        .map_err(|e| format!("bad parameters: {e}"))?;
    let adversary = TreeAaChaos::new(vec![PartyId(3)], 99, 2.0 * history.vertex_count() as f64);
    let report = run_simulation(
        SimConfig {
            n,
            t,
            max_rounds: cfg.total_rounds() + 5,
        },
        |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(&history), observed[id.index()]),
        adversary,
    )?;

    let honest_observed = &observed[..3];
    let repair = report.honest_outputs();
    println!(
        "\nreconciliation targets after {} rounds:",
        cfg.total_rounds()
    );
    for (i, &v) in repair.iter().enumerate() {
        println!("  replica {i} rolls to {}", history.label(v));
    }

    check_tree_aa(&history, honest_observed, &repair)?;
    println!(
        "\nverified: every target is on the history between honest observations \
         (the stale r1-old-* branch was never chosen), and all targets are \
         identical or parent/child."
    );
    Ok(())
}
