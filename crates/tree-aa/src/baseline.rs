//! The Nowak–Rybicki safe-area baseline: iteration-based AA on trees in
//! `O(log D(T))` rounds (DISC 2019), adapted to the synchronous model.
//!
//! This is the protocol the paper improves on; the E3 experiment compares
//! its round count against `TreeAA`. Each iteration costs one round:
//! broadcast the current vertex, compute the *safe area* — the
//! intersection of the convex hulls of all `(n − t)`-subsets of the
//! received vertices — and move to the midpoint of the safe area's
//! diameter path.
//!
//! The safe-area intersection has a linear-time characterization on trees:
//! `w` is safe for a received multiset `M` iff **every** component of
//! `T ∖ {w}` contains at most `n − t − 1` elements of `M` (otherwise some
//! `(n − t)`-subset lies entirely in one component and its hull misses
//! `w`). By Helly's property for subtrees the safe area is a non-empty
//! subtree whenever `|M| ≥ n − t` and at most `t` elements are Byzantine.

use std::sync::Arc;

use sim_net::{Inbox, PartyId, Payload, Protocol, RoundCtx};
use tree_model::{Tree, VertexId};

/// Public parameters of the baseline.
#[derive(Clone, Debug)]
pub struct NowakRybickiConfig {
    /// Number of parties.
    pub n: usize,
    /// Corruption bound; requires `t < n/3`.
    pub t: usize,
    /// Fixed iteration count (1 round each).
    pub iterations: u32,
}

impl NowakRybickiConfig {
    /// Derives the configuration from the public tree:
    /// `⌈log₂ D(T)⌉ + 2` iterations (the diameter of the honest vertices
    /// at least halves per iteration; the slack absorbs the final
    /// rounding steps, and the fixed count keeps termination simultaneous).
    ///
    /// # Errors
    ///
    /// Returns a description of the violated precondition if `n ≤ 3t`.
    pub fn new(n: usize, t: usize, tree: &Tree) -> Result<Self, String> {
        if n <= 3 * t {
            return Err(format!(
                "safe-area AA requires n > 3t, got n = {n}, t = {t}"
            ));
        }
        let d = tree.diameter();
        let iterations = if d <= 1 {
            0
        } else {
            (d as f64).log2().ceil() as u32 + 2
        };
        Ok(NowakRybickiConfig { n, t, iterations })
    }

    /// Total communication rounds (1 per iteration).
    pub fn rounds(&self) -> u32 {
        self.iterations
    }
}

/// A broadcast vertex (iteration-tagged; dense vertex index on the wire).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlainVertexMsg {
    /// Iteration index (0-based).
    pub iter: u32,
    /// Dense index of the sender's current vertex.
    pub vertex: u32,
}

impl Payload for PlainVertexMsg {
    fn size_bytes(&self) -> usize {
        8
    }
}

/// One party of the safe-area baseline.
#[derive(Clone, Debug)]
pub struct NowakRybickiParty {
    cfg: NowakRybickiConfig,
    tree: Arc<Tree>,
    vertex: VertexId,
    iterations_done: u32,
    output: Option<VertexId>,
}

impl NowakRybickiParty {
    /// Creates the party with its input vertex.
    ///
    /// # Panics
    ///
    /// Panics if `me` or `input` is out of range.
    pub fn new(me: PartyId, cfg: NowakRybickiConfig, tree: Arc<Tree>, input: VertexId) -> Self {
        assert!(me.index() < cfg.n, "party id out of range");
        assert!(
            input.index() < tree.vertex_count(),
            "input vertex out of range"
        );
        NowakRybickiParty {
            cfg,
            tree,
            vertex: input,
            iterations_done: 0,
            output: None,
        }
    }

    fn update(&mut self, received: &[VertexId]) {
        if let Some(mid) = safe_area_midpoint(&self.tree, received, self.cfg.n, self.cfg.t) {
            self.vertex = mid;
        }
        // An empty safe area cannot occur with >= n - t received values
        // and <= t Byzantine ones; keeping the current vertex preserves
        // validity regardless.
        self.iterations_done += 1;
    }
}

/// The safe area of a received vertex multiset: all `w` such that every
/// component of `T ∖ {w}` holds at most `n − t − 1` of the received
/// vertices — the linear-time characterization of the intersection of the
/// convex hulls of all `(n − t)`-subsets (see the module docs). Shared by
/// the synchronous baseline and the asynchronous protocol in `async-aa`.
pub fn safe_area(tree: &Tree, received: &[VertexId], n: usize, t: usize) -> Vec<VertexId> {
    let nv = tree.vertex_count();
    let mut weight = vec![0usize; nv];
    for &v in received {
        weight[v.index()] += 1;
    }
    let total: usize = received.len();

    // Subtree sums via reverse preorder.
    let mut sub = vec![0usize; nv];
    for &v in tree.dfs_preorder().iter().rev() {
        let mut c = weight[v.index()];
        for &ch in tree.children(v) {
            c += sub[ch.index()];
        }
        sub[v.index()] = c;
    }

    let limit = n - t - 1;
    let mut safe = Vec::new();
    for w in tree.vertices() {
        let mut max_dir = total - sub[w.index()]; // parent side
        for &ch in tree.children(w) {
            max_dir = max_dir.max(sub[ch.index()]);
        }
        if max_dir <= limit {
            safe.push(w);
        }
    }
    safe
}

/// The midpoint of the safe area's diameter path (left-center on even
/// lengths; the choice is local, so no coordination is needed), or `None`
/// for an empty safe area.
pub fn safe_area_midpoint(
    tree: &Tree,
    received: &[VertexId],
    n: usize,
    t: usize,
) -> Option<VertexId> {
    let safe = safe_area(tree, received, n, t);
    let dia = tree.induced_diameter_path(&safe)?;
    let mid = (dia.len() - 1) / 2;
    Some(dia.get(mid).expect("midpoint on path"))
}

impl Protocol for NowakRybickiParty {
    type Msg = PlainVertexMsg;
    type Output = VertexId;

    fn step(
        &mut self,
        round: u32,
        inbox: &Inbox<PlainVertexMsg>,
        ctx: &mut RoundCtx<PlainVertexMsg>,
    ) {
        if self.output.is_some() {
            return;
        }
        if round == 1 && self.cfg.iterations == 0 {
            self.output = Some(self.vertex);
            return;
        }
        if round > self.cfg.iterations + 1 {
            // Past the schedule (a benign fault froze us through the
            // decision round): adopt the current vertex, which never
            // leaves the hull of accepted values.
            self.output = Some(self.vertex);
            return;
        }
        if round >= 2 {
            let iter_tag = round - 2;
            let nv = self.tree.vertex_count();
            let mut seen = vec![false; self.cfg.n];
            let mut received = Vec::with_capacity(self.cfg.n);
            for e in inbox {
                let idx = e.payload.vertex as usize;
                if e.payload.iter == iter_tag && idx < nv && !seen[e.from.index()] {
                    seen[e.from.index()] = true;
                    received.push(vertex_from_index(idx, &self.tree));
                }
            }
            self.update(&received);
            if self.iterations_done >= self.cfg.iterations {
                self.output = Some(self.vertex);
                return;
            }
        }
        ctx.broadcast(PlainVertexMsg {
            iter: round - 1,
            vertex: self.vertex.index() as u32,
        });
    }

    fn output(&self) -> Option<VertexId> {
        self.output
    }
}

/// Dense index → `VertexId` (ids are dense by construction).
fn vertex_from_index(idx: usize, tree: &Tree) -> VertexId {
    tree.vertices().nth(idx).expect("validated index")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_net::{run_simulation, Passive, SimConfig};
    use tree_model::generate;

    fn run(tree: &Arc<Tree>, n: usize, t: usize, inputs: &[VertexId]) -> Vec<VertexId> {
        let cfg = NowakRybickiConfig::new(n, t, tree).unwrap();
        let report = run_simulation(
            SimConfig {
                n,
                t,
                max_rounds: cfg.rounds() + 5,
            },
            |id, _| NowakRybickiParty::new(id, cfg.clone(), Arc::clone(tree), inputs[id.index()]),
            Passive,
        )
        .unwrap();
        report.honest_outputs()
    }

    #[test]
    fn message_size_is_iter_plus_vertex() {
        assert_eq!(PlainVertexMsg { iter: 0, vertex: 3 }.size_bytes(), 8);
    }

    #[test]
    fn converges_honestly_across_families() {
        for tree in [
            generate::path(33),
            generate::star(8),
            generate::balanced_kary(2, 4),
            generate::caterpillar(9, 2),
        ] {
            let tree = Arc::new(tree);
            let m = tree.vertex_count();
            let inputs: Vec<VertexId> = (0..4)
                .map(|i| tree.vertices().nth((i * 17) % m).unwrap())
                .collect();
            let outputs = run(&tree, 4, 1, &inputs);
            crate::validity::check_tree_aa(&tree, &inputs, &outputs).unwrap();
        }
    }

    #[test]
    fn safe_area_discards_outliers() {
        // n = 4, t = 1: one Byzantine vertex at a far leaf must not drag
        // the safe area toward it.
        let tree = Arc::new(generate::path(9));
        let cfg = NowakRybickiConfig::new(4, 1, &tree).unwrap();
        let _ = cfg;
        // Three honest at v0..v2, one Byzantine claim at v8.
        let received: Vec<VertexId> = ["v0000", "v0001", "v0002", "v0008"]
            .iter()
            .map(|l| tree.vertex(l).unwrap())
            .collect();
        let safe = safe_area(&tree, &received, 4, 1);
        // Safe vertices must lie within the honest hull v0..v2 region:
        // every component bound is n - t - 1 = 2.
        for &w in &safe {
            assert!(
                tree.distance(w, tree.vertex("v0001").unwrap()) <= 1,
                "unsafe vertex {} accepted",
                tree.label(w)
            );
        }
        assert!(!safe.is_empty());
    }

    #[test]
    fn rounds_are_logarithmic_in_diameter() {
        let tree = generate::path(1025); // D = 1024
        let cfg = NowakRybickiConfig::new(4, 1, &tree).unwrap();
        assert_eq!(cfg.rounds(), 12); // log2(1024) + 2
    }

    #[test]
    fn trivial_diameter_trees_are_immediate() {
        let tree = Arc::new(generate::path(2));
        let inputs = vec![tree.root(), tree.root(), tree.root(), tree.root()];
        let outputs = run(&tree, 4, 1, &inputs);
        assert!(outputs.iter().all(|&o| o == tree.root()));
    }
}
