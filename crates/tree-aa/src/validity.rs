//! Outcome checkers for the AA-on-trees properties (Definition 2 and
//! Lemma 4) — shared by tests, property tests and the experiment harness.

use std::error::Error;
use std::fmt;

use tree_model::{Tree, TreePath, VertexId};

/// A violated protocol property, with enough context to debug the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// An output vertex is outside the honest inputs' convex hull.
    OutsideHull {
        /// The offending output.
        output: VertexId,
    },
    /// Two outputs are farther than distance 1 apart.
    TooFar {
        /// First output.
        a: VertexId,
        /// Second output.
        b: VertexId,
        /// Their distance.
        distance: usize,
    },
    /// A `PathsFinder` path misses the honest inputs' hull.
    PathMissesHull {
        /// Index of the offending party's path.
        party: usize,
    },
    /// A `PathsFinder` path does not start at the canonical root.
    PathNotFromRoot {
        /// Index of the offending party's path.
        party: usize,
    },
    /// Two `PathsFinder` paths differ by more than one trailing edge.
    PathsDiverge {
        /// Indices of the two offending parties.
        parties: (usize, usize),
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::OutsideHull { output } => {
                write!(
                    f,
                    "output {output} lies outside the honest inputs' convex hull"
                )
            }
            Violation::TooFar { a, b, distance } => {
                write!(f, "outputs {a} and {b} are {distance} > 1 apart")
            }
            Violation::PathMissesHull { party } => {
                write!(f, "party {party}'s path does not intersect the honest hull")
            }
            Violation::PathNotFromRoot { party } => {
                write!(f, "party {party}'s path does not start at the root")
            }
            Violation::PathsDiverge { parties: (a, b) } => {
                write!(
                    f,
                    "paths of parties {a} and {b} differ by more than one edge"
                )
            }
        }
    }
}

impl Error for Violation {}

/// Checks Validity and 1-Agreement of a `TreeAA`-style outcome:
/// `honest_inputs` and `honest_outputs` are the input/output vertices of
/// the honest parties (in any order; the two slices need not align).
///
/// # Errors
///
/// Returns the first [`Violation`] found.
///
/// # Panics
///
/// Panics if `honest_inputs` is empty (no honest parties means nothing to
/// check — a harness bug).
pub fn check_tree_aa(
    tree: &Tree,
    honest_inputs: &[VertexId],
    honest_outputs: &[VertexId],
) -> Result<(), Violation> {
    assert!(
        !honest_inputs.is_empty(),
        "at least one honest input required"
    );
    let hull = tree.convex_hull(honest_inputs);
    for &o in honest_outputs {
        if !hull.contains(o) {
            return Err(Violation::OutsideHull { output: o });
        }
    }
    for (i, &a) in honest_outputs.iter().enumerate() {
        for &b in &honest_outputs[i + 1..] {
            let d = tree.distance(a, b);
            if d > 1 {
                return Err(Violation::TooFar { a, b, distance: d });
            }
        }
    }
    Ok(())
}

/// Checks the Lemma 4 guarantees of a `PathsFinder` outcome: every path
/// starts at the canonical root and intersects the honest inputs' hull,
/// and any two paths are equal or differ by exactly one trailing edge.
///
/// # Errors
///
/// Returns the first [`Violation`] found.
///
/// # Panics
///
/// Panics if `honest_inputs` is empty.
pub fn check_paths_finder(
    tree: &Tree,
    honest_inputs: &[VertexId],
    paths: &[TreePath],
) -> Result<(), Violation> {
    assert!(
        !honest_inputs.is_empty(),
        "at least one honest input required"
    );
    let hull = tree.convex_hull(honest_inputs);
    for (i, p) in paths.iter().enumerate() {
        if p.vertices()[0] != tree.root() {
            return Err(Violation::PathNotFromRoot { party: i });
        }
        if !p.vertices().iter().any(|&v| hull.contains(v)) {
            return Err(Violation::PathMissesHull { party: i });
        }
    }
    for (i, a) in paths.iter().enumerate() {
        for (j, b) in paths.iter().enumerate().skip(i + 1) {
            let ok = a == b || a.is_one_edge_prefix_of(b) || b.is_one_edge_prefix_of(a);
            if !ok {
                return Err(Violation::PathsDiverge { parties: (i, j) });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tree_model::generate;

    #[test]
    fn accepts_valid_outcomes() {
        let t = generate::path(5);
        let vs: Vec<VertexId> = t.vertices().collect();
        check_tree_aa(&t, &[vs[0], vs[3]], &[vs[1], vs[2]]).unwrap();
    }

    #[test]
    fn rejects_hull_escape() {
        let t = generate::path(5);
        let vs: Vec<VertexId> = t.vertices().collect();
        let err = check_tree_aa(&t, &[vs[0], vs[2]], &[vs[4]]).unwrap_err();
        assert!(matches!(err, Violation::OutsideHull { .. }));
        assert!(err.to_string().contains("convex hull"));
    }

    #[test]
    fn rejects_distant_outputs() {
        let t = generate::path(5);
        let vs: Vec<VertexId> = t.vertices().collect();
        let err = check_tree_aa(&t, &[vs[0], vs[4]], &[vs[0], vs[4]]).unwrap_err();
        assert_eq!(
            err,
            Violation::TooFar {
                a: vs[0],
                b: vs[4],
                distance: 4
            }
        );
    }

    #[test]
    fn paths_checks() {
        let t = generate::path(5);
        let vs: Vec<VertexId> = t.vertices().collect();
        let p0 = t.path(t.root(), vs[2]);
        let p1 = t.path(t.root(), vs[3]);
        check_paths_finder(&t, &[vs[2], vs[4]], &[p0.clone(), p1.clone()]).unwrap();

        // Diverging by two edges is rejected.
        let p2 = t.path(t.root(), vs[4]);
        let err = check_paths_finder(&t, &[vs[2], vs[4]], &[p0.clone(), p2]).unwrap_err();
        assert!(matches!(err, Violation::PathsDiverge { .. }));

        // Missing the hull is rejected.
        let err = check_paths_finder(&t, &[vs[3], vs[4]], &[t.path(t.root(), vs[1])]).unwrap_err();
        assert!(matches!(err, Violation::PathMissesHull { .. }));

        // Not starting at the root is rejected.
        let err = check_paths_finder(&t, &[vs[0], vs[1]], &[t.path(vs[1], vs[0])]).unwrap_err();
        assert!(matches!(err, Violation::PathNotFromRoot { .. }));
    }
}
