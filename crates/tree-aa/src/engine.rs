//! The pluggable real-valued AA engine inside the tree protocols.
//!
//! The paper's reduction (Sections 4–7) is independent of which
//! real-valued AA protocol runs underneath — it only needs Validity,
//! ε-Agreement and a publicly computable round count (the Section 7 note
//! makes the same point for the `t < n/2` authenticated setting). This
//! module packages the two engines implemented in this workspace behind a
//! small enum so every tree protocol can run with either:
//!
//! * [`EngineKind::Gradecast`] — `RealAA` of Ben-Or–Dolev–Hoch, 3 rounds
//!   per iteration, `O(log δ / log log δ)` rounds total (round-optimal);
//! * [`EngineKind::Halving`] — the classic trim-and-halve iteration, 1
//!   round per iteration, `O(log δ)` rounds total.

use real_aa::{
    halving_iterations, iterations_for, IteratedAaConfig, IteratedAaParty, PlainValueMsg,
    RealAaBatchMsg, RealAaBatchParty, RealAaConfig, RealAaMsg, RealAaParty,
};
use sim_net::{step_standalone, Inbox, Outbox, PartyId, Payload, Received, RoundCtx};

/// Which real-valued AA protocol powers the reduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Gradecast-based `RealAA` (round-optimal; the paper's choice).
    Gradecast,
    /// `RealAA` over the batched gradecast wire
    /// ([`real_aa::RealAaBatchParty`]): the same round schedule and
    /// outputs as [`EngineKind::Gradecast`], but one slot-vector
    /// broadcast per sender per round instead of `n` per-leader
    /// messages — O(n²) deliveries per round.
    GradecastBatched,
    /// Classic halving iteration (the `O(log δ)` baseline).
    Halving,
}

/// The fixed number of communication rounds `kind` needs for ε-agreement
/// on inputs that are `d`-close.
///
/// # Panics
///
/// Panics on non-finite or non-positive `eps`, or negative `d` (via the
/// underlying formulas).
pub fn engine_rounds(kind: EngineKind, d: f64, eps: f64) -> u32 {
    match kind {
        EngineKind::Gradecast | EngineKind::GradecastBatched => 3 * iterations_for(d, eps),
        EngineKind::Halving => halving_iterations(d, eps),
    }
}

/// A wire message of either engine, so composed protocols have a single
/// message type.
#[derive(Clone, Debug, PartialEq)]
pub enum InnerMsg {
    /// Gradecast-based engine traffic.
    Real(RealAaMsg),
    /// Batched-gradecast engine traffic.
    RealBatch(RealAaBatchMsg),
    /// Halving engine traffic.
    Plain(PlainValueMsg),
}

impl Payload for InnerMsg {
    fn size_bytes(&self) -> usize {
        1 + match self {
            InnerMsg::Real(m) => m.size_bytes(),
            InnerMsg::RealBatch(m) => m.size_bytes(),
            InnerMsg::Plain(m) => m.size_bytes(),
        }
    }
}

/// A running instance of the selected engine, driven with *local* round
/// numbers by the embedding protocol.
#[derive(Clone, Debug)]
pub enum InnerAa {
    /// Gradecast-based `RealAA` instance (boxed: it carries per-leader
    /// tallies and dwarfs the halving variant).
    Real(Box<RealAaParty>),
    /// `RealAA` over the batched wire (boxed for the same reason).
    RealBatch(Box<RealAaBatchParty>),
    /// Halving-iteration instance.
    Halving(IteratedAaParty),
}

impl InnerAa {
    /// Starts an engine of `kind` for party `me` with the given public
    /// parameters and private input.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid (`n ≤ 3t`, bad `eps`/`d`) —
    /// embedding protocols validate their configs first.
    pub fn new(
        kind: EngineKind,
        me: PartyId,
        n: usize,
        t: usize,
        eps: f64,
        d: f64,
        input: f64,
    ) -> Self {
        match kind {
            EngineKind::Gradecast => {
                let cfg = RealAaConfig::new(n, t, eps, d).expect("validated by caller");
                InnerAa::Real(Box::new(RealAaParty::new(me, cfg, input)))
            }
            EngineKind::GradecastBatched => {
                let cfg = RealAaConfig::new(n, t, eps, d).expect("validated by caller");
                InnerAa::RealBatch(Box::new(RealAaBatchParty::new(me, cfg, input)))
            }
            EngineKind::Halving => {
                let cfg = IteratedAaConfig::new(n, t, eps, d).expect("validated by caller");
                InnerAa::Halving(IteratedAaParty::new(me, cfg, input))
            }
        }
    }

    /// Drives one local round: feeds the engine the inner messages
    /// delivered this round and returns the traffic it wants delivered
    /// next round (already wrapped back into [`InnerMsg`]).
    ///
    /// The outbox keeps its shape: inner broadcasts stay broadcasts, so
    /// the embedding protocol can re-broadcast them without expanding to
    /// `n` per-recipient clones.
    pub fn step(
        &mut self,
        me: PartyId,
        n: usize,
        local_round: u32,
        inbox: &Inbox<InnerMsg>,
    ) -> Outbox<InnerMsg> {
        match self {
            InnerAa::Real(p) => {
                let mapped = Inbox::from_messages(
                    inbox
                        .iter()
                        .filter_map(|r| match &r.payload {
                            InnerMsg::Real(m) => Some(Received {
                                from: r.from,
                                payload: m.clone(),
                            }),
                            _ => None,
                        })
                        .collect(),
                );
                let outbox = step_standalone(p.as_mut(), me, n, local_round, &mapped);
                rewrap(outbox, InnerMsg::Real)
            }
            InnerAa::RealBatch(p) => {
                let mapped = Inbox::from_messages(
                    inbox
                        .iter()
                        .filter_map(|r| match &r.payload {
                            InnerMsg::RealBatch(m) => Some(Received {
                                from: r.from,
                                payload: m.clone(),
                            }),
                            _ => None,
                        })
                        .collect(),
                );
                let outbox = step_standalone(p.as_mut(), me, n, local_round, &mapped);
                rewrap(outbox, InnerMsg::RealBatch)
            }
            InnerAa::Halving(p) => {
                let mapped = Inbox::from_messages(
                    inbox
                        .iter()
                        .filter_map(|r| match &r.payload {
                            InnerMsg::Plain(m) => Some(Received {
                                from: r.from,
                                payload: *m,
                            }),
                            _ => None,
                        })
                        .collect(),
                );
                let outbox = step_standalone(p, me, n, local_round, &mapped);
                rewrap(outbox, InnerMsg::Plain)
            }
        }
    }

    /// The engine's output, once terminated.
    pub fn output(&self) -> Option<f64> {
        match self {
            InnerAa::Real(p) => sim_net::Protocol::output(p.as_ref()),
            InnerAa::RealBatch(p) => sim_net::Protocol::output(p.as_ref()),
            InnerAa::Halving(p) => sim_net::Protocol::output(p),
        }
    }

    /// The engine's current estimate, before termination — the quantity the
    /// flight recorder logs as the party's position after each halving
    /// step.
    pub fn current_value(&self) -> f64 {
        match self {
            InnerAa::Real(p) => p.current_value(),
            InnerAa::RealBatch(p) => p.current_value(),
            InnerAa::Halving(p) => p.current_value(),
        }
    }
}

/// Re-wraps an inner outbox into the composed message type, preserving the
/// unicast/broadcast split (a broadcast stays one payload, not `n`).
fn rewrap<A: Payload, B: Payload>(outbox: Outbox<A>, wrap: impl Fn(A) -> B) -> Outbox<B> {
    let (me, n) = (outbox.sender(), outbox.n());
    let (unicasts, broadcasts) = outbox.into_parts();
    let mut ctx = RoundCtx::new(me, n);
    for m in broadcasts {
        ctx.broadcast(wrap(m));
    }
    for e in unicasts {
        ctx.send(e.to, wrap(e.payload));
    }
    ctx.into_outbox()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive both engines by hand through their local rounds, all honest.
    fn run_engine(kind: EngineKind, inputs: &[f64], d: f64) -> Vec<f64> {
        let n = inputs.len();
        let t = (n - 1) / 3;
        let mut engines: Vec<InnerAa> = (0..n)
            .map(|i| InnerAa::new(kind, PartyId(i), n, t, 1.0, d, inputs[i]))
            .collect();
        let rounds = engine_rounds(kind, d, 1.0);
        let mut inboxes: Vec<Inbox<InnerMsg>> = vec![Inbox::empty(); n];
        for r in 1..=rounds + 1 {
            let mut next: Vec<Vec<Received<InnerMsg>>> = vec![Vec::new(); n];
            for (i, eng) in engines.iter_mut().enumerate() {
                let inbox = std::mem::take(&mut inboxes[i]);
                for env in eng.step(PartyId(i), n, r, &inbox).envelopes() {
                    next[env.to.index()].push(Received {
                        from: env.from,
                        payload: env.payload,
                    });
                }
            }
            inboxes = next.into_iter().map(Inbox::from_messages).collect();
        }
        engines
            .iter()
            .map(|e| e.output().expect("terminated"))
            .collect()
    }

    #[test]
    fn wire_size_is_tag_plus_inner() {
        let plain = InnerMsg::Plain(PlainValueMsg {
            iter: 0,
            value: 1.0,
        });
        assert_eq!(plain.size_bytes(), 1 + 12);
        let real = InnerMsg::Real(RealAaMsg {
            iter: 0,
            body: gradecast::GcMsg::Lead(real_aa::R64::new(2.0)),
        });
        assert_eq!(real.size_bytes(), 1 + 13);
    }

    #[test]
    fn both_engines_converge_honestly() {
        let inputs = [0.0, 30.0, 12.0, 25.0];
        for kind in [EngineKind::Gradecast, EngineKind::Halving] {
            let outs = run_engine(kind, &inputs, 30.0);
            let lo = outs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = outs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(hi - lo <= 1.0, "{kind:?} spread {}", hi - lo);
            assert!(
                outs.iter().all(|&o| (0.0..=30.0).contains(&o)),
                "{kind:?} validity"
            );
        }
    }

    #[test]
    fn round_counts_differ_as_expected() {
        let d = 1_000_000.0;
        assert!(
            engine_rounds(EngineKind::Gradecast, d, 1.0)
                < engine_rounds(EngineKind::Halving, d, 1.0) * 3
        );
        assert_eq!(engine_rounds(EngineKind::Halving, d, 1.0), 20);
    }

    #[test]
    fn cross_engine_messages_are_ignored() {
        // A Real engine fed a Plain message must not panic or act on it.
        let mut eng = InnerAa::new(EngineKind::Gradecast, PartyId(0), 4, 1, 1.0, 8.0, 3.0);
        let _ = eng.step(PartyId(0), 4, 1, &Inbox::empty());
        let stray = Received {
            from: PartyId(1),
            payload: InnerMsg::Plain(PlainValueMsg {
                iter: 0,
                value: 4.0,
            }),
        };
        let out = eng.step(PartyId(0), 4, 2, &Inbox::from_messages(vec![stray]));
        // Round 2 of gradecast with no leads produces no echoes.
        assert!(out.is_empty());
    }
}
