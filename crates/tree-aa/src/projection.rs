//! The Section 5 stepping stone: AA on a tree when a path intersecting the
//! honest inputs' convex hull is *publicly known*.

use std::sync::Arc;

use sim_net::{Inbox, PartyId, Protocol, RoundCtx};
use tree_model::{closest_int, ProjectionTable, Tree, TreePath, VertexId};

use crate::engine::{engine_rounds, EngineKind, InnerAa};
use crate::tree_aa::{filter_phase, forward_phase, TreeMsg};

/// Public parameters of a projection-AA run. The path is part of the
/// public setup (the assumption Section 6 later removes).
#[derive(Clone, Debug)]
pub struct ProjectionAaConfig {
    /// Number of parties.
    pub n: usize,
    /// Corruption bound; requires `t < n/3`.
    pub t: usize,
    /// The inner real-valued AA engine.
    pub engine: EngineKind,
    /// The publicly known path (must intersect the honest inputs' hull for
    /// Validity — that is this protocol's *precondition*, exactly as in
    /// Section 5).
    pub path: Arc<TreePath>,
}

impl ProjectionAaConfig {
    /// Creates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated precondition if `n ≤ 3t`.
    pub fn new(
        n: usize,
        t: usize,
        engine: EngineKind,
        path: Arc<TreePath>,
    ) -> Result<Self, String> {
        if n <= 3 * t {
            return Err(format!(
                "projection AA requires n > 3t, got n = {n}, t = {t}"
            ));
        }
        Ok(ProjectionAaConfig { n, t, engine, path })
    }

    /// Fixed communication rounds: one engine run with ε = 1 on positions
    /// `[0, k − 1]` of the path.
    pub fn rounds(&self) -> u32 {
        engine_rounds(self.engine, self.path.edge_len() as f64, 1.0)
    }
}

/// One party of the projection protocol: project the input onto the known
/// path, agree on positions, output the vertex at the rounded position.
#[derive(Clone, Debug)]
pub struct ProjectionAaParty {
    cfg: ProjectionAaConfig,
    me: PartyId,
    engine: InnerAa,
    output: Option<VertexId>,
}

impl ProjectionAaParty {
    /// Creates the party with its input vertex, projecting it onto the
    /// public path.
    ///
    /// # Panics
    ///
    /// Panics if `me` or `input` is out of range.
    pub fn new(me: PartyId, cfg: ProjectionAaConfig, tree: &Tree, input: VertexId) -> Self {
        assert!(me.index() < cfg.n, "party id out of range");
        assert!(
            input.index() < tree.vertex_count(),
            "input vertex out of range"
        );
        let table = ProjectionTable::new(tree, &cfg.path);
        let i = table.position(input) as f64;
        let engine = InnerAa::new(
            cfg.engine,
            me,
            cfg.n,
            cfg.t,
            1.0,
            cfg.path.edge_len() as f64,
            i,
        );
        ProjectionAaParty {
            cfg,
            me,
            engine,
            output: None,
        }
    }
}

impl Protocol for ProjectionAaParty {
    type Msg = TreeMsg;
    type Output = VertexId;

    fn step(&mut self, round: u32, inbox: &Inbox<TreeMsg>, ctx: &mut RoundCtx<TreeMsg>) {
        if self.output.is_some() {
            return;
        }
        let inner = filter_phase(inbox, 2);
        let out = self.engine.step(self.me, self.cfg.n, round, &inner);
        forward_phase(ctx, out, 2);
        if let Some(j) = self.engine.output() {
            // Remark 1 keeps closestInt(j) within the honest positions,
            // hence on the path; clamp defensively all the same.
            let ci = closest_int(j).clamp(0, self.cfg.path.len() as i64 - 1) as usize;
            self.output = Some(self.cfg.path.get(ci).expect("clamped onto the path"));
        }
    }

    fn output(&self) -> Option<VertexId> {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_net::{run_simulation, Passive, SimConfig};
    use tree_model::Tree;

    /// The Figure 2 scenario: a known path v1..v8 and inputs hanging off
    /// it; outputs must be 1-close path vertices inside the inputs' hull.
    #[test]
    fn figure2_scenario() {
        // Path spine a1-a2-...-a8 with inputs u1 off a3, u2 at a4, u3 off
        // a6 (mirroring the figure's structure).
        let tree = Arc::new(
            Tree::from_labeled_edges(
                ["a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "u1", "u3"],
                [
                    ("a1", "a2"),
                    ("a2", "a3"),
                    ("a3", "a4"),
                    ("a4", "a5"),
                    ("a5", "a6"),
                    ("a6", "a7"),
                    ("a7", "a8"),
                    ("u1", "a3"),
                    ("u3", "a6"),
                ],
            )
            .unwrap(),
        );
        let spine = tree.path(tree.vertex("a1").unwrap(), tree.vertex("a8").unwrap());
        let cfg =
            ProjectionAaConfig::new(4, 1, EngineKind::Gradecast, Arc::new(spine.clone())).unwrap();
        let inputs: Vec<VertexId> = ["u1", "a4", "u3", "a4"]
            .iter()
            .map(|l| tree.vertex(l).unwrap())
            .collect();
        let report = run_simulation(
            SimConfig {
                n: 4,
                t: 1,
                max_rounds: cfg.rounds() + 5,
            },
            |id, _| ProjectionAaParty::new(id, cfg.clone(), &tree, inputs[id.index()]),
            Passive,
        )
        .unwrap();
        let outputs = report.honest_outputs();
        // 1-agreement.
        for &a in &outputs {
            for &b in &outputs {
                assert!(tree.distance(a, b) <= 1);
            }
        }
        // Validity: hull of {u1, a4, u3} is {u1, a3, a4, a5, a6, u3}.
        let hull = tree.convex_hull(&inputs);
        for &o in &outputs {
            assert!(hull.contains(o), "{} outside hull", tree.label(o));
            assert!(spine.contains(o), "{} off the path", tree.label(o));
        }
    }

    #[test]
    fn single_vertex_path_degenerates() {
        let tree = Arc::new(tree_model::generate::star(5));
        let center = tree.root();
        let p = Arc::new(tree.path(center, center));
        let cfg = ProjectionAaConfig::new(4, 1, EngineKind::Gradecast, p).unwrap();
        assert_eq!(cfg.rounds(), 0);
        let inputs: Vec<VertexId> = tree.vertices().take(4).collect();
        let report = run_simulation(
            SimConfig {
                n: 4,
                t: 1,
                max_rounds: 5,
            },
            |id, _| ProjectionAaParty::new(id, cfg.clone(), &tree, inputs[id.index()]),
            Passive,
        )
        .unwrap();
        for o in report.honest_outputs() {
            assert_eq!(o, center);
        }
    }
}
