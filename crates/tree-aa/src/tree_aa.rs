//! `TreeAA` — the paper's final protocol (Section 7).

use std::sync::Arc;

use sim_net::{Inbox, Outbox, PartyId, Payload, Protocol, Received, RoundCtx};
use tree_model::{
    closest_int, list_construction, EulerList, ProjectionTable, Tree, TreePath, VertexId,
};

use crate::engine::{engine_rounds, EngineKind, InnerAa, InnerMsg};

/// Public parameters of a `TreeAA` execution, derived from the public
/// input-space tree.
#[derive(Clone, Debug)]
pub struct TreeAaConfig {
    /// Number of parties.
    pub n: usize,
    /// Corruption bound; requires `t < n/3`.
    pub t: usize,
    /// The real-valued AA engine powering both phases.
    pub engine: EngineKind,
    /// `|L|` of the tree's Euler list (public).
    pub list_len: usize,
    /// `D(T)` (public).
    pub tree_diameter: usize,
}

impl TreeAaConfig {
    /// Derives the configuration from the public tree.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated precondition if `n ≤ 3t`.
    pub fn new(n: usize, t: usize, engine: EngineKind, tree: &Tree) -> Result<Self, String> {
        if n <= 3 * t {
            return Err(format!("TreeAA requires n > 3t, got n = {n}, t = {t}"));
        }
        Ok(TreeAaConfig {
            n,
            t,
            engine,
            list_len: 2 * tree.vertex_count() - 1,
            tree_diameter: tree.diameter(),
        })
    }

    /// Whether the input space is trivial (`D(T) ≤ 1`): every party may
    /// output its own input (Section 2).
    pub fn trivial(&self) -> bool {
        self.tree_diameter <= 1
    }

    /// Rounds of phase 1 (`PathsFinder`): one engine run with ε = 1 on
    /// indices in `[0, |L| − 1]` — the paper's
    /// `R_PathsFinder = R_RealAA(2·|V(T)|, 1)`.
    pub fn phase1_rounds(&self) -> u32 {
        if self.trivial() {
            0
        } else {
            engine_rounds(self.engine, (self.list_len - 1) as f64, 1.0)
        }
    }

    /// Rounds of phase 2 (projection onto the found path): one engine run
    /// with ε = 1 on positions in `[0, D(T)]`.
    pub fn phase2_rounds(&self) -> u32 {
        if self.trivial() {
            0
        } else {
            engine_rounds(self.engine, self.tree_diameter as f64, 1.0)
        }
    }

    /// Total communication rounds.
    pub fn total_rounds(&self) -> u32 {
        self.phase1_rounds() + self.phase2_rounds()
    }
}

/// A `TreeAA` wire message: engine traffic tagged with its phase.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeMsg {
    /// 1 = `PathsFinder`, 2 = projection run.
    pub phase: u8,
    /// The engine message.
    pub inner: InnerMsg,
}

impl Payload for TreeMsg {
    fn size_bytes(&self) -> usize {
        1 + self.inner.size_bytes()
    }
}

/// One party of `TreeAA`.
///
/// Protocol (Section 7):
/// 1. `v_root` := vertex with the lowest label; `L` :=
///    `ListConstruction(T, v_root)` (all local and deterministic).
/// 2. Phase 1 (`PathsFinder`): run the engine with ε = 1 on
///    `min L(v_IN)`; obtain `j`, set `P := P(v_root, L_closestInt(j))`.
/// 3. Wait until round `R_PathsFinder` ends — in this implementation both
///    engine runs have fixed, publicly computable round counts, so all
///    honest parties switch phases simultaneously by construction.
/// 4. Phase 2: run the engine with ε = 1 on the position of
///    `proj_P(v_IN)` in `P`; obtain `j`.
/// 5. Output the vertex at position `closestInt(j)` of `P`, or `P`'s last
///    vertex when `closestInt(j)` points one past it (the Figure 5
///    fallback: the party holds the shorter of the two 1-close paths).
#[derive(Clone, Debug)]
pub struct TreeAaParty {
    cfg: TreeAaConfig,
    me: PartyId,
    tree: Arc<Tree>,
    input: VertexId,
    list: EulerList,
    phase1: InnerAa,
    /// Set at the phase boundary.
    path: Option<TreePath>,
    phase2: Option<InnerAa>,
    output: Option<VertexId>,
}

impl TreeAaParty {
    /// Creates the party with its input vertex.
    ///
    /// # Panics
    ///
    /// Panics if `me` or `input` is out of range for `cfg`/`tree`.
    pub fn new(me: PartyId, cfg: TreeAaConfig, tree: Arc<Tree>, input: VertexId) -> Self {
        assert!(me.index() < cfg.n, "party id out of range");
        assert!(
            input.index() < tree.vertex_count(),
            "input vertex out of range"
        );
        assert_eq!(
            cfg.list_len,
            2 * tree.vertex_count() - 1,
            "config/tree mismatch"
        );
        let list = list_construction(&tree);
        let i1 = list.first_occurrence(input) as f64;
        let phase1 = InnerAa::new(
            cfg.engine,
            me,
            cfg.n,
            cfg.t,
            1.0,
            (cfg.list_len - 1) as f64,
            i1,
        );
        TreeAaParty {
            cfg,
            me,
            tree,
            input,
            list,
            phase1,
            path: None,
            phase2: None,
            output: None,
        }
    }

    /// The path this party obtained from `PathsFinder` (available after
    /// the phase boundary; used by tests and experiments).
    pub fn found_path(&self) -> Option<&TreePath> {
        self.path.as_ref()
    }

    fn begin_phase2(&mut self, j: f64) -> InnerAa {
        // Clamp defensively: Remark 1 guarantees the index stays within
        // the range of honest inputs, hence within [0, |L| - 1], on every
        // honest execution.
        let idx = closest_int(j).clamp(0, self.list.len() as i64 - 1) as usize;
        let path = self.tree.path(self.tree.root(), self.list.get(idx));
        let proj = ProjectionTable::new(&self.tree, &path);
        let i2 = proj.position(self.input) as f64;
        let engine = InnerAa::new(
            self.cfg.engine,
            self.me,
            self.cfg.n,
            self.cfg.t,
            1.0,
            self.cfg.tree_diameter as f64,
            i2,
        );
        self.path = Some(path);
        engine
    }

    fn finish(&mut self, j: f64) {
        let path = self.path.as_ref().expect("phase 2 started");
        let ci = closest_int(j).max(0) as usize;
        let v = if ci >= path.len() {
            // Figure 5 fallback: this party holds the shorter path; the
            // longer one extends it by exactly one vertex, so the last
            // vertex of the own path is 1-close to every honest output.
            let (_, last) = path.endpoints();
            last
        } else {
            path.get(ci).expect("index within path")
        };
        self.output = Some(v);
    }
}

/// The engine traffic of `phase` delivered in `inbox`, unwrapped for an
/// inner engine (shared by `TreeAA` and the standalone subprotocols).
pub(crate) fn filter_phase(inbox: &Inbox<TreeMsg>, phase: u8) -> Inbox<InnerMsg> {
    Inbox::from_messages(
        inbox
            .iter()
            .filter(|r| r.payload.phase == phase)
            .map(|r| Received {
                from: r.from,
                payload: r.payload.inner.clone(),
            })
            .collect(),
    )
}

/// Forwards an inner outbox through the outer context with its phase tag,
/// keeping broadcasts structural (one payload, not `n` clones).
pub(crate) fn forward_phase(ctx: &mut RoundCtx<TreeMsg>, outbox: Outbox<InnerMsg>, phase: u8) {
    let (unicasts, broadcasts) = outbox.into_parts();
    for inner in broadcasts {
        ctx.broadcast(TreeMsg { phase, inner });
    }
    for e in unicasts {
        ctx.send(
            e.to,
            TreeMsg {
                phase,
                inner: e.payload,
            },
        );
    }
}

impl Protocol for TreeAaParty {
    type Msg = TreeMsg;
    type Output = VertexId;

    fn step(&mut self, round: u32, inbox: &Inbox<TreeMsg>, ctx: &mut RoundCtx<TreeMsg>) {
        if self.output.is_some() {
            return;
        }
        if self.cfg.trivial() {
            // D(T) <= 1: outputting the input satisfies all three
            // properties (Section 2).
            self.output = Some(self.input);
            return;
        }
        if round > self.cfg.total_rounds() + 1 {
            // Past the schedule: only reachable when a benign fault froze
            // this party through its decision round. Adopt the current
            // estimate — it stays in the hull of accepted values — rather
            // than staying silent forever; accuracy guarantees for such
            // runs are the degradation layer's concern.
            if let Some(engine) = &self.phase2 {
                let j = engine.current_value();
                self.finish(j);
            } else {
                self.output = Some(self.input);
            }
            return;
        }
        let r1 = self.cfg.phase1_rounds();
        if round <= r1 {
            // Phase 1, local rounds 1..=r1.
            let inner = filter_phase(inbox, 1);
            let out = self.phase1.step(self.me, self.cfg.n, round, &inner);
            forward_phase(ctx, out, 1);
            return;
        }
        if self.phase2.is_none() {
            // The boundary round r1 + 1: finish phase 1 (its final
            // local round processes the last inbox and terminates) and
            // immediately start phase 2 in the same communication round.
            let inner = filter_phase(inbox, 1);
            let _ = self.phase1.step(self.me, self.cfg.n, round, &inner);
            // A benign fault (crash window, partition freeze) can leave
            // phase 1 a local round short at the boundary. Its running
            // estimate never leaves the hull of accepted values, so it
            // serves as the best-effort `j`; accuracy under such runs is
            // the degradation layer's concern.
            let j = self
                .phase1
                .output()
                .unwrap_or_else(|| self.phase1.current_value());
            let mut engine = self.begin_phase2(j);
            ctx.emit_with(|| {
                let path = self.path.as_ref().expect("phase 2 started");
                let (root, vertex) = path.endpoints();
                sim_net::ProtoEvent::new("treeaa.path")
                    .f64("j", j)
                    .u64("len", path.len() as u64)
                    .u64("root", root.index() as u64)
                    .u64("vertex", vertex.index() as u64)
            });
            let out = engine.step(self.me, self.cfg.n, 1, &Inbox::empty());
            forward_phase(ctx, out, 2);
            self.phase2 = Some(engine);
            return;
        }
        // Phase 2, local rounds 2..
        let local = round - r1;
        let inner = filter_phase(inbox, 2);
        let engine = self.phase2.as_mut().expect("phase 2 running");
        let out = engine.step(self.me, self.cfg.n, local, &inner);
        forward_phase(ctx, out, 2);
        ctx.emit_with(|| {
            sim_net::ProtoEvent::new("treeaa.pos")
                .u64("local", u64::from(local))
                .f64("pos", engine.current_value())
        });
        if let Some(j) = engine.output() {
            self.finish(j);
            ctx.emit_with(|| {
                let vertex = self.output.expect("finish sets the output");
                sim_net::ProtoEvent::new("treeaa.out")
                    .f64("j", j)
                    .u64("vertex", vertex.index() as u64)
            });
        }
    }

    fn output(&self) -> Option<VertexId> {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validity::check_tree_aa;
    use sim_net::{run_simulation, Passive, SimConfig};
    use tree_model::generate;

    fn run_tree_aa(
        tree: &Arc<Tree>,
        n: usize,
        t: usize,
        engine: EngineKind,
        inputs: &[VertexId],
    ) -> (Vec<VertexId>, u32) {
        let cfg = TreeAaConfig::new(n, t, engine, tree).unwrap();
        let report = run_simulation(
            SimConfig {
                n,
                t,
                max_rounds: cfg.total_rounds() + 5,
            },
            |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(tree), inputs[id.index()]),
            Passive,
        )
        .unwrap();
        (report.honest_outputs(), report.communication_rounds())
    }

    #[test]
    fn wire_size_is_phase_tag_plus_inner() {
        use real_aa::PlainValueMsg;
        let msg = TreeMsg {
            phase: 1,
            inner: crate::engine::InnerMsg::Plain(PlainValueMsg {
                iter: 0,
                value: 3.0,
            }),
        };
        // 1 phase byte + 1 inner tag byte + (4 + 8) plain value bytes.
        assert_eq!(msg.size_bytes(), 14);
    }

    #[test]
    fn honest_run_on_figure3_tree() {
        let tree = Arc::new(
            Tree::from_labeled_edges(
                ["v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8"],
                [
                    ("v1", "v2"),
                    ("v2", "v3"),
                    ("v3", "v6"),
                    ("v3", "v7"),
                    ("v2", "v4"),
                    ("v4", "v8"),
                    ("v2", "v5"),
                ],
            )
            .unwrap(),
        );
        let inputs: Vec<VertexId> = ["v3", "v6", "v5", "v7"]
            .iter()
            .map(|l| tree.vertex(l).unwrap())
            .collect();
        let (outputs, rounds) = run_tree_aa(&tree, 4, 1, EngineKind::Gradecast, &inputs);
        check_tree_aa(&tree, &inputs, &outputs).unwrap();
        let cfg = TreeAaConfig::new(4, 1, EngineKind::Gradecast, &tree).unwrap();
        assert_eq!(rounds, cfg.total_rounds());
    }

    #[test]
    fn works_across_tree_families_and_engines() {
        for tree in [
            generate::path(17),
            generate::star(9),
            generate::balanced_kary(2, 4),
            generate::caterpillar(7, 2),
            generate::spider(3, 5),
        ] {
            let tree = Arc::new(tree);
            let m = tree.vertex_count();
            let inputs: Vec<VertexId> = (0..7)
                .map(|i| tree.vertices().nth((i * 37) % m).unwrap())
                .collect();
            for engine in [
                EngineKind::Gradecast,
                EngineKind::GradecastBatched,
                EngineKind::Halving,
            ] {
                let (outputs, _) = run_tree_aa(&tree, 7, 2, engine, &inputs);
                check_tree_aa(&tree, &inputs, &outputs)
                    .unwrap_or_else(|e| panic!("{engine:?}: {e}"));
            }
        }
    }

    /// The batched engine is a wire-level change only: every
    /// `treeaa.path`, `treeaa.pos` and `treeaa.out` event — phase
    /// boundary index `j`, chosen path, per-round positions, final
    /// vertex — must be identical to the unbatched gradecast engine's,
    /// round for round, party for party.
    #[test]
    fn batched_engine_pins_the_unbatched_trace() {
        use sim_net::{run_simulation_traced, EngineConfig, EventKind};

        let tree = Arc::new(generate::caterpillar(7, 2));
        let m = tree.vertex_count();
        let n = 7;
        let inputs: Vec<VertexId> = (0..n)
            .map(|i| tree.vertices().nth((i * 37) % m).unwrap())
            .collect();
        let traced = |engine: EngineKind| {
            let cfg = TreeAaConfig::new(n, 2, engine, &tree).unwrap();
            let (report, trace) = run_simulation_traced(
                EngineConfig::from(SimConfig {
                    n,
                    t: 2,
                    max_rounds: cfg.total_rounds() + 5,
                }),
                |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
                Passive,
            )
            .unwrap();
            let events: Vec<_> = trace
                .events
                .iter()
                .filter(|e| {
                    matches!(&e.kind, EventKind::Proto { event, .. }
                        if event.label.starts_with("treeaa."))
                })
                .cloned()
                .collect();
            (report.outputs, report.rounds_executed, events)
        };

        let (out_plain, rounds_plain, ev_plain) = traced(EngineKind::Gradecast);
        let (out_batch, rounds_batch, ev_batch) = traced(EngineKind::GradecastBatched);
        assert_eq!(out_plain, out_batch);
        assert_eq!(rounds_plain, rounds_batch);
        assert!(
            ev_plain.iter().any(|e| matches!(&e.kind,
                EventKind::Proto { event, .. } if event.label == "treeaa.path"))
                && ev_plain.iter().any(|e| matches!(&e.kind,
                    EventKind::Proto { event, .. } if event.label == "treeaa.out")),
            "trace must contain the pinned event kinds"
        );
        assert_eq!(ev_plain, ev_batch);
    }

    #[test]
    fn trivial_trees_are_immediate() {
        for tree in [generate::path(1), generate::path(2)] {
            let tree = Arc::new(tree);
            let inputs: Vec<VertexId> = (0..4)
                .map(|i| tree.vertices().nth(i % tree.vertex_count()).unwrap())
                .collect();
            let (outputs, rounds) = run_tree_aa(&tree, 4, 1, EngineKind::Gradecast, &inputs);
            assert_eq!(rounds, 0);
            assert_eq!(outputs, inputs);
        }
    }

    #[test]
    fn identical_inputs_yield_that_vertex() {
        let tree = Arc::new(generate::balanced_kary(3, 3));
        let v = tree.vertex("v0017").unwrap();
        let inputs = vec![v; 4];
        let (outputs, _) = run_tree_aa(&tree, 4, 1, EngineKind::Gradecast, &inputs);
        assert!(outputs.iter().all(|&o| o == v), "outputs {outputs:?}");
    }

    #[test]
    fn all_parties_found_paths_consistent_with_lemma4() {
        // Direct check on party state: run manually to keep the parties.
        let tree = Arc::new(generate::caterpillar(6, 2));
        let n = 4;
        let cfg = TreeAaConfig::new(n, 1, EngineKind::Gradecast, &tree).unwrap();
        let m = tree.vertex_count();
        let inputs: Vec<VertexId> = (0..n)
            .map(|i| tree.vertices().nth((i * 5) % m).unwrap())
            .collect();
        let mut parties: Vec<TreeAaParty> = (0..n)
            .map(|i| TreeAaParty::new(PartyId(i), cfg.clone(), Arc::clone(&tree), inputs[i]))
            .collect();
        let mut inboxes: Vec<Inbox<TreeMsg>> = vec![Inbox::empty(); n];
        for r in 1..=cfg.total_rounds() + 1 {
            let mut next: Vec<Vec<Received<TreeMsg>>> = vec![Vec::new(); n];
            for (i, p) in parties.iter_mut().enumerate() {
                let inbox = std::mem::take(&mut inboxes[i]);
                let out = sim_net::step_standalone(p, PartyId(i), n, r, &inbox);
                for env in out.envelopes() {
                    next[env.to.index()].push(Received {
                        from: env.from,
                        payload: env.payload,
                    });
                }
            }
            inboxes = next.into_iter().map(Inbox::from_messages).collect();
        }
        let paths: Vec<TreePath> = parties
            .iter()
            .map(|p| p.found_path().expect("path found").clone())
            .collect();
        crate::validity::check_paths_finder(&tree, &inputs, &paths).unwrap();
    }
}
