//! Byzantine strategies against the tree protocols.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use gradecast::GcMsg;
use real_aa::{PlainValueMsg, RealAaMsg, R64};
use sim_net::{Adversary, AdversaryCtx, PartyId};

use crate::baseline::PlainVertexMsg;
use crate::engine::InnerMsg;
use crate::tree_aa::TreeMsg;

/// Chaos against `TreeAA`/`PathsFinder`/projection parties: statically
/// corrupts a set and sprays random phase-tagged engine messages with
/// values across (and beyond) the index domain. Safety properties must
/// survive anything it does.
#[derive(Clone, Debug)]
pub struct TreeAaChaos {
    byz: Vec<PartyId>,
    rng: ChaCha8Rng,
    /// Upper bound of the index domain values are drawn from (e.g.
    /// `2·|V(T)|`).
    pub index_span: f64,
}

impl TreeAaChaos {
    /// Creates the adversary with its own deterministic RNG.
    pub fn new(byz: Vec<PartyId>, seed: u64, index_span: f64) -> Self {
        TreeAaChaos {
            byz,
            rng: ChaCha8Rng::seed_from_u64(seed),
            index_span,
        }
    }
}

impl Adversary<TreeMsg> for TreeAaChaos {
    fn round(&mut self, ctx: &mut AdversaryCtx<'_, TreeMsg>) {
        if ctx.round() == 1 {
            for &b in &self.byz.clone() {
                ctx.corrupt(b).expect("static set within budget");
            }
        }
        let n = ctx.n();
        for &b in &self.byz.clone() {
            let bursts = self.rng.gen_range(0..2 * n);
            for _ in 0..bursts {
                let to = PartyId(self.rng.gen_range(0..n));
                let leader = PartyId(self.rng.gen_range(0..n));
                let x = R64::new(self.rng.gen_range(-1.0..=self.index_span + 1.0));
                let iter = self.rng.gen_range(0..ctx.round().div_ceil(3) + 1);
                let inner = if self.rng.gen_bool(0.8) {
                    let body = match self.rng.gen_range(0..3) {
                        0 => GcMsg::Lead(x),
                        1 => GcMsg::Echo(leader, x),
                        _ => GcMsg::Vote(leader, x),
                    };
                    InnerMsg::Real(RealAaMsg { iter, body })
                } else {
                    InnerMsg::Plain(PlainValueMsg {
                        iter,
                        value: x.get(),
                    })
                };
                let phase = if self.rng.gen_bool(0.5) { 1 } else { 2 };
                ctx.send(b, to, TreeMsg { phase, inner });
            }
        }
    }
}

/// Chaos against the Nowak–Rybicki baseline: equivocates random (possibly
/// invalid) vertex claims per recipient, per iteration.
#[derive(Clone, Debug)]
pub struct NrChaos {
    byz: Vec<PartyId>,
    rng: ChaCha8Rng,
    /// `|V(T)|`; claimed vertices are drawn from `0..vertex_count + 2`
    /// (slightly out of range to probe input validation).
    pub vertex_count: usize,
}

impl NrChaos {
    /// Creates the adversary with its own deterministic RNG.
    pub fn new(byz: Vec<PartyId>, seed: u64, vertex_count: usize) -> Self {
        NrChaos {
            byz,
            rng: ChaCha8Rng::seed_from_u64(seed),
            vertex_count,
        }
    }
}

impl Adversary<PlainVertexMsg> for NrChaos {
    fn round(&mut self, ctx: &mut AdversaryCtx<'_, PlainVertexMsg>) {
        if ctx.round() == 1 {
            for &b in &self.byz.clone() {
                ctx.corrupt(b).expect("static set within budget");
            }
        }
        let n = ctx.n();
        let iter = ctx.round() - 1;
        for &b in &self.byz.clone() {
            for to in 0..n {
                let vertex = self.rng.gen_range(0..self.vertex_count as u32 + 2);
                ctx.send(b, PartyId(to), PlainVertexMsg { iter, vertex });
            }
        }
    }
}

/// A value-steering adversary against `TreeAA`: its corrupted parties run
/// the protocol *honestly* but with adversary-chosen input vertices —
/// the cheapest way to pull the agreed value toward a target region of
/// the tree (used by the E6 "valid subtree, invalid vertex" experiment).
///
/// Because the corrupted parties follow the protocol, this adversary is
/// implemented purely at the harness level: construct the corrupted
/// parties with the steering inputs and run [`sim_net::Passive`]. The
/// type exists to make that pattern explicit and reusable.
#[derive(Clone, Copy, Debug)]
pub struct SteeringByInput;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree_aa::{TreeAaConfig, TreeAaParty};
    use crate::validity::check_tree_aa;
    use crate::EngineKind;
    use sim_net::{run_simulation, SimConfig};
    use std::sync::Arc;
    use tree_model::generate;
    use tree_model::VertexId;

    #[test]
    fn tree_aa_survives_chaos() {
        let tree = Arc::new(generate::caterpillar(6, 2));
        let n = 7;
        let t = 2;
        let cfg = TreeAaConfig::new(n, t, EngineKind::Gradecast, &tree).unwrap();
        let m = tree.vertex_count();
        let inputs: Vec<VertexId> = (0..n)
            .map(|i| tree.vertices().nth((i * 7) % m).unwrap())
            .collect();
        for seed in 0..5 {
            let byz = vec![PartyId(seed as usize % n), PartyId((seed as usize + 3) % n)];
            let adv = TreeAaChaos::new(byz.clone(), seed, 2.0 * m as f64);
            let report = run_simulation(
                SimConfig {
                    n,
                    t,
                    max_rounds: cfg.total_rounds() + 5,
                },
                |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
                adv,
            )
            .unwrap();
            let honest_inputs: Vec<VertexId> = (0..n)
                .filter(|i| !byz.iter().any(|b| b.index() == *i))
                .map(|i| inputs[i])
                .collect();
            check_tree_aa(&tree, &honest_inputs, &report.honest_outputs()).unwrap();
        }
    }

    #[test]
    fn baseline_survives_chaos() {
        use crate::baseline::{NowakRybickiConfig, NowakRybickiParty};
        let tree = Arc::new(generate::path(20));
        let n = 7;
        let t = 2;
        let cfg = NowakRybickiConfig::new(n, t, &tree).unwrap();
        let m = tree.vertex_count();
        let inputs: Vec<VertexId> = (0..n)
            .map(|i| tree.vertices().nth((i * 3) % m).unwrap())
            .collect();
        for seed in 0..5 {
            let byz = vec![PartyId(seed as usize % n), PartyId((seed as usize + 2) % n)];
            let adv = NrChaos::new(byz.clone(), seed, m);
            let report = run_simulation(
                SimConfig {
                    n,
                    t,
                    max_rounds: cfg.rounds() + 5,
                },
                |id, _| {
                    NowakRybickiParty::new(id, cfg.clone(), Arc::clone(&tree), inputs[id.index()])
                },
                adv,
            )
            .unwrap();
            let honest_inputs: Vec<VertexId> = (0..n)
                .filter(|i| !byz.iter().any(|b| b.index() == *i))
                .map(|i| inputs[i])
                .collect();
            check_tree_aa(&tree, &honest_inputs, &report.honest_outputs()).unwrap();
        }
    }
}
