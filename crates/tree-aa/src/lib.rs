//! **Round-optimal Byzantine approximate agreement on trees** — the
//! primary contribution of *"Towards Round-Optimal Approximate Agreement
//! on Trees"* (Fuchs, Ghinea, Parsaeian; PODC 2025), implemented end to
//! end.
//!
//! # The problem
//!
//! `n` parties hold vertices of a publicly known labeled tree `T`; up to
//! `t < n/3` of them are Byzantine. Every honest party must output a vertex
//! such that (Definition 2):
//!
//! * **Termination** — every honest party outputs and halts;
//! * **Validity** — honest outputs lie in the convex hull (smallest
//!   connected subtree) of the honest inputs;
//! * **1-Agreement** — honest outputs are pairwise within distance 1.
//!
//! # The protocols
//!
//! * [`TreeAaParty`] — the paper's `TreeAA` (Section 7):
//!   `PathsFinder` + projection, achieving
//!   `O(log |V(T)| / log log |V(T)|)` rounds via two runs of the
//!   real-valued `RealAA` engine;
//! * [`PathsFinderParty`] — the `PathsFinder` subprotocol (Section 6) on
//!   its own: 1-close root paths intersecting the honest hull, built on
//!   the Euler-list representation (`ListConstruction`, Lemma 2);
//! * [`ProjectionAaParty`] — the Section 5 stepping stone: AA on a tree
//!   given a *publicly known* path intersecting the honest hull;
//! * [`PathAaParty`] — the Section 4 warm-up: AA when the input space is
//!   itself a path;
//! * [`NowakRybickiParty`] — the `O(log D(T))`-round safe-area baseline
//!   (Nowak & Rybicki, DISC 2019) that the paper's round complexity is
//!   compared against.
//!
//! All protocols are generic over the inner real-valued AA engine
//! ([`EngineKind`]): the gradecast-based `RealAA` (round-optimal) or the
//! classic halving iteration — mirroring the paper's remark that the
//! reduction is independent of the underlying real-valued protocol.
//!
//! # Example
//!
//! ```
//! use sim_net::{run_simulation, Passive, SimConfig};
//! use tree_aa::{check_tree_aa, EngineKind, TreeAaConfig, TreeAaParty};
//! use tree_model::generate;
//! use std::sync::Arc;
//!
//! let tree = Arc::new(generate::caterpillar(6, 2));
//! let n = 4;
//! let t = 1;
//! let cfg = TreeAaConfig::new(n, t, EngineKind::Gradecast, &tree).unwrap();
//! // Every party inputs some vertex of the tree.
//! let inputs: Vec<_> = tree.vertices().take(n).collect();
//! let report = run_simulation(
//!     SimConfig { n, t, max_rounds: cfg.total_rounds() + 5 },
//!     |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
//!     Passive,
//! ).unwrap();
//! let outputs = report.honest_outputs();
//! check_tree_aa(&tree, &inputs, &outputs).unwrap(); // validity + 1-agreement
//! ```

#![warn(missing_docs)]
pub mod adversary;
mod baseline;
mod engine;
mod path_aa;
mod paths_finder;
mod projection;
mod tree_aa;
mod validity;

pub use baseline::{
    safe_area, safe_area_midpoint, NowakRybickiConfig, NowakRybickiParty, PlainVertexMsg,
};
pub use engine::{engine_rounds, EngineKind, InnerAa, InnerMsg};
pub use path_aa::{PathAaConfig, PathAaParty};
pub use paths_finder::{PathsFinderConfig, PathsFinderParty};
pub use projection::{ProjectionAaConfig, ProjectionAaParty};
pub use tree_aa::{TreeAaConfig, TreeAaParty, TreeMsg};
pub use validity::{check_paths_finder, check_tree_aa, Violation};
