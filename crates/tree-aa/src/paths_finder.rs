//! `PathsFinder` — approximate agreement on root paths (Section 6).
//!
//! Honest parties obtain subpaths `P(v_root, ·)` of the input-space tree
//! such that (Lemma 4): every path intersects the honest inputs' convex
//! hull, and all paths are equal up to one trailing edge.

use std::sync::Arc;

use sim_net::{Inbox, PartyId, Protocol, RoundCtx};
use tree_model::{closest_int, list_construction, EulerList, Tree, TreePath, VertexId};

use crate::engine::{engine_rounds, EngineKind, InnerAa};
use crate::tree_aa::{filter_phase, forward_phase, TreeMsg};

/// Public parameters of a standalone `PathsFinder` run.
#[derive(Clone, Debug)]
pub struct PathsFinderConfig {
    /// Number of parties.
    pub n: usize,
    /// Corruption bound; requires `t < n/3`.
    pub t: usize,
    /// The inner real-valued AA engine.
    pub engine: EngineKind,
    /// `|L|` (public).
    pub list_len: usize,
}

impl PathsFinderConfig {
    /// Derives the configuration from the public tree.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated precondition if `n ≤ 3t`.
    pub fn new(n: usize, t: usize, engine: EngineKind, tree: &Tree) -> Result<Self, String> {
        if n <= 3 * t {
            return Err(format!("PathsFinder requires n > 3t, got n = {n}, t = {t}"));
        }
        Ok(PathsFinderConfig {
            n,
            t,
            engine,
            list_len: 2 * tree.vertex_count() - 1,
        })
    }

    /// Fixed communication rounds: one engine run with ε = 1 on
    /// `[0, |L| − 1]` (the paper's `R_PathsFinder = R_RealAA(2|V(T)|, 1)`).
    pub fn rounds(&self) -> u32 {
        if self.list_len <= 1 {
            0
        } else {
            engine_rounds(self.engine, (self.list_len - 1) as f64, 1.0)
        }
    }
}

/// One party of the standalone `PathsFinder` protocol. Output: the path
/// `P(v_root, L_closestInt(j))`.
///
/// Inside `TreeAA` the same logic runs as phase 1; this standalone protocol
/// exists so the subprotocol's Lemma 4 guarantees can be tested and
/// measured in isolation.
#[derive(Clone, Debug)]
pub struct PathsFinderParty {
    cfg: PathsFinderConfig,
    me: PartyId,
    tree: Arc<Tree>,
    list: EulerList,
    engine: InnerAa,
    output: Option<TreePath>,
}

impl PathsFinderParty {
    /// Creates the party with its input vertex.
    ///
    /// # Panics
    ///
    /// Panics if `me` or `input` is out of range.
    pub fn new(me: PartyId, cfg: PathsFinderConfig, tree: Arc<Tree>, input: VertexId) -> Self {
        assert!(me.index() < cfg.n, "party id out of range");
        assert!(
            input.index() < tree.vertex_count(),
            "input vertex out of range"
        );
        let list = list_construction(&tree);
        let i = list.first_occurrence(input) as f64;
        let engine = InnerAa::new(
            cfg.engine,
            me,
            cfg.n,
            cfg.t,
            1.0,
            (cfg.list_len - 1) as f64,
            i,
        );
        PathsFinderParty {
            cfg,
            me,
            tree,
            list,
            engine,
            output: None,
        }
    }
}

impl Protocol for PathsFinderParty {
    type Msg = TreeMsg;
    type Output = TreePath;

    fn step(&mut self, round: u32, inbox: &Inbox<TreeMsg>, ctx: &mut RoundCtx<TreeMsg>) {
        if self.output.is_some() {
            return;
        }
        if self.cfg.list_len <= 1 {
            self.output = Some(self.tree.path(self.tree.root(), self.tree.root()));
            return;
        }
        let inner = filter_phase(inbox, 1);
        let out = self.engine.step(self.me, self.cfg.n, round, &inner);
        forward_phase(ctx, out, 1);
        if let Some(j) = self.engine.output() {
            let idx = closest_int(j).clamp(0, self.list.len() as i64 - 1) as usize;
            self.output = Some(self.tree.path(self.tree.root(), self.list.get(idx)));
        }
    }

    fn output(&self) -> Option<TreePath> {
        self.output.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validity::check_paths_finder;
    use sim_net::{run_simulation, Passive, SimConfig};
    use tree_model::generate;

    fn run(tree: &Arc<Tree>, n: usize, t: usize, inputs: &[VertexId]) -> Vec<TreePath> {
        let cfg = PathsFinderConfig::new(n, t, EngineKind::Gradecast, tree).unwrap();
        let report = run_simulation(
            SimConfig {
                n,
                t,
                max_rounds: cfg.rounds() + 5,
            },
            |id, _| PathsFinderParty::new(id, cfg.clone(), Arc::clone(tree), inputs[id.index()]),
            Passive,
        )
        .unwrap();
        report.honest_outputs()
    }

    #[test]
    fn lemma4_on_figure3() {
        let tree = Arc::new(
            Tree::from_labeled_edges(
                ["v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8"],
                [
                    ("v1", "v2"),
                    ("v2", "v3"),
                    ("v3", "v6"),
                    ("v3", "v7"),
                    ("v2", "v4"),
                    ("v4", "v8"),
                    ("v2", "v5"),
                ],
            )
            .unwrap(),
        );
        let inputs: Vec<VertexId> = ["v3", "v6", "v5", "v3"]
            .iter()
            .map(|l| tree.vertex(l).unwrap())
            .collect();
        let paths = run(&tree, 4, 1, &inputs);
        check_paths_finder(&tree, &inputs, &paths).unwrap();
        // All paths start at the root v1.
        for p in &paths {
            assert_eq!(tree.label(p.vertices()[0]).as_str(), "v1");
        }
    }

    #[test]
    fn lemma4_across_families() {
        for tree in [
            generate::path(12),
            generate::balanced_kary(2, 4),
            generate::spider(4, 3),
        ] {
            let tree = Arc::new(tree);
            let m = tree.vertex_count();
            let inputs: Vec<VertexId> = (0..7)
                .map(|i| tree.vertices().nth((3 + i * 11) % m).unwrap())
                .collect();
            let paths = run(&tree, 7, 2, &inputs);
            check_paths_finder(&tree, &inputs, &paths).unwrap();
        }
    }

    #[test]
    fn single_vertex_tree_returns_root_path() {
        let tree = Arc::new(generate::path(1));
        let inputs = vec![tree.root(); 4];
        let paths = run(&tree, 4, 1, &inputs);
        for p in paths {
            assert_eq!(p.len(), 1);
        }
    }
}
