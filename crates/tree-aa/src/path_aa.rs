//! The Section 4 warm-up: AA when the input space is itself a labeled
//! path.

use std::sync::Arc;

use sim_net::{Inbox, PartyId, Protocol, RoundCtx};
use tree_model::{closest_int, Tree, TreePath, VertexId};

use crate::engine::{engine_rounds, EngineKind, InnerAa};
use crate::tree_aa::{filter_phase, forward_phase, TreeMsg};

/// Public parameters of a path-AA run.
#[derive(Clone, Debug)]
pub struct PathAaConfig {
    /// Number of parties.
    pub n: usize,
    /// Corruption bound; requires `t < n/3`.
    pub t: usize,
    /// The inner real-valued AA engine.
    pub engine: EngineKind,
    /// The oriented input-space path `(v_1, …, v_k)`, `v_1` being the
    /// endpoint with the lexicographically lower label.
    pub path: Arc<TreePath>,
}

impl PathAaConfig {
    /// Derives the configuration from the input-space tree, which must be
    /// a path graph.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem if `n ≤ 3t` or the tree is not
    /// a path (a vertex of degree ≥ 3 exists).
    pub fn new(n: usize, t: usize, engine: EngineKind, tree: &Tree) -> Result<Self, String> {
        if n <= 3 * t {
            return Err(format!("path AA requires n > 3t, got n = {n}, t = {t}"));
        }
        if let Some(v) = tree.vertices().find(|&v| tree.degree(v) > 2) {
            return Err(format!(
                "input space is not a path: vertex `{}` has degree {}",
                tree.label(v),
                tree.degree(v)
            ));
        }
        // Endpoints: degree <= 1. Orient from the lexicographically lower
        // label (the paper's v_1).
        let mut ends: Vec<VertexId> = tree.vertices().filter(|&v| tree.degree(v) <= 1).collect();
        ends.sort_by(|&a, &b| tree.label(a).cmp(tree.label(b)));
        let path = match ends.len() {
            1 => tree.path(ends[0], ends[0]), // single vertex
            2 => tree.path(ends[0], ends[1]),
            k => unreachable!("a path graph has 1 or 2 endpoints, found {k}"),
        };
        Ok(PathAaConfig {
            n,
            t,
            engine,
            path: Arc::new(path),
        })
    }

    /// Fixed communication rounds: one engine run with ε = 1 on
    /// `[0, D(P)]`.
    pub fn rounds(&self) -> u32 {
        engine_rounds(self.engine, self.path.edge_len() as f64, 1.0)
    }
}

/// One party of the Section 4 warm-up protocol: join the engine with the
/// input's position on the path, output the vertex at the rounded result.
#[derive(Clone, Debug)]
pub struct PathAaParty {
    cfg: PathAaConfig,
    me: PartyId,
    engine: InnerAa,
    output: Option<VertexId>,
}

impl PathAaParty {
    /// Creates the party with its input vertex.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range or `input` is not on the path.
    pub fn new(me: PartyId, cfg: PathAaConfig, input: VertexId) -> Self {
        assert!(me.index() < cfg.n, "party id out of range");
        let i = cfg
            .path
            .position(input)
            .expect("input must be a vertex of the input-space path");
        let engine = InnerAa::new(
            cfg.engine,
            me,
            cfg.n,
            cfg.t,
            1.0,
            cfg.path.edge_len() as f64,
            i as f64,
        );
        PathAaParty {
            cfg,
            me,
            engine,
            output: None,
        }
    }
}

impl Protocol for PathAaParty {
    type Msg = TreeMsg;
    type Output = VertexId;

    fn step(&mut self, round: u32, inbox: &Inbox<TreeMsg>, ctx: &mut RoundCtx<TreeMsg>) {
        if self.output.is_some() {
            return;
        }
        let inner = filter_phase(inbox, 1);
        let out = self.engine.step(self.me, self.cfg.n, round, &inner);
        forward_phase(ctx, out, 1);
        if let Some(j) = self.engine.output() {
            let ci = closest_int(j).clamp(0, self.cfg.path.len() as i64 - 1) as usize;
            self.output = Some(self.cfg.path.get(ci).expect("clamped onto the path"));
        }
    }

    fn output(&self) -> Option<VertexId> {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_net::{run_simulation, Passive, SimConfig};
    use tree_model::generate;

    #[test]
    fn converges_on_a_path_with_expected_rounds() {
        let tree = generate::path(100);
        let cfg = PathAaConfig::new(7, 2, EngineKind::Gradecast, &tree).unwrap();
        let m = tree.vertex_count();
        let inputs: Vec<VertexId> = (0..7)
            .map(|i| tree.vertices().nth((i * 13) % m).unwrap())
            .collect();
        let report = run_simulation(
            SimConfig {
                n: 7,
                t: 2,
                max_rounds: cfg.rounds() + 5,
            },
            |id, _| PathAaParty::new(id, cfg.clone(), inputs[id.index()]),
            Passive,
        )
        .unwrap();
        assert_eq!(report.communication_rounds(), cfg.rounds());
        let outputs = report.honest_outputs();
        for &a in &outputs {
            for &b in &outputs {
                assert!(tree.distance(a, b) <= 1, "1-agreement violated");
            }
        }
        let hull = tree.convex_hull(&inputs);
        for &o in &outputs {
            assert!(hull.contains(o), "validity violated");
        }
    }

    #[test]
    fn rejects_non_path_input_space() {
        let star = generate::star(5);
        let err = PathAaConfig::new(4, 1, EngineKind::Gradecast, &star).unwrap_err();
        assert!(err.contains("not a path"), "{err}");
    }

    #[test]
    fn orientation_starts_at_lower_label() {
        let tree = generate::path(5);
        let cfg = PathAaConfig::new(4, 1, EngineKind::Gradecast, &tree).unwrap();
        assert_eq!(tree.label(cfg.path.vertices()[0]).as_str(), "v0000");
    }

    #[test]
    fn single_vertex_path_is_trivial() {
        let tree = generate::path(1);
        let cfg = PathAaConfig::new(4, 1, EngineKind::Halving, &tree).unwrap();
        assert_eq!(cfg.rounds(), 0);
        let v = tree.root();
        let report = run_simulation(
            SimConfig {
                n: 4,
                t: 1,
                max_rounds: 5,
            },
            |id, _| PathAaParty::new(id, cfg.clone(), v),
            Passive,
        )
        .unwrap();
        assert!(report.honest_outputs().iter().all(|&o| o == v));
    }
}
