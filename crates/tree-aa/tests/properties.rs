//! Property tests: every tree protocol keeps Validity and 1-Agreement
//! (Definition 2), and `PathsFinder` keeps Lemma 4, across random trees,
//! inputs, (n, t) and adversaries.

use std::sync::Arc;

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sim_net::{run_simulation, CrashAdversary, PartyId, SimConfig};
use tree_aa::adversary::{NrChaos, TreeAaChaos};
use tree_aa::{
    check_paths_finder, check_tree_aa, EngineKind, NowakRybickiConfig, NowakRybickiParty,
    PathsFinderConfig, PathsFinderParty, TreeAaConfig, TreeAaParty,
};
use tree_model::{generate, Tree, VertexId};

struct Scenario {
    tree: Arc<Tree>,
    n: usize,
    t: usize,
    inputs: Vec<VertexId>,
    byz: Vec<PartyId>,
}

impl Scenario {
    fn honest_inputs(&self) -> Vec<VertexId> {
        (0..self.n)
            .filter(|i| !self.byz.iter().any(|b| b.index() == *i))
            .map(|i| self.inputs[i])
            .collect()
    }
}

fn scenario(seed: u64) -> Scenario {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let t = rng.gen_range(1..=2usize);
    let n = 3 * t + 1 + rng.gen_range(0..2usize);
    let size = rng.gen_range(2..40usize);
    let tree = match rng.gen_range(0..3) {
        0 => generate::random_prufer(size, &mut rng),
        1 => generate::random_attachment(size, &mut rng),
        _ => generate::caterpillar(size.div_ceil(3), 2),
    };
    let tree = Arc::new(generate::relabel_shuffled(&tree, &mut rng));
    let m = tree.vertex_count();
    let inputs: Vec<VertexId> = (0..n)
        .map(|_| tree.vertices().nth(rng.gen_range(0..m)).unwrap())
        .collect();
    let mut ids: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    let nbad = rng.gen_range(0..=t);
    let byz = ids[..nbad].iter().map(|&i| PartyId(i)).collect();
    Scenario {
        tree,
        n,
        t,
        inputs,
        byz,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tree_aa_gradecast_safe_under_chaos(seed in any::<u64>()) {
        let s = scenario(seed);
        let cfg = TreeAaConfig::new(s.n, s.t, EngineKind::Gradecast, &s.tree).unwrap();
        let adv = TreeAaChaos::new(s.byz.clone(), seed, 2.0 * s.tree.vertex_count() as f64);
        let report = run_simulation(
            SimConfig { n: s.n, t: s.t, max_rounds: cfg.total_rounds() + 5 },
            |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(&s.tree), s.inputs[id.index()]),
            adv,
        ).unwrap();
        check_tree_aa(&s.tree, &s.honest_inputs(), &report.honest_outputs())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    #[test]
    fn tree_aa_halving_safe_under_chaos(seed in any::<u64>()) {
        let s = scenario(seed);
        let cfg = TreeAaConfig::new(s.n, s.t, EngineKind::Halving, &s.tree).unwrap();
        let adv = TreeAaChaos::new(s.byz.clone(), seed, 2.0 * s.tree.vertex_count() as f64);
        let report = run_simulation(
            SimConfig { n: s.n, t: s.t, max_rounds: cfg.total_rounds() + 5 },
            |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(&s.tree), s.inputs[id.index()]),
            adv,
        ).unwrap();
        check_tree_aa(&s.tree, &s.honest_inputs(), &report.honest_outputs())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    #[test]
    fn tree_aa_safe_under_crashes(seed in any::<u64>()) {
        let s = scenario(seed);
        let cfg = TreeAaConfig::new(s.n, s.t, EngineKind::Gradecast, &s.tree).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x99);
        let max_r = cfg.total_rounds() + 1;
        let crashes = s.byz.iter().map(|&p| (p, rng.gen_range(1..=max_r))).collect();
        let report = run_simulation(
            SimConfig { n: s.n, t: s.t, max_rounds: cfg.total_rounds() + 5 },
            |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(&s.tree), s.inputs[id.index()]),
            CrashAdversary { crashes },
        ).unwrap();
        check_tree_aa(&s.tree, &s.honest_inputs(), &report.honest_outputs())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    #[test]
    fn paths_finder_lemma4_under_chaos(seed in any::<u64>()) {
        let s = scenario(seed);
        let cfg = PathsFinderConfig::new(s.n, s.t, EngineKind::Gradecast, &s.tree).unwrap();
        let adv = TreeAaChaos::new(s.byz.clone(), seed, 2.0 * s.tree.vertex_count() as f64);
        let report = run_simulation(
            SimConfig { n: s.n, t: s.t, max_rounds: cfg.rounds() + 5 },
            |id, _| {
                PathsFinderParty::new(id, cfg.clone(), Arc::clone(&s.tree), s.inputs[id.index()])
            },
            adv,
        ).unwrap();
        check_paths_finder(&s.tree, &s.honest_inputs(), &report.honest_outputs())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    #[test]
    fn baseline_safe_under_chaos(seed in any::<u64>()) {
        let s = scenario(seed);
        let cfg = NowakRybickiConfig::new(s.n, s.t, &s.tree).unwrap();
        let adv = NrChaos::new(s.byz.clone(), seed, s.tree.vertex_count());
        let report = run_simulation(
            SimConfig { n: s.n, t: s.t, max_rounds: cfg.rounds() + 5 },
            |id, _| {
                NowakRybickiParty::new(id, cfg.clone(), Arc::clone(&s.tree), s.inputs[id.index()])
            },
            adv,
        ).unwrap();
        check_tree_aa(&s.tree, &s.honest_inputs(), &report.honest_outputs())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    #[test]
    fn deterministic_replay(seed in any::<u64>()) {
        let s = scenario(seed);
        let cfg = TreeAaConfig::new(s.n, s.t, EngineKind::Gradecast, &s.tree).unwrap();
        let run = || {
            let adv = TreeAaChaos::new(s.byz.clone(), seed, 2.0 * s.tree.vertex_count() as f64);
            run_simulation(
                SimConfig { n: s.n, t: s.t, max_rounds: cfg.total_rounds() + 5 },
                |id, _| {
                    TreeAaParty::new(id, cfg.clone(), Arc::clone(&s.tree), s.inputs[id.index()])
                },
                adv,
            ).unwrap()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert_eq!(a.metrics.total_messages(), b.metrics.total_messages());
    }
}
