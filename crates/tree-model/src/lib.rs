//! Labeled input-space trees for Byzantine approximate agreement.
//!
//! This crate models the *input space* of the approximate-agreement (AA)
//! problem on trees, as defined by Nowak and Rybicki (DISC 2019) and used by
//! Fuchs, Ghinea and Parsaeian (PODC 2025): a publicly known, labeled tree
//! `T` whose vertices are the values parties may hold, output, and reason
//! about. It provides every purely combinatorial ingredient of the `TreeAA`
//! protocol:
//!
//! * [`Tree`] — an immutable labeled tree with a canonical root (the vertex
//!   with the lexicographically smallest label), built through
//!   [`TreeBuilder`];
//! * paths ([`TreePath`]), distances, and lowest common ancestors
//!   ([`Tree::lca_naive`] and the binary-lifting [`LcaTable`]);
//! * convex hulls of vertex sets ([`Tree::convex_hull`]) — the smallest
//!   connected subtree containing the set;
//! * the Euler-tour list representation ([`EulerList`],
//!   [`list_construction`]) used by the `PathsFinder` subprotocol, with the
//!   exact guarantees of Lemma 2 of the paper;
//! * projections of vertices onto paths ([`ProjectionTable`], Lemma 1);
//! * the paper's `closestInt` rounding rule ([`closest_int`], Remarks 1–2);
//! * deterministic and random tree generators for experiments
//!   ([`generate`]).
//!
//! # Example
//!
//! ```
//! use tree_model::{TreeBuilder, list_construction};
//!
//! # fn main() -> Result<(), tree_model::TreeError> {
//! // The example tree from Figure 3 of the paper.
//! let mut b = TreeBuilder::new();
//! for v in ["v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8"] {
//!     b.add_vertex(v)?;
//! }
//! for (a, c) in [("v1", "v2"), ("v2", "v3"), ("v3", "v6"), ("v3", "v7"),
//!                ("v2", "v4"), ("v4", "v8"), ("v2", "v5")] {
//!     b.add_edge(a, c)?;
//! }
//! let tree = b.build()?;
//! assert_eq!(tree.label(tree.root()).as_str(), "v1");
//!
//! let list = list_construction(&tree);
//! assert_eq!(list.len(), 15); // 2 * 8 - 1 entries
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
mod diameter;
mod euler;
mod generate_mod;
mod hull;
mod io;
mod label;
mod lca;
mod path;
mod project;
mod round;
mod tree;

pub use diameter::DiameterInfo;
pub use euler::{list_construction, EulerList};
pub use hull::ConvexHull;
pub use io::{parse_tree, ParseTreeError};
pub use label::Label;
pub use lca::LcaTable;
pub use path::TreePath;
pub use project::ProjectionTable;
pub use round::closest_int;
pub use tree::{Tree, TreeBuilder, TreeError, VertexId};

/// Tree generators used by the examples, tests and benchmarks.
pub mod generate {
    pub use crate::generate_mod::*;
}
