//! Vertex labels and their lexicographic order.

use std::borrow::Borrow;
use std::fmt;

/// A vertex label of the publicly known input-space tree.
///
/// Labels are arbitrary non-empty UTF-8 strings. The protocol relies on their
/// **lexicographic order** (byte order of the UTF-8 encoding, which is what
/// `str`'s `Ord` provides) in two places:
///
/// * the root of the tree is the vertex with the smallest label, and
/// * the children of a vertex are visited in ascending label order during
///   `ListConstruction`, so that all honest parties derive the identical
///   Euler list.
///
/// # Example
///
/// ```
/// use tree_model::Label;
///
/// let a = Label::new("alpha");
/// let b = Label::new("beta");
/// assert!(a < b);
/// assert_eq!(a.as_str(), "alpha");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(String);

impl Label {
    /// Creates a label from anything string-like.
    pub fn new(s: impl Into<String>) -> Self {
        Label(s.into())
    }

    /// Returns the label text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label(s.to_owned())
    }
}

impl From<String> for Label {
    fn from(s: String) -> Self {
        Label(s)
    }
}

impl AsRef<str> for Label {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Label {
    fn borrow(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Label::new("a") < Label::new("b"));
        assert!(Label::new("v1") < Label::new("v10"));
        assert!(
            Label::new("v10") < Label::new("v2"),
            "lexicographic, not numeric"
        );
        assert!(Label::new("") < Label::new("a"));
    }

    #[test]
    fn display_and_as_str_agree() {
        let l = Label::new("root");
        assert_eq!(l.to_string(), "root");
        assert_eq!(l.as_str(), "root");
    }

    #[test]
    fn conversions() {
        let a: Label = "x".into();
        let b: Label = String::from("x").into();
        assert_eq!(a, b);
        assert_eq!(a.as_ref(), "x");
    }

    #[test]
    fn hash_borrow_str_lookup() {
        use std::collections::HashMap;
        let mut m: HashMap<Label, u32> = HashMap::new();
        m.insert(Label::new("k"), 7);
        // Borrow<str> lets us look up by &str.
        assert_eq!(m.get("k"), Some(&7));
    }
}
