//! The immutable labeled tree and its builder.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::label::Label;

/// A handle to a vertex of a [`Tree`].
///
/// Vertex ids are dense indices in `0..tree.vertex_count()` assigned in
/// insertion order by the [`TreeBuilder`]. They are only meaningful relative
/// to the tree they came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub(crate) usize);

impl VertexId {
    /// Returns the dense index of this vertex.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Errors raised while constructing a [`Tree`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// The same label was added twice.
    DuplicateLabel(Label),
    /// An edge referenced a label that was never added.
    UnknownLabel(Label),
    /// An edge connected a vertex to itself.
    SelfLoop(Label),
    /// The same undirected edge was added twice.
    DuplicateEdge(Label, Label),
    /// The edge set contains a cycle (|E| ≥ |V| on some component).
    Cyclic,
    /// The vertex set is not connected by the edges.
    Disconnected,
    /// No vertices were added.
    Empty,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::DuplicateLabel(l) => write!(f, "duplicate vertex label `{l}`"),
            TreeError::UnknownLabel(l) => write!(f, "edge references unknown label `{l}`"),
            TreeError::SelfLoop(l) => write!(f, "self-loop on vertex `{l}`"),
            TreeError::DuplicateEdge(a, b) => write!(f, "duplicate edge between `{a}` and `{b}`"),
            TreeError::Cyclic => f.write_str("edge set contains a cycle"),
            TreeError::Disconnected => f.write_str("vertices are not connected"),
            TreeError::Empty => f.write_str("tree has no vertices"),
        }
    }
}

impl Error for TreeError {}

/// Incremental constructor for [`Tree`].
///
/// Add every vertex with [`TreeBuilder::add_vertex`], connect them with
/// [`TreeBuilder::add_edge`], and finish with [`TreeBuilder::build`], which
/// validates that the result is a non-empty, connected, acyclic graph.
///
/// # Example
///
/// ```
/// use tree_model::TreeBuilder;
///
/// # fn main() -> Result<(), tree_model::TreeError> {
/// let mut b = TreeBuilder::new();
/// b.add_vertex("a")?;
/// b.add_vertex("b")?;
/// b.add_edge("a", "b")?;
/// let tree = b.build()?;
/// assert_eq!(tree.vertex_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct TreeBuilder {
    labels: Vec<Label>,
    by_label: HashMap<Label, usize>,
    edges: Vec<(usize, usize)>,
}

impl TreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a vertex with the given label and returns its future id.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::DuplicateLabel`] if the label already exists.
    pub fn add_vertex(&mut self, label: impl Into<Label>) -> Result<VertexId, TreeError> {
        let label = label.into();
        if self.by_label.contains_key(&label) {
            return Err(TreeError::DuplicateLabel(label));
        }
        let id = self.labels.len();
        self.by_label.insert(label.clone(), id);
        self.labels.push(label);
        Ok(VertexId(id))
    }

    /// Adds an undirected edge between two previously added labels.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownLabel`] if either endpoint was never
    /// added, [`TreeError::SelfLoop`] for an edge from a vertex to itself,
    /// and [`TreeError::DuplicateEdge`] if the edge was already added.
    pub fn add_edge(&mut self, a: impl Into<Label>, b: impl Into<Label>) -> Result<(), TreeError> {
        let (a, b) = (a.into(), b.into());
        let ia = *self
            .by_label
            .get(&a)
            .ok_or_else(|| TreeError::UnknownLabel(a.clone()))?;
        let ib = *self
            .by_label
            .get(&b)
            .ok_or_else(|| TreeError::UnknownLabel(b.clone()))?;
        if ia == ib {
            return Err(TreeError::SelfLoop(a));
        }
        let key = (ia.min(ib), ia.max(ib));
        if self.edges.contains(&key) {
            return Err(TreeError::DuplicateEdge(a, b));
        }
        self.edges.push(key);
        Ok(())
    }

    /// Validates the accumulated vertices and edges and produces the tree.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::Empty`] for zero vertices, [`TreeError::Cyclic`]
    /// when `|E| != |V| - 1`, and [`TreeError::Disconnected`] when the edges
    /// do not connect all vertices.
    pub fn build(self) -> Result<Tree, TreeError> {
        let n = self.labels.len();
        if n == 0 {
            return Err(TreeError::Empty);
        }
        if self.edges.len() >= n {
            return Err(TreeError::Cyclic);
        }
        if self.edges.len() + 1 < n {
            return Err(TreeError::Disconnected);
        }

        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            adj[b].push(a);
        }

        // Neighbor lists sorted by label so every traversal is canonical.
        let labels = self.labels;
        for list in &mut adj {
            list.sort_by(|&x, &y| labels[x].cmp(&labels[y]));
        }

        // Root: lexicographically smallest label.
        let root = (0..n)
            .min_by(|&x, &y| labels[x].cmp(&labels[y]))
            .expect("n > 0");

        // Iterative DFS from the root: connectivity check + parent/depth.
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut depth: Vec<u32> = vec![0; n];
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut stack = vec![root];
        visited[root] = true;
        while let Some(v) = stack.pop() {
            order.push(v);
            // Reverse so that the smallest-label child is processed first.
            for &w in adj[v].iter().rev() {
                if !visited[w] {
                    visited[w] = true;
                    parent[w] = Some(v);
                    depth[w] = depth[v] + 1;
                    stack.push(w);
                }
            }
        }
        if order.len() != n {
            // |E| = |V| - 1 but not all vertices reachable => a cycle exists
            // in one component and another component is separated. Report
            // disconnection, which is what the caller can act on.
            return Err(TreeError::Disconnected);
        }

        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (v, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[*p].push(v);
            }
        }
        for list in &mut children {
            list.sort_by(|&x, &y| labels[x].cmp(&labels[y]));
        }

        Ok(Tree {
            labels,
            by_label: self
                .by_label
                .into_iter()
                .map(|(l, i)| (l, VertexId(i)))
                .collect(),
            adj: adj
                .into_iter()
                .map(|l| l.into_iter().map(VertexId).collect())
                .collect(),
            root: VertexId(root),
            parent: parent.into_iter().map(|p| p.map(VertexId)).collect(),
            depth,
            children: children
                .into_iter()
                .map(|l| l.into_iter().map(VertexId).collect())
                .collect(),
            dfs_order: order.into_iter().map(VertexId).collect(),
        })
    }
}

/// An immutable, labeled, rooted tree — the public input space of the AA
/// problem.
///
/// The root is always the vertex with the lexicographically smallest label
/// (line 1 of the `TreeAA` protocol); parent/child/depth accessors are
/// relative to that root. Neighbor and child lists are sorted by label so
/// that every honest party traverses the tree identically.
///
/// # Example
///
/// ```
/// use tree_model::generate;
///
/// let tree = generate::path(5);
/// assert_eq!(tree.vertex_count(), 5);
/// assert_eq!(tree.label(tree.root()).as_str(), "v0000");
/// let a = tree.vertex("v0000").unwrap();
/// let b = tree.vertex("v0004").unwrap();
/// assert_eq!(tree.distance(a, b), 4);
/// ```
#[derive(Clone, Debug)]
pub struct Tree {
    labels: Vec<Label>,
    by_label: HashMap<Label, VertexId>,
    adj: Vec<Vec<VertexId>>,
    root: VertexId,
    parent: Vec<Option<VertexId>>,
    depth: Vec<u32>,
    children: Vec<Vec<VertexId>>,
    /// Preorder DFS sequence from the root, children in label order.
    dfs_order: Vec<VertexId>,
}

impl Tree {
    /// Builds a tree directly from labels and label pairs.
    ///
    /// Convenience wrapper around [`TreeBuilder`]; a single label with no
    /// edges yields the one-vertex tree.
    ///
    /// # Errors
    ///
    /// Propagates any [`TreeError`] from the builder.
    ///
    /// # Example
    ///
    /// ```
    /// use tree_model::Tree;
    ///
    /// # fn main() -> Result<(), tree_model::TreeError> {
    /// let tree = Tree::from_labeled_edges(["a", "b", "c"], [("a", "b"), ("a", "c")])?;
    /// assert_eq!(tree.vertex_count(), 3);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_labeled_edges<L, E, A, B>(labels: L, edges: E) -> Result<Tree, TreeError>
    where
        L: IntoIterator,
        L::Item: Into<Label>,
        E: IntoIterator<Item = (A, B)>,
        A: Into<Label>,
        B: Into<Label>,
    {
        let mut b = TreeBuilder::new();
        for l in labels {
            b.add_vertex(l)?;
        }
        for (x, y) in edges {
            b.add_edge(x, y)?;
        }
        b.build()
    }

    /// Number of vertices `|V(T)|`.
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// The canonical root: the vertex with the smallest label.
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// The label of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this tree.
    pub fn label(&self, v: VertexId) -> &Label {
        &self.labels[v.0]
    }

    /// Looks a vertex up by label.
    pub fn vertex(&self, label: &str) -> Option<VertexId> {
        self.by_label.get(label).copied()
    }

    /// Iterates over all vertex ids in dense-index order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.labels.len()).map(VertexId)
    }

    /// The neighbors of `v`, sorted by label.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[v.0]
    }

    /// The degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v.0].len()
    }

    /// The parent of `v` with respect to the canonical root.
    pub fn parent(&self, v: VertexId) -> Option<VertexId> {
        self.parent[v.0]
    }

    /// The children of `v` with respect to the canonical root, by label.
    pub fn children(&self, v: VertexId) -> &[VertexId] {
        &self.children[v.0]
    }

    /// The depth of `v` (root has depth 0).
    pub fn depth(&self, v: VertexId) -> u32 {
        self.depth[v.0]
    }

    /// Preorder DFS sequence from the root (children in label order).
    pub fn dfs_preorder(&self) -> &[VertexId] {
        &self.dfs_order
    }

    /// Whether `a` is an ancestor of `b` (inclusive: every vertex is an
    /// ancestor of itself).
    pub fn is_ancestor(&self, a: VertexId, b: VertexId) -> bool {
        // Walk b up to a's depth, then compare. O(depth) — fine for the
        // tree sizes in this crate's hot paths; LCA queries use the
        // precomputed table in `lca.rs`.
        let mut b = b;
        while self.depth[b.0] > self.depth[a.0] {
            b = self.parent[b.0].expect("deeper vertex has a parent");
        }
        a == b
    }

    /// `true` if `a` and `b` share an edge.
    pub fn adjacent(&self, a: VertexId, b: VertexId) -> bool {
        self.adj[a.0].contains(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure3() -> Tree {
        Tree::from_labeled_edges(
            ["v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8"],
            [
                ("v1", "v2"),
                ("v2", "v3"),
                ("v3", "v6"),
                ("v3", "v7"),
                ("v2", "v4"),
                ("v4", "v8"),
                ("v2", "v5"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn builds_figure3_tree() {
        let t = figure3();
        assert_eq!(t.vertex_count(), 8);
        assert_eq!(t.label(t.root()).as_str(), "v1");
        let v2 = t.vertex("v2").unwrap();
        assert_eq!(t.parent(v2), Some(t.root()));
        let kids: Vec<_> = t
            .children(v2)
            .iter()
            .map(|&c| t.label(c).as_str())
            .collect();
        assert_eq!(kids, ["v3", "v4", "v5"]);
    }

    #[test]
    fn single_vertex_tree() {
        let t = Tree::from_labeled_edges(["only"], Vec::<(&str, &str)>::new()).unwrap();
        assert_eq!(t.vertex_count(), 1);
        assert_eq!(t.root(), t.vertex("only").unwrap());
        assert_eq!(t.parent(t.root()), None);
        assert_eq!(t.children(t.root()), &[]);
        assert_eq!(t.depth(t.root()), 0);
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(TreeBuilder::new().build().unwrap_err(), TreeError::Empty);
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut b = TreeBuilder::new();
        b.add_vertex("x").unwrap();
        assert!(matches!(
            b.add_vertex("x"),
            Err(TreeError::DuplicateLabel(_))
        ));
    }

    #[test]
    fn unknown_edge_endpoint_rejected() {
        let mut b = TreeBuilder::new();
        b.add_vertex("x").unwrap();
        assert!(matches!(
            b.add_edge("x", "y"),
            Err(TreeError::UnknownLabel(_))
        ));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = TreeBuilder::new();
        b.add_vertex("x").unwrap();
        assert!(matches!(b.add_edge("x", "x"), Err(TreeError::SelfLoop(_))));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = TreeBuilder::new();
        b.add_vertex("x").unwrap();
        b.add_vertex("y").unwrap();
        b.add_edge("x", "y").unwrap();
        assert!(matches!(
            b.add_edge("y", "x"),
            Err(TreeError::DuplicateEdge(_, _))
        ));
    }

    #[test]
    fn cycle_rejected() {
        let mut b = TreeBuilder::new();
        for v in ["a", "b", "c"] {
            b.add_vertex(v).unwrap();
        }
        b.add_edge("a", "b").unwrap();
        b.add_edge("b", "c").unwrap();
        b.add_edge("c", "a").unwrap();
        assert_eq!(b.build().unwrap_err(), TreeError::Cyclic);
    }

    #[test]
    fn disconnected_rejected() {
        let mut b = TreeBuilder::new();
        for v in ["a", "b", "c"] {
            b.add_vertex(v).unwrap();
        }
        b.add_edge("a", "b").unwrap();
        assert_eq!(b.build().unwrap_err(), TreeError::Disconnected);
    }

    #[test]
    fn cycle_plus_isolated_component_rejected() {
        // |E| = |V| - 1 overall, but one component is a triangle and one
        // vertex is isolated.
        let mut b = TreeBuilder::new();
        for v in ["a", "b", "c", "d"] {
            b.add_vertex(v).unwrap();
        }
        b.add_edge("a", "b").unwrap();
        b.add_edge("b", "c").unwrap();
        b.add_edge("c", "a").unwrap();
        assert_eq!(b.build().unwrap_err(), TreeError::Disconnected);
    }

    #[test]
    fn ancestry() {
        let t = figure3();
        let (v1, v2, v8, v5) = (
            t.vertex("v1").unwrap(),
            t.vertex("v2").unwrap(),
            t.vertex("v8").unwrap(),
            t.vertex("v5").unwrap(),
        );
        assert!(t.is_ancestor(v1, v8));
        assert!(t.is_ancestor(v2, v8));
        assert!(t.is_ancestor(v8, v8));
        assert!(!t.is_ancestor(v8, v2));
        assert!(!t.is_ancestor(v5, v8));
    }

    #[test]
    fn adjacency_is_symmetric_and_sorted() {
        let t = figure3();
        let v2 = t.vertex("v2").unwrap();
        let labels: Vec<_> = t
            .neighbors(v2)
            .iter()
            .map(|&v| t.label(v).as_str())
            .collect();
        assert_eq!(labels, ["v1", "v3", "v4", "v5"]);
        for v in t.vertices() {
            for &w in t.neighbors(v) {
                assert!(t.adjacent(w, v));
            }
        }
    }

    #[test]
    fn dfs_preorder_visits_all_once_smallest_child_first() {
        let t = figure3();
        let order: Vec<_> = t
            .dfs_preorder()
            .iter()
            .map(|&v| t.label(v).as_str())
            .collect();
        assert_eq!(order, ["v1", "v2", "v3", "v6", "v7", "v4", "v8", "v5"]);
    }
}
