//! Convex hulls of vertex sets: the smallest connected subtree containing
//! the set (Definition 2 of the paper; Figure 1).

use crate::path::TreePath;
use crate::tree::{Tree, VertexId};

/// The convex hull `⟨S⟩` of a vertex set `S`: the vertex set of the smallest
/// connected subtree of `T` containing `S`.
///
/// Equivalently (and this is what the implementation checks), `w ∈ ⟨S⟩` iff
/// there exist `u, v ∈ S` with `w ∈ V(P(u, v))`.
///
/// # Example
///
/// ```
/// use tree_model::{generate, Tree};
///
/// let t = generate::star(5); // center v0000, leaves v0001..v0004
/// let s = [t.vertex("v0001").unwrap(), t.vertex("v0002").unwrap()];
/// let hull = t.convex_hull(&s);
/// assert_eq!(hull.len(), 3); // both leaves plus the center
/// assert!(hull.contains(t.root()));
/// assert!(!hull.contains(t.vertex("v0003").unwrap()));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvexHull {
    member: Vec<bool>,
    vertices: Vec<VertexId>,
}

impl ConvexHull {
    /// Whether `v` lies in the hull.
    pub fn contains(&self, v: VertexId) -> bool {
        self.member[v.index()]
    }

    /// The hull's vertices in dense-index order.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Number of vertices in the hull.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` iff the hull is empty (only for `S = ∅`).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Iterates over member vertices.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices.iter().copied()
    }
}

impl Tree {
    /// Computes the convex hull `⟨S⟩` in `O(|V|)` time.
    ///
    /// Method: root the tree anywhere (we use the canonical root), count the
    /// members of `S` in every subtree, and keep `v` iff `v ∈ S` or at least
    /// two of the *directions* around `v` (each child subtree, plus the
    /// parent side) contain members of `S` — exactly the vertices lying on a
    /// path between two members.
    ///
    /// Duplicate vertices in `S` are allowed and equivalent to a set.
    /// `S = ∅` yields the empty hull.
    pub fn convex_hull(&self, s: &[VertexId]) -> ConvexHull {
        let n = self.vertex_count();
        let mut in_s = vec![false; n];
        let mut total = 0usize;
        for &v in s {
            if !in_s[v.index()] {
                in_s[v.index()] = true;
                total += 1;
            }
        }
        if total == 0 {
            return ConvexHull {
                member: vec![false; n],
                vertices: Vec::new(),
            };
        }

        // Subtree counts via reverse preorder (children before parents).
        let mut sub = vec![0usize; n];
        for &v in self.dfs_preorder().iter().rev() {
            let mut c = usize::from(in_s[v.index()]);
            for &ch in self.children(v) {
                c += sub[ch.index()];
            }
            sub[v.index()] = c;
        }

        let mut member = vec![false; n];
        let mut vertices = Vec::new();
        for v in self.vertices() {
            let mut directions = 0;
            for &ch in self.children(v) {
                if sub[ch.index()] > 0 {
                    directions += 1;
                }
            }
            if total - sub[v.index()] > 0 {
                directions += 1; // the parent side
            }
            if in_s[v.index()] || directions >= 2 {
                member[v.index()] = true;
                vertices.push(v);
            }
        }
        ConvexHull { member, vertices }
    }

    /// Whether `w` lies in `⟨S⟩` — the membership characterization
    /// `∃ u, v ∈ S : w ∈ V(P(u, v))` computed directly; `O(|S|² · depth)`.
    /// Reference implementation used to cross-check
    /// [`Tree::convex_hull`].
    pub fn hull_contains_naive(&self, s: &[VertexId], w: VertexId) -> bool {
        s.iter()
            .any(|&u| s.iter().any(|&v| self.path(u, v).contains(w)))
    }

    /// The diameter path of the subtree induced by `hull` — a longest simple
    /// path all of whose vertices are in the hull. Ties broken
    /// label-deterministically so that every honest party computes the same
    /// path. Returns `None` for an empty hull.
    pub fn hull_diameter_path(&self, hull: &ConvexHull) -> Option<TreePath> {
        let start = hull.vertices().first().copied()?;
        let a = self.farthest_in(hull, start);
        let b = self.farthest_in(hull, a);
        Some(self.path(a, b))
    }

    /// The diameter path of the connected subgraph induced by `members`
    /// (which must induce a subtree): a longest simple path inside it,
    /// endpoints chosen label-deterministically. Returns `None` for an
    /// empty member set. Used by the safe-area baselines, whose safe areas
    /// are subtrees but not `ConvexHull` values.
    pub fn induced_diameter_path(&self, members: &[VertexId]) -> Option<TreePath> {
        let mut member = vec![false; self.vertex_count()];
        for &v in members {
            member[v.index()] = true;
        }
        let hull = ConvexHull {
            member,
            vertices: members.to_vec(),
        };
        self.hull_diameter_path(&hull)
    }

    /// BFS within `hull` from `from`, returning the farthest vertex with
    /// label-order tie-breaking. `from` must be in the hull.
    fn farthest_in(&self, hull: &ConvexHull, from: VertexId) -> VertexId {
        debug_assert!(hull.contains(from));
        let n = self.vertex_count();
        let mut dist = vec![usize::MAX; n];
        dist[from.index()] = 0;
        let mut queue = std::collections::VecDeque::from([from]);
        let mut best = from;
        while let Some(v) = queue.pop_front() {
            let better = dist[v.index()] > dist[best.index()]
                || (dist[v.index()] == dist[best.index()] && self.label(v) < self.label(best));
            if better {
                best = v;
            }
            for &w in self.neighbors(v) {
                if hull.contains(w) && dist[w.index()] == usize::MAX {
                    dist[w.index()] = dist[v.index()] + 1;
                    queue.push_back(w);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tree of Figure 1 cannot be read off the (image) figure exactly,
    /// but its caption is: the hull of {u1, u2, u3} is {u1, ..., u5}. We
    /// reconstruct a tree consistent with it: u4 and u5 are the interior
    /// vertices joining the three inputs, plus extra vertices outside the
    /// hull.
    fn figure1() -> Tree {
        Tree::from_labeled_edges(
            ["u1", "u2", "u3", "u4", "u5", "w1", "w2"],
            [
                ("u1", "u4"),
                ("u4", "u5"),
                ("u5", "u2"),
                ("u4", "u3"),
                ("w1", "u5"),
                ("w2", "u1"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure1_hull() {
        let t = figure1();
        let s: Vec<_> = ["u1", "u2", "u3"]
            .iter()
            .map(|l| t.vertex(l).unwrap())
            .collect();
        let hull = t.convex_hull(&s);
        let mut labels: Vec<_> = hull.iter().map(|v| t.label(v).to_string()).collect();
        labels.sort();
        assert_eq!(labels, ["u1", "u2", "u3", "u4", "u5"]);
    }

    #[test]
    fn empty_set_has_empty_hull() {
        let t = figure1();
        let hull = t.convex_hull(&[]);
        assert!(hull.is_empty());
        assert_eq!(hull.len(), 0);
        assert!(t.vertices().all(|v| !hull.contains(v)));
    }

    #[test]
    fn singleton_hull_is_singleton() {
        let t = figure1();
        for v in t.vertices() {
            let hull = t.convex_hull(&[v]);
            assert_eq!(hull.vertices(), &[v]);
        }
    }

    #[test]
    fn duplicates_do_not_matter() {
        let t = figure1();
        let a = t.vertex("u1").unwrap();
        let b = t.vertex("u2").unwrap();
        assert_eq!(t.convex_hull(&[a, b]), t.convex_hull(&[a, a, b, b, a]));
    }

    #[test]
    fn pair_hull_is_exactly_the_path() {
        let t = figure1();
        for u in t.vertices() {
            for v in t.vertices() {
                let hull = t.convex_hull(&[u, v]);
                let path = t.path(u, v);
                let mut hv: Vec<_> = hull.vertices().to_vec();
                let mut pv: Vec<_> = path.vertices().to_vec();
                hv.sort();
                pv.sort();
                assert_eq!(hv, pv);
            }
        }
    }

    #[test]
    fn matches_naive_characterization() {
        let t = figure1();
        let all: Vec<_> = t.vertices().collect();
        // All subsets of size <= 3 of the 7 vertices.
        for i in 0..all.len() {
            for j in i..all.len() {
                for k in j..all.len() {
                    let s = [all[i], all[j], all[k]];
                    let hull = t.convex_hull(&s);
                    for w in t.vertices() {
                        assert_eq!(
                            hull.contains(w),
                            t.hull_contains_naive(&s, w),
                            "mismatch for S={s:?}, w={w:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn hull_is_connected() {
        let t = figure1();
        let s: Vec<_> = ["u2", "u3", "w2"]
            .iter()
            .map(|l| t.vertex(l).unwrap())
            .collect();
        let hull = t.convex_hull(&s);
        // BFS within hull from one member must reach all members.
        let start = hull.vertices()[0];
        let mut seen = vec![false; t.vertex_count()];
        seen[start.index()] = true;
        let mut q = std::collections::VecDeque::from([start]);
        let mut count = 1;
        while let Some(v) = q.pop_front() {
            for &w in t.neighbors(v) {
                if hull.contains(w) && !seen[w.index()] {
                    seen[w.index()] = true;
                    count += 1;
                    q.push_back(w);
                }
            }
        }
        assert_eq!(count, hull.len());
    }

    #[test]
    fn diameter_path_stays_in_hull_and_is_longest() {
        let t = figure1();
        let s: Vec<_> = ["u1", "u2", "u3"]
            .iter()
            .map(|l| t.vertex(l).unwrap())
            .collect();
        let hull = t.convex_hull(&s);
        let dia = t.hull_diameter_path(&hull).unwrap();
        assert!(dia.vertices().iter().all(|&v| hull.contains(v)));
        // No pair within the hull is farther apart.
        for &u in hull.vertices() {
            for &v in hull.vertices() {
                assert!(t.distance(u, v) <= dia.edge_len());
            }
        }
    }

    #[test]
    fn diameter_of_empty_hull_is_none() {
        let t = figure1();
        let hull = t.convex_hull(&[]);
        assert!(t.hull_diameter_path(&hull).is_none());
    }
}
