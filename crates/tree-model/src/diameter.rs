//! Tree diameter `D(T)` and a canonical diameter path.

use crate::path::TreePath;
use crate::tree::{Tree, VertexId};

/// The diameter of a tree together with one (canonical) longest path.
#[derive(Clone, Debug)]
pub struct DiameterInfo {
    /// `D(T)`: the number of edges of a longest simple path.
    pub diameter: usize,
    /// A longest path, endpoints chosen label-deterministically.
    pub path: TreePath,
}

impl Tree {
    /// Computes `D(T)` and a canonical diameter path by double BFS.
    ///
    /// Tie-breaking is by label at both BFS sweeps, so all parties agree on
    /// the returned path. `O(|V|)`.
    ///
    /// # Example
    ///
    /// ```
    /// use tree_model::generate;
    ///
    /// let t = generate::star(6);
    /// let d = t.diameter_info();
    /// assert_eq!(d.diameter, 2); // leaf - center - leaf
    /// ```
    pub fn diameter_info(&self) -> DiameterInfo {
        let a = self.farthest_from(self.root());
        let b = self.farthest_from(a);
        let path = self.path(a, b);
        DiameterInfo {
            diameter: path.edge_len(),
            path,
        }
    }

    /// `D(T)` alone.
    pub fn diameter(&self) -> usize {
        self.diameter_info().diameter
    }

    fn farthest_from(&self, from: VertexId) -> VertexId {
        let n = self.vertex_count();
        let mut dist = vec![usize::MAX; n];
        dist[from.index()] = 0;
        let mut queue = std::collections::VecDeque::from([from]);
        let mut best = from;
        while let Some(v) = queue.pop_front() {
            let better = dist[v.index()] > dist[best.index()]
                || (dist[v.index()] == dist[best.index()] && self.label(v) < self.label(best));
            if better {
                best = v;
            }
            for &w in self.neighbors(v) {
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = dist[v.index()] + 1;
                    queue.push_back(w);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use crate::generate;

    #[test]
    fn path_diameter_is_its_length() {
        for k in 1..12 {
            let t = generate::path(k);
            assert_eq!(t.diameter(), k - 1);
        }
    }

    #[test]
    fn star_diameter_is_two() {
        let t = generate::star(9);
        assert_eq!(t.diameter(), 2);
    }

    #[test]
    fn single_vertex_diameter_zero() {
        let t = generate::path(1);
        let d = t.diameter_info();
        assert_eq!(d.diameter, 0);
        assert_eq!(d.path.len(), 1);
    }

    #[test]
    fn balanced_binary_diameter() {
        // depth d: two leaf-to-leaf arms through the root -> 2d edges.
        for depth in 1..6 {
            let t = generate::balanced_kary(2, depth);
            assert_eq!(t.diameter(), 2 * depth as usize);
        }
    }

    #[test]
    fn matches_bruteforce_on_small_trees() {
        for t in [
            generate::caterpillar(6, 2),
            generate::spider(3, 4),
            generate::broom(5, 4),
        ] {
            let mut best = 0;
            for u in t.vertices() {
                for v in t.vertices() {
                    best = best.max(t.distance(u, v));
                }
            }
            assert_eq!(t.diameter(), best);
        }
    }

    #[test]
    fn diameter_path_is_deterministic() {
        let t = generate::caterpillar(7, 3);
        let p1 = t.diameter_info().path;
        let p2 = t.diameter_info().path;
        assert_eq!(p1, p2);
        assert_eq!(p1.edge_len(), t.diameter());
    }
}

impl Tree {
    /// The eccentricity of `v`: its distance to the farthest vertex.
    ///
    /// # Example
    ///
    /// ```
    /// use tree_model::generate;
    ///
    /// let t = generate::path(5);
    /// assert_eq!(t.eccentricity(t.root()), 4); // endpoint of the path
    /// ```
    pub fn eccentricity(&self, v: VertexId) -> usize {
        let mut dist = vec![usize::MAX; self.vertex_count()];
        dist[v.index()] = 0;
        let mut queue = std::collections::VecDeque::from([v]);
        while let Some(u) = queue.pop_front() {
            for &w in self.neighbors(u) {
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = dist[u.index()] + 1;
                    queue.push_back(w);
                }
            }
        }
        // The tree is connected, so BFS visits everything and the array
        // holds no `usize::MAX` sentinels; the max scan over it is a flat
        // kernel sweep rather than a per-pop comparison.
        aa_kernels::min_max_usize(&dist).map_or(0, |(_, hi)| hi)
    }

    /// The height of the tree as rooted at the canonical root: the depth
    /// of the deepest vertex. This bounds the length of every
    /// `PathsFinder` output path.
    pub fn height(&self) -> usize {
        let depths: Vec<usize> = self.vertices().map(|v| self.depth(v) as usize).collect();
        aa_kernels::min_max_usize(&depths).map_or(0, |(_, hi)| hi)
    }

    /// A centroid of the tree: a vertex whose removal leaves components of
    /// at most `⌊|V|/2⌋` vertices. Ties (a tree has one or two centroids)
    /// are broken toward the smaller label, so the choice is canonical and
    /// publicly computable.
    ///
    /// # Example
    ///
    /// ```
    /// use tree_model::generate;
    ///
    /// let t = generate::path(5);
    /// let c = t.centroid();
    /// assert_eq!(t.label(c).as_str(), "v0002"); // the middle vertex
    /// ```
    pub fn centroid(&self) -> VertexId {
        let n = self.vertex_count();
        // Subtree sizes via reverse preorder.
        let mut sub = vec![1usize; n];
        for &v in self.dfs_preorder().iter().rev() {
            for &c in self.children(v) {
                sub[v.index()] += sub[c.index()];
            }
        }
        let mut best: Option<VertexId> = None;
        let mut best_load = usize::MAX;
        for v in self.vertices() {
            let mut load = n - sub[v.index()]; // parent side
            for &c in self.children(v) {
                load = load.max(sub[c.index()]);
            }
            let better = load < best_load
                || (load == best_load && best.is_some_and(|b| self.label(v) < self.label(b)));
            if better {
                best = Some(v);
                best_load = load;
            }
        }
        best.expect("non-empty tree has a centroid")
    }
}

#[cfg(test)]
mod centroid_tests {
    use crate::generate;

    #[test]
    fn centroid_of_star_is_the_center() {
        let t = generate::star(9);
        assert_eq!(t.centroid(), t.root());
    }

    #[test]
    fn centroid_minimizes_max_component() {
        for t in [
            generate::path(10),
            generate::caterpillar(5, 2),
            generate::spider(3, 4),
            generate::balanced_kary(2, 4),
        ] {
            let n = t.vertex_count();
            let c = t.centroid();
            // Check the defining property directly: every component of
            // T \ {c} has at most n/2 vertices.
            for &nb in t.neighbors(c) {
                // Size of nb's component when c is removed = vertices
                // closer to nb than to c.
                let count = t
                    .vertices()
                    .filter(|&v| t.distance(v, nb) < t.distance(v, c))
                    .count();
                assert!(count <= n / 2, "component of size {count} > {}", n / 2);
            }
        }
    }

    #[test]
    fn eccentricity_extremes() {
        let t = generate::path(7);
        let ends: Vec<_> = t.vertices().filter(|&v| t.degree(v) == 1).collect();
        for e in ends {
            assert_eq!(t.eccentricity(e), 6);
        }
        let mid = t.centroid();
        assert_eq!(t.eccentricity(mid), 3);
        // max eccentricity == diameter
        let d = t.vertices().map(|v| t.eccentricity(v)).max().unwrap();
        assert_eq!(d, t.diameter());
    }

    #[test]
    fn height_bounds_depths() {
        for t in [
            generate::path(9),
            generate::balanced_kary(3, 3),
            generate::broom(4, 5),
        ] {
            let h = t.height();
            assert!(t.vertices().all(|v| (t.depth(v) as usize) <= h));
            assert!(t.vertices().any(|v| t.depth(v) as usize == h));
            assert!(h <= t.diameter().max(1));
        }
    }

    #[test]
    fn kernel_scans_match_naive_above_chunk_threshold() {
        // path(300) makes the dist/depth arrays longer than the kernel's
        // chunk-dispatch threshold, so the lane-folded sweep (not the
        // small-slice fallback) must reproduce the sequential extrema.
        let t = generate::path(300);
        for v in t.vertices().step_by(37) {
            let naive = t.vertices().map(|u| t.distance(v, u)).max().unwrap();
            assert_eq!(t.eccentricity(v), naive);
        }
        let naive_h = t.vertices().map(|v| t.depth(v) as usize).max().unwrap();
        assert_eq!(t.height(), naive_h);
    }

    #[test]
    fn single_vertex_degenerates() {
        let t = generate::path(1);
        assert_eq!(t.height(), 0);
        assert_eq!(t.centroid(), t.root());
        assert_eq!(t.eccentricity(t.root()), 0);
    }
}
