//! Lowest common ancestors by binary lifting.

use crate::tree::{Tree, VertexId};

/// Precomputed binary-lifting table answering LCA, distance, and ancestry
/// queries in `O(log |V|)` after `O(|V| log |V|)` construction.
///
/// The naive `O(depth)` climbers on [`Tree`] are the reference
/// implementation; this table is used by the protocol code on large trees.
///
/// # Example
///
/// ```
/// use tree_model::{generate, LcaTable};
///
/// let tree = generate::balanced_kary(2, 6); // 127 vertices
/// let lca = LcaTable::new(&tree);
/// let u = tree.vertex("v0063").unwrap();
/// let v = tree.vertex("v0126").unwrap();
/// assert_eq!(lca.lca(u, v), tree.root());
/// ```
#[derive(Clone, Debug)]
pub struct LcaTable {
    /// `up[k][v]` = the 2^k-th ancestor of v (root maps to itself).
    up: Vec<Vec<u32>>,
    depth: Vec<u32>,
}

impl LcaTable {
    /// Builds the table for `tree`.
    pub fn new(tree: &Tree) -> Self {
        let n = tree.vertex_count();
        let levels = usize::BITS as usize - (n.max(2) - 1).leading_zeros() as usize;
        let levels = levels.max(1);
        let mut up = vec![vec![0u32; n]; levels];
        let mut depth = vec![0u32; n];
        for v in tree.vertices() {
            depth[v.index()] = tree.depth(v);
            up[0][v.index()] = tree.parent(v).unwrap_or(v).index() as u32;
        }
        for k in 1..levels {
            for v in 0..n {
                up[k][v] = up[k - 1][up[k - 1][v] as usize];
            }
        }
        LcaTable { up, depth }
    }

    /// The 2^k-limited ancestor jump used internally; exposed for tests.
    fn ancestor_at_depth(&self, mut v: usize, target: u32) -> usize {
        let mut diff = self.depth[v] - target;
        let mut k = 0;
        while diff > 0 {
            if diff & 1 == 1 {
                v = self.up[k][v] as usize;
            }
            diff >>= 1;
            k += 1;
        }
        v
    }

    /// The lowest common ancestor of `u` and `v`.
    pub fn lca(&self, u: VertexId, v: VertexId) -> VertexId {
        let (mut a, mut b) = (u.index(), v.index());
        let target = self.depth[a].min(self.depth[b]);
        a = self.ancestor_at_depth(a, target);
        b = self.ancestor_at_depth(b, target);
        if a == b {
            return VertexId(a);
        }
        for k in (0..self.up.len()).rev() {
            if self.up[k][a] != self.up[k][b] {
                a = self.up[k][a] as usize;
                b = self.up[k][b] as usize;
            }
        }
        VertexId(self.up[0][a] as usize)
    }

    /// The distance `d(u, v)` in edges.
    pub fn distance(&self, u: VertexId, v: VertexId) -> usize {
        let l = self.lca(u, v);
        (self.depth[u.index()] + self.depth[v.index()] - 2 * self.depth[l.index()]) as usize
    }

    /// Whether `a` is an (inclusive) ancestor of `b`.
    pub fn is_ancestor(&self, a: VertexId, b: VertexId) -> bool {
        self.depth[a.index()] <= self.depth[b.index()]
            && self.ancestor_at_depth(b.index(), self.depth[a.index()]) == a.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn matches_naive_on_small_trees() {
        for tree in [
            generate::path(17),
            generate::star(12),
            generate::balanced_kary(3, 4),
            generate::caterpillar(8, 3),
            generate::spider(5, 6),
        ] {
            let table = LcaTable::new(&tree);
            for u in tree.vertices() {
                for v in tree.vertices() {
                    assert_eq!(table.lca(u, v), tree.lca_naive(u, v), "lca mismatch");
                    assert_eq!(table.distance(u, v), tree.distance(u, v));
                    assert_eq!(table.is_ancestor(u, v), tree.is_ancestor(u, v));
                }
            }
        }
    }

    #[test]
    fn single_vertex() {
        let tree = generate::path(1);
        let table = LcaTable::new(&tree);
        let r = tree.root();
        assert_eq!(table.lca(r, r), r);
        assert_eq!(table.distance(r, r), 0);
        assert!(table.is_ancestor(r, r));
    }

    #[test]
    fn lca_is_commutative_and_idempotent() {
        let tree = generate::balanced_kary(2, 5);
        let table = LcaTable::new(&tree);
        for u in tree.vertices() {
            assert_eq!(table.lca(u, u), u);
            for v in tree.vertices() {
                assert_eq!(table.lca(u, v), table.lca(v, u));
            }
        }
    }
}
