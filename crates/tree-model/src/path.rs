//! Paths in trees: the unique simple path `P(u, v)` and path arithmetic.

use crate::tree::{Tree, VertexId};

/// The unique simple path between two vertices of a [`Tree`].
///
/// A path is a non-empty sequence of pairwise-adjacent, distinct vertices.
/// Its *length* `d(u, v)` is the number of edges, i.e. `len() - 1`; the
/// paper indexes the `k` vertices of a path as `(v_1, …, v_k)`, which
/// corresponds to `path.vertices()[0..k]` here (0-based).
///
/// # Example
///
/// ```
/// use tree_model::generate;
///
/// let tree = generate::path(4);
/// let a = tree.vertex("v0000").unwrap();
/// let d = tree.vertex("v0003").unwrap();
/// let p = tree.path(a, d);
/// assert_eq!(p.edge_len(), 3);
/// assert_eq!(p.endpoints(), (a, d));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TreePath {
    vertices: Vec<VertexId>,
}

impl TreePath {
    /// Creates a path from a vertex sequence, validating adjacency and
    /// distinctness against `tree`.
    ///
    /// # Panics
    ///
    /// Panics if `vertices` is empty, contains repeats, or contains a
    /// non-adjacent consecutive pair. Internal callers construct paths they
    /// have already proven valid; this constructor is for tests and
    /// examples.
    pub fn new(tree: &Tree, vertices: Vec<VertexId>) -> Self {
        assert!(!vertices.is_empty(), "a path has at least one vertex");
        for w in vertices.windows(2) {
            assert!(
                tree.adjacent(w[0], w[1]),
                "consecutive path vertices must be adjacent"
            );
        }
        let mut seen = vec![false; tree.vertex_count()];
        for &v in &vertices {
            assert!(!seen[v.index()], "path vertices must be distinct");
            seen[v.index()] = true;
        }
        TreePath { vertices }
    }

    pub(crate) fn from_vec_unchecked(vertices: Vec<VertexId>) -> Self {
        debug_assert!(!vertices.is_empty());
        TreePath { vertices }
    }

    /// The vertices of the path in order.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Number of vertices `k`.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` only never — paths are non-empty — but provided for API
    /// completeness alongside [`TreePath::len`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of edges (the path's length in the metric sense).
    pub fn edge_len(&self) -> usize {
        self.vertices.len() - 1
    }

    /// First and last vertex.
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        (self.vertices[0], *self.vertices.last().expect("non-empty"))
    }

    /// The `i`-th vertex (0-based). The paper's `v_{i}` (1-based) is
    /// `get(i - 1)`.
    pub fn get(&self, i: usize) -> Option<VertexId> {
        self.vertices.get(i).copied()
    }

    /// Whether `v` lies on this path.
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.contains(&v)
    }

    /// Position of `v` on the path, if present.
    pub fn position(&self, v: VertexId) -> Option<usize> {
        self.vertices.iter().position(|&x| x == v)
    }

    /// The path extended by one edge `(last, w)` — the paper's
    /// `P ⊕ (v, w)`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not adjacent to the last vertex or already on the
    /// path.
    pub fn extended(&self, tree: &Tree, w: VertexId) -> TreePath {
        let (_, last) = self.endpoints();
        assert!(tree.adjacent(last, w), "extension must use an edge");
        assert!(!self.contains(w), "extension must leave the path simple");
        let mut vs = self.vertices.clone();
        vs.push(w);
        TreePath { vertices: vs }
    }

    /// `true` if `other` equals this path with exactly one extra trailing
    /// vertex (`other = self ⊕ (·,·)`).
    pub fn is_one_edge_prefix_of(&self, other: &TreePath) -> bool {
        other.vertices.len() == self.vertices.len() + 1
            && other.vertices[..self.vertices.len()] == self.vertices[..]
    }
}

impl Tree {
    /// The unique simple path `P(u, v)` from `u` to `v`.
    ///
    /// Computed by climbing both endpoints to their lowest common ancestor;
    /// `O(d(u, v))`.
    ///
    /// # Example
    ///
    /// ```
    /// use tree_model::Tree;
    ///
    /// # fn main() -> Result<(), tree_model::TreeError> {
    /// let t = Tree::from_labeled_edges(["a", "b", "c", "d"],
    ///     [("a", "b"), ("b", "c"), ("b", "d")])?;
    /// let p = t.path(t.vertex("c").unwrap(), t.vertex("d").unwrap());
    /// let labels: Vec<_> = p.vertices().iter().map(|&v| t.label(v).as_str()).collect();
    /// assert_eq!(labels, ["c", "b", "d"]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn path(&self, u: VertexId, v: VertexId) -> TreePath {
        let mut up = Vec::new(); // u ... lca
        let mut down = Vec::new(); // v ... child-of-lca (reversed later)
        let (mut a, mut b) = (u, v);
        while self.depth(a) > self.depth(b) {
            up.push(a);
            a = self.parent(a).expect("deeper vertex has parent");
        }
        while self.depth(b) > self.depth(a) {
            down.push(b);
            b = self.parent(b).expect("deeper vertex has parent");
        }
        while a != b {
            up.push(a);
            down.push(b);
            a = self.parent(a).expect("non-root vertex has parent");
            b = self.parent(b).expect("non-root vertex has parent");
        }
        up.push(a); // the LCA itself
        up.extend(down.into_iter().rev());
        TreePath::from_vec_unchecked(up)
    }

    /// The distance `d(u, v)`: the number of edges on `P(u, v)`.
    pub fn distance(&self, u: VertexId, v: VertexId) -> usize {
        let l = self.lca_naive(u, v);
        (self.depth(u) + self.depth(v) - 2 * self.depth(l)) as usize
    }

    /// LCA by parent climbing; `O(depth)`. The precomputed
    /// [`LcaTable`](crate::LcaTable) answers in `O(log |V|)` after
    /// `O(|V| log |V|)` setup and is preferred in hot loops.
    pub fn lca_naive(&self, u: VertexId, v: VertexId) -> VertexId {
        let (mut a, mut b) = (u, v);
        while self.depth(a) > self.depth(b) {
            a = self.parent(a).expect("deeper vertex has parent");
        }
        while self.depth(b) > self.depth(a) {
            b = self.parent(b).expect("deeper vertex has parent");
        }
        while a != b {
            a = self.parent(a).expect("non-root vertex has parent");
            b = self.parent(b).expect("non-root vertex has parent");
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn figure3() -> Tree {
        Tree::from_labeled_edges(
            ["v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8"],
            [
                ("v1", "v2"),
                ("v2", "v3"),
                ("v3", "v6"),
                ("v3", "v7"),
                ("v2", "v4"),
                ("v4", "v8"),
                ("v2", "v5"),
            ],
        )
        .unwrap()
    }

    fn by_label(t: &Tree, p: &TreePath) -> Vec<String> {
        p.vertices()
            .iter()
            .map(|&v| t.label(v).to_string())
            .collect()
    }

    #[test]
    fn path_through_lca() {
        let t = figure3();
        let p = t.path(t.vertex("v6").unwrap(), t.vertex("v8").unwrap());
        assert_eq!(by_label(&t, &p), ["v6", "v3", "v2", "v4", "v8"]);
        assert_eq!(p.edge_len(), 4);
    }

    #[test]
    fn path_to_self_is_single_vertex() {
        let t = figure3();
        let v5 = t.vertex("v5").unwrap();
        let p = t.path(v5, v5);
        assert_eq!(p.vertices(), &[v5]);
        assert_eq!(p.edge_len(), 0);
        assert!(!p.is_empty());
    }

    #[test]
    fn path_is_reverse_of_opposite_path() {
        let t = figure3();
        for u in t.vertices() {
            for v in t.vertices() {
                let fwd = t.path(u, v);
                let mut bwd = t.path(v, u).vertices().to_vec();
                bwd.reverse();
                assert_eq!(fwd.vertices(), &bwd[..]);
            }
        }
    }

    #[test]
    fn distance_matches_path_len() {
        let t = figure3();
        for u in t.vertices() {
            for v in t.vertices() {
                assert_eq!(t.distance(u, v), t.path(u, v).edge_len());
            }
        }
    }

    #[test]
    fn ancestor_descendant_path() {
        let t = figure3();
        let p = t.path(t.vertex("v1").unwrap(), t.vertex("v8").unwrap());
        assert_eq!(by_label(&t, &p), ["v1", "v2", "v4", "v8"]);
    }

    #[test]
    fn extended_path() {
        let t = figure3();
        let p = t.path(t.vertex("v1").unwrap(), t.vertex("v4").unwrap());
        let q = p.extended(&t, t.vertex("v8").unwrap());
        assert_eq!(by_label(&t, &q), ["v1", "v2", "v4", "v8"]);
        assert!(p.is_one_edge_prefix_of(&q));
        assert!(!q.is_one_edge_prefix_of(&p));
        assert!(!p.is_one_edge_prefix_of(&p));
    }

    #[test]
    #[should_panic(expected = "extension must use an edge")]
    fn extended_requires_adjacency() {
        let t = figure3();
        let p = t.path(t.vertex("v1").unwrap(), t.vertex("v4").unwrap());
        let _ = p.extended(&t, t.vertex("v6").unwrap());
    }

    #[test]
    #[should_panic(expected = "simple")]
    fn extended_requires_simplicity() {
        let t = figure3();
        let p = t.path(t.vertex("v1").unwrap(), t.vertex("v4").unwrap());
        let _ = p.extended(&t, t.vertex("v2").unwrap());
    }

    #[test]
    fn position_and_contains() {
        let t = figure3();
        let p = t.path(t.vertex("v6").unwrap(), t.vertex("v8").unwrap());
        let v2 = t.vertex("v2").unwrap();
        assert!(p.contains(v2));
        assert_eq!(p.position(v2), Some(2));
        assert_eq!(p.position(t.vertex("v5").unwrap()), None);
    }

    #[test]
    fn validated_constructor_accepts_real_path() {
        let t = generate::path(6);
        let vs: Vec<_> = t.dfs_preorder().to_vec();
        let p = TreePath::new(&t, vs);
        assert_eq!(p.len(), 6);
    }

    #[test]
    #[should_panic(expected = "adjacent")]
    fn validated_constructor_rejects_gaps() {
        let t = generate::path(4);
        let a = t.vertex("v0000").unwrap();
        let c = t.vertex("v0002").unwrap();
        let _ = TreePath::new(&t, vec![a, c]);
    }

    #[test]
    fn lca_naive_examples() {
        let t = figure3();
        let lca = t.lca_naive(t.vertex("v6").unwrap(), t.vertex("v7").unwrap());
        assert_eq!(t.label(lca).as_str(), "v3");
        let lca = t.lca_naive(t.vertex("v6").unwrap(), t.vertex("v5").unwrap());
        assert_eq!(t.label(lca).as_str(), "v2");
        let lca = t.lca_naive(t.vertex("v1").unwrap(), t.vertex("v8").unwrap());
        assert_eq!(t.label(lca).as_str(), "v1");
    }
}
