//! Deterministic and random tree generators for experiments and tests.
//!
//! All generators label vertices `v0000, v0001, …` (zero-padded, so
//! lexicographic order equals numeric order, and `v0000` is the canonical
//! root). The padding width grows automatically for trees with more than
//! 10 000 vertices but is constant within any one tree.

use rand::Rng;

use crate::tree::{Tree, TreeBuilder};

fn width(n: usize) -> usize {
    let digits = n.saturating_sub(1).max(1).to_string().len();
    digits.max(4)
}

fn label(i: usize, w: usize) -> String {
    format!("v{i:0w$}")
}

/// Builds a tree from parent pointers: vertex `i > 0` has parent
/// `parents[i - 1] < i`. Vertex 0 is the root.
fn from_parents(parents: &[usize]) -> Tree {
    let n = parents.len() + 1;
    let w = width(n);
    let mut b = TreeBuilder::new();
    for i in 0..n {
        b.add_vertex(label(i, w)).expect("fresh labels");
    }
    for (i, &p) in parents.iter().enumerate() {
        let child = i + 1;
        assert!(p < child, "parent index must precede child");
        b.add_edge(label(p, w), label(child, w))
            .expect("valid edge");
    }
    b.build().expect("parent pointers always form a tree")
}

/// A path graph with `n ≥ 1` vertices: `v0000 - v0001 - … `.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Tree {
    assert!(n > 0, "a tree has at least one vertex");
    from_parents(&(0..n.saturating_sub(1)).collect::<Vec<_>>())
}

/// A star with `n ≥ 1` vertices: center `v0000`, leaves `v0001…`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Tree {
    assert!(n > 0, "a tree has at least one vertex");
    from_parents(&vec![0; n - 1])
}

/// A complete `k`-ary tree of the given `depth` (depth 0 = single vertex),
/// vertices numbered in BFS order.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn balanced_kary(k: usize, depth: u32) -> Tree {
    assert!(k > 0, "arity must be positive");
    let mut n = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level *= k;
        n += level;
    }
    let parents: Vec<usize> = (1..n).map(|i| (i - 1) / k).collect();
    from_parents(&parents)
}

/// A caterpillar: a spine path of `spine ≥ 1` vertices, each carrying
/// `legs` pendant leaves.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Tree {
    assert!(spine > 0, "spine must be non-empty");
    let mut parents = Vec::new();
    let mut spine_ids = vec![0usize];
    // Spine first.
    for s in 1..spine {
        parents.push(spine_ids[s - 1]);
        spine_ids.push(parents.len());
    }
    // Then legs.
    for &s in &spine_ids {
        for _ in 0..legs {
            parents.push(s);
        }
    }
    from_parents(&parents)
}

/// A spider: a center with `legs` paths of `leg_len` edges each.
pub fn spider(legs: usize, leg_len: usize) -> Tree {
    let mut parents = Vec::new();
    for _ in 0..legs {
        let mut prev = 0usize;
        for _ in 0..leg_len {
            parents.push(prev);
            prev = parents.len();
        }
    }
    from_parents(&parents)
}

/// A broom: a handle path of `handle ≥ 1` vertices ending in `bristles`
/// pendant leaves.
///
/// # Panics
///
/// Panics if `handle == 0`.
pub fn broom(handle: usize, bristles: usize) -> Tree {
    assert!(handle > 0, "handle must be non-empty");
    let mut parents: Vec<usize> = (0..handle - 1).collect();
    let tip = handle - 1;
    for _ in 0..bristles {
        parents.push(tip);
    }
    from_parents(&parents)
}

/// A random recursive tree: vertex `i` attaches to a uniformly random
/// earlier vertex. Produces low-diameter (`Θ(log n)`) trees.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_attachment(n: usize, rng: &mut impl Rng) -> Tree {
    assert!(n > 0, "a tree has at least one vertex");
    let parents: Vec<usize> = (1..n).map(|i| rng.gen_range(0..i)).collect();
    from_parents(&parents)
}

/// A uniformly random labeled tree on `n` vertices via Prüfer-sequence
/// decoding.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_prufer(n: usize, rng: &mut impl Rng) -> Tree {
    assert!(n > 0, "a tree has at least one vertex");
    let w = width(n);
    if n == 1 {
        return path(1);
    }
    if n == 2 {
        return path(2);
    }
    let seq: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &s in &seq {
        degree[s] += 1;
    }
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n - 1);
    // Min-heap of current leaves.
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &s in &seq {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("a leaf always exists");
        edges.push((leaf, s));
        degree[s] -= 1;
        if degree[s] == 1 {
            leaves.push(std::cmp::Reverse(s));
        }
    }
    let std::cmp::Reverse(a) = leaves.pop().expect("two leaves remain");
    let std::cmp::Reverse(b) = leaves.pop().expect("two leaves remain");
    edges.push((a, b));

    let mut builder = TreeBuilder::new();
    for i in 0..n {
        builder.add_vertex(label(i, w)).expect("fresh labels");
    }
    for (x, y) in edges {
        builder
            .add_edge(label(x, w), label(y, w))
            .expect("valid edge");
    }
    builder.build().expect("Prüfer decoding yields a tree")
}

/// Rebuilds `tree` with the same topology but labels assigned by a random
/// permutation, so the canonical root lands on a random vertex. Useful for
/// property tests that must not depend on generator label order.
pub fn relabel_shuffled(tree: &Tree, rng: &mut impl Rng) -> Tree {
    let n = tree.vertex_count();
    let w = width(n);
    let mut perm: Vec<usize> = (0..n).collect();
    // Fisher-Yates.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let mut b = TreeBuilder::new();
    // Vertices must be added in a fixed order independent of the permutation
    // values so ids stay dense; label text carries the permutation.
    for &p in &perm {
        b.add_vertex(label(p, w))
            .expect("permuted labels are fresh");
    }
    let mut seen = vec![false; n];
    for v in tree.vertices() {
        seen[v.index()] = true;
        for &u in tree.neighbors(v) {
            if !seen[u.index()] {
                b.add_edge(label(perm[v.index()], w), label(perm[u.index()], w))
                    .expect("valid edge");
            }
        }
    }
    b.build().expect("same topology remains a tree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> impl Rng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn path_shape() {
        let t = path(5);
        assert_eq!(t.vertex_count(), 5);
        assert_eq!(t.diameter(), 4);
        assert_eq!(t.degree(t.vertex("v0000").unwrap()), 1);
        assert_eq!(t.degree(t.vertex("v0002").unwrap()), 2);
    }

    #[test]
    fn star_shape() {
        let t = star(7);
        assert_eq!(t.vertex_count(), 7);
        assert_eq!(t.degree(t.root()), 6);
        assert_eq!(t.diameter(), 2);
    }

    #[test]
    fn kary_counts() {
        assert_eq!(balanced_kary(2, 0).vertex_count(), 1);
        assert_eq!(balanced_kary(2, 3).vertex_count(), 15);
        assert_eq!(balanced_kary(3, 2).vertex_count(), 13);
    }

    #[test]
    fn caterpillar_counts() {
        let t = caterpillar(4, 2);
        assert_eq!(t.vertex_count(), 4 + 8);
        assert_eq!(t.diameter(), 3 + 2); // leg + spine + leg
    }

    #[test]
    fn spider_counts() {
        let t = spider(3, 4);
        assert_eq!(t.vertex_count(), 1 + 12);
        assert_eq!(t.diameter(), 8);
        assert_eq!(t.degree(t.root()), 3);
    }

    #[test]
    fn broom_counts() {
        let t = broom(3, 5);
        assert_eq!(t.vertex_count(), 8);
        assert_eq!(t.diameter(), 3); // handle start -> tip -> bristle
    }

    #[test]
    fn random_attachment_is_a_tree_and_deterministic_per_seed() {
        let t1 = random_attachment(40, &mut rng(7));
        let t2 = random_attachment(40, &mut rng(7));
        assert_eq!(t1.vertex_count(), 40);
        for v in t1.vertices() {
            assert_eq!(t1.label(v), t2.label(v));
            assert_eq!(t1.neighbors(v), t2.neighbors(v));
        }
    }

    #[test]
    fn random_prufer_is_a_tree() {
        for n in [1usize, 2, 3, 10, 57] {
            let t = random_prufer(n, &mut rng(n as u64));
            assert_eq!(t.vertex_count(), n);
        }
    }

    #[test]
    fn prufer_star_and_path_reachable() {
        // Over many seeds, small Prüfer trees hit different shapes;
        // sanity-check that diameters vary.
        let mut saw = std::collections::HashSet::new();
        for seed in 0..30 {
            saw.insert(random_prufer(5, &mut rng(seed)).diameter());
        }
        assert!(saw.len() > 1, "expected diverse topologies, got {saw:?}");
    }

    #[test]
    fn relabel_preserves_topology() {
        let t = caterpillar(5, 2);
        let s = relabel_shuffled(&t, &mut rng(3));
        assert_eq!(s.vertex_count(), t.vertex_count());
        assert_eq!(s.diameter(), t.diameter());
        // Degree multiset preserved.
        let mut dt: Vec<_> = t.vertices().map(|v| t.degree(v)).collect();
        let mut ds: Vec<_> = s.vertices().map(|v| s.degree(v)).collect();
        dt.sort();
        ds.sort();
        assert_eq!(dt, ds);
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn zero_vertices_panics() {
        let _ = path(0);
    }

    #[test]
    fn wide_labels_for_large_trees() {
        let t = path(12_000);
        assert!(t.vertex(&format!("v{:05}", 11_999)).is_some());
        // Lexicographic order still equals numeric order.
        let a = t.vertex("v00002").unwrap();
        let b = t.vertex("v10000").unwrap();
        assert_eq!(t.distance(a, b), 9_998);
    }
}
