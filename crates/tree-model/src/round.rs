//! The paper's `closestInt` rounding rule (Section 4, Remarks 1 and 2).

/// Rounds a real to its closest integer, **ties rounding up**, exactly as the
/// paper defines it: for `z ≤ j < z + 1`, `closestInt(j) = z` if
/// `j − z < (z+1) − j` and `z + 1` otherwise.
///
/// The two facts the protocol relies on (both property-tested):
///
/// * **Remark 1.** `j ∈ [i_min, i_max]` with integer bounds implies
///   `closestInt(j) ∈ [i_min, i_max]`.
/// * **Remark 2.** `|j − j'| ≤ 1` implies
///   `|closestInt(j) − closestInt(j')| ≤ 1`.
///
/// # Panics
///
/// Panics if `j` is not finite (NaN or infinite values can never be honest
/// protocol values; rounding them silently would mask a protocol bug).
///
/// # Example
///
/// ```
/// use tree_model::closest_int;
///
/// assert_eq!(closest_int(3.2), 3);
/// assert_eq!(closest_int(3.5), 4); // tie rounds up
/// assert_eq!(closest_int(-0.5), 0);
/// assert_eq!(closest_int(7.0), 7);
/// ```
pub fn closest_int(j: f64) -> i64 {
    assert!(
        j.is_finite(),
        "closest_int requires a finite value, got {j}"
    );
    let z = j.floor();
    let frac = j - z;
    let z = z as i64;
    if frac < 0.5 {
        z
    } else {
        z + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_map_to_themselves() {
        for z in -5..=5 {
            assert_eq!(closest_int(z as f64), z);
        }
    }

    #[test]
    fn ties_round_up() {
        assert_eq!(closest_int(0.5), 1);
        assert_eq!(closest_int(1.5), 2);
        assert_eq!(closest_int(-1.5), -1);
        assert_eq!(closest_int(-0.5), 0);
    }

    #[test]
    fn below_half_rounds_down() {
        assert_eq!(closest_int(0.499_999), 0);
        assert_eq!(closest_int(2.25), 2);
        assert_eq!(closest_int(-2.75), -3);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_panics() {
        let _ = closest_int(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinity_panics() {
        let _ = closest_int(f64::INFINITY);
    }

    #[test]
    fn remark1_exhaustive_grid() {
        // Remark 1 over a fine grid: j in [i_min, i_max] => result within.
        let (i_min, i_max) = (-3i64, 7i64);
        let steps = 10_000;
        for k in 0..=steps {
            let j = i_min as f64 + (i_max - i_min) as f64 * k as f64 / steps as f64;
            let r = closest_int(j);
            assert!(r >= i_min && r <= i_max, "j={j} escaped to {r}");
        }
    }

    #[test]
    fn remark2_exhaustive_grid() {
        // Remark 2 over a fine grid of (j, j') with |j - j'| <= 1.
        let steps = 400;
        for a in 0..=steps {
            let j = -2.0 + 6.0 * a as f64 / steps as f64;
            for b in 0..=steps {
                let jp = j - 1.0 + 2.0 * b as f64 / steps as f64;
                let (r, rp) = (closest_int(j), closest_int(jp));
                assert!((r - rp).abs() <= 1, "j={j} j'={jp} rounded to {r},{rp}");
            }
        }
    }
}
