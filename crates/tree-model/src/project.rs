//! Projections of vertices onto a path (Section 5 of the paper, Lemma 1).

use crate::path::TreePath;
use crate::tree::{Tree, VertexId};

/// Precomputed projections of *every* vertex of a tree onto a fixed path
/// `P`, i.e. for each `v` the vertex `proj_P(v) ∈ V(P)` minimizing
/// `d(v, ·)`.
///
/// In a tree the nearest path vertex is unique: walking from `v` toward any
/// vertex of `P`, the first path vertex reached is the projection (see the
/// proof of Lemma 1). Computed by multi-source BFS from `V(P)` in `O(|V|)`.
///
/// # Example
///
/// ```
/// use tree_model::{Tree, ProjectionTable};
///
/// # fn main() -> Result<(), tree_model::TreeError> {
/// // a - b - c with leaf x off b.
/// let t = Tree::from_labeled_edges(["a", "b", "c", "x"],
///     [("a", "b"), ("b", "c"), ("b", "x")])?;
/// let p = t.path(t.vertex("a").unwrap(), t.vertex("c").unwrap());
/// let proj = ProjectionTable::new(&t, &p);
/// assert_eq!(proj.project(t.vertex("x").unwrap()), t.vertex("b").unwrap());
/// // Path vertices project to themselves.
/// assert_eq!(proj.project(t.vertex("a").unwrap()), t.vertex("a").unwrap());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ProjectionTable {
    proj: Vec<VertexId>,
    /// Position on the path of each vertex's projection.
    pos: Vec<usize>,
}

impl ProjectionTable {
    /// Builds the table for `path` in `tree`.
    ///
    /// # Panics
    ///
    /// Panics if `path` contains a vertex outside `tree` (ids out of
    /// range).
    pub fn new(tree: &Tree, path: &TreePath) -> Self {
        let n = tree.vertex_count();
        let mut proj: Vec<Option<VertexId>> = vec![None; n];
        let mut queue = std::collections::VecDeque::new();
        for (i, &v) in path.vertices().iter().enumerate() {
            proj[v.index()] = Some(v);
            let _ = i;
            queue.push_back(v);
        }
        while let Some(v) = queue.pop_front() {
            let pv = proj[v.index()].expect("enqueued vertices are labeled");
            for &w in tree.neighbors(v) {
                if proj[w.index()].is_none() {
                    proj[w.index()] = Some(pv);
                    queue.push_back(w);
                }
            }
        }
        let proj: Vec<VertexId> = proj
            .into_iter()
            .map(|p| p.expect("tree is connected, so BFS reaches every vertex"))
            .collect();
        let mut pos_on_path = vec![usize::MAX; n];
        for (i, &v) in path.vertices().iter().enumerate() {
            pos_on_path[v.index()] = i;
        }
        let pos = proj.iter().map(|p| pos_on_path[p.index()]).collect();
        ProjectionTable { proj, pos }
    }

    /// `proj_P(v)`.
    pub fn project(&self, v: VertexId) -> VertexId {
        self.proj[v.index()]
    }

    /// The 0-based position of `proj_P(v)` along the path — the index a
    /// party feeds into real-valued AA in Section 5.
    pub fn position(&self, v: VertexId) -> usize {
        self.pos[v.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn figure3() -> Tree {
        Tree::from_labeled_edges(
            ["v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8"],
            [
                ("v1", "v2"),
                ("v2", "v3"),
                ("v3", "v6"),
                ("v3", "v7"),
                ("v2", "v4"),
                ("v4", "v8"),
                ("v2", "v5"),
            ],
        )
        .unwrap()
    }

    /// Brute-force projection: the path vertex with minimum distance
    /// (unique in a tree).
    fn proj_naive(t: &Tree, path: &TreePath, v: VertexId) -> VertexId {
        let mut best = path.vertices()[0];
        for &p in path.vertices() {
            if t.distance(v, p) < t.distance(v, best) {
                best = p;
            }
        }
        best
    }

    #[test]
    fn matches_naive_everywhere() {
        let t = figure3();
        // All paths between all vertex pairs.
        for u in t.vertices() {
            for w in t.vertices() {
                let path = t.path(u, w);
                let table = ProjectionTable::new(&t, &path);
                for v in t.vertices() {
                    assert_eq!(
                        table.project(v),
                        proj_naive(&t, &path, v),
                        "path {u}->{w}, vertex {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn projection_is_idempotent_on_path() {
        let t = generate::caterpillar(6, 2);
        let d = t.diameter_info();
        let table = ProjectionTable::new(&t, &d.path);
        for &v in d.path.vertices() {
            assert_eq!(table.project(v), v);
        }
    }

    #[test]
    fn position_matches_projection() {
        let t = figure3();
        let path = t.path(t.vertex("v6").unwrap(), t.vertex("v8").unwrap());
        let table = ProjectionTable::new(&t, &path);
        for v in t.vertices() {
            assert_eq!(path.get(table.position(v)), Some(table.project(v)));
        }
    }

    #[test]
    fn lemma1_projection_lands_in_hull() {
        // Lemma 1: if V(P) ∩ ⟨S⟩ ≠ ∅ then proj_P(v) ∈ V(P) ∩ ⟨S⟩ for all
        // v ∈ S.
        let t = figure3();
        let s: Vec<_> = ["v6", "v5", "v8"]
            .iter()
            .map(|l| t.vertex(l).unwrap())
            .collect();
        let hull = t.convex_hull(&s);
        for u in t.vertices() {
            for w in t.vertices() {
                let path = t.path(u, w);
                if !path.vertices().iter().any(|&x| hull.contains(x)) {
                    continue;
                }
                let table = ProjectionTable::new(&t, &path);
                for &v in &s {
                    let p = table.project(v);
                    assert!(path.contains(p));
                    assert!(hull.contains(p), "projection of {v} left the hull");
                }
            }
        }
    }

    #[test]
    fn single_vertex_tree_projection_is_identity() {
        // The degenerate instance the exhaustive checker starts from: one
        // vertex, the only path is trivial, and everything is a fixpoint.
        let t = generate::path(1);
        let v = t.vertices().next().unwrap();
        let path = t.path(v, v);
        assert_eq!(path.vertices(), &[v]);
        let table = ProjectionTable::new(&t, &path);
        assert_eq!(table.project(v), v);
        assert_eq!(table.position(v), 0);
        // The hull of the whole (one-vertex) tree is the vertex itself,
        // and projecting it onto the diameter path is the identity.
        let hull = t.convex_hull(&[v]);
        assert!(hull.contains(v));
        assert_eq!(hull.len(), 1);
    }

    #[test]
    fn two_vertex_path_projection_is_identity() {
        let t = generate::path(2);
        let vs: Vec<_> = t.vertices().collect();
        let (a, b) = (vs[0], vs[1]);
        // Full path, both orientations: both endpoints are their own
        // projections with consistent positions.
        for (u, w) in [(a, b), (b, a)] {
            let path = t.path(u, w);
            let table = ProjectionTable::new(&t, &path);
            assert_eq!(table.project(u), u);
            assert_eq!(table.project(w), w);
            assert_eq!(table.position(u), 0);
            assert_eq!(table.position(w), 1);
        }
        // Trivial sub-path: the other endpoint projects onto it.
        let path = t.path(a, a);
        let table = ProjectionTable::new(&t, &path);
        assert_eq!(table.project(b), a);
        assert_eq!(table.position(b), 0);
        // Hull projection is the identity on this degenerate tree.
        let hull = t.convex_hull(&[a, b]);
        let dpath = t.path(a, b);
        let table = ProjectionTable::new(&t, &dpath);
        for v in hull.iter() {
            assert_eq!(table.project(v), v);
        }
    }

    #[test]
    fn star_center_absorbs_every_off_path_leaf() {
        // star(6): center v0000 (index 0) with 5 leaves. The path between
        // two leaves is leaf–center–leaf; every other leaf projects to the
        // center, never to a path endpoint.
        let t = generate::star(6);
        let vs: Vec<_> = t.vertices().collect();
        let center = vs[0];
        assert_eq!(t.degree(center), 5);
        let path = t.path(vs[1], vs[4]);
        assert_eq!(path.vertices(), &[vs[1], center, vs[4]]);
        let table = ProjectionTable::new(&t, &path);
        assert_eq!(table.project(center), center);
        assert_eq!(table.position(center), 1);
        for &leaf in &vs[1..] {
            if leaf == vs[1] || leaf == vs[4] {
                assert_eq!(table.project(leaf), leaf);
            } else {
                assert_eq!(table.project(leaf), center, "off-path leaf {leaf}");
                assert_eq!(table.position(leaf), 1);
            }
        }
        // A trivial path at the center: the whole star collapses onto it.
        let at_center = t.path(center, center);
        let table = ProjectionTable::new(&t, &at_center);
        for v in t.vertices() {
            assert_eq!(table.project(v), center);
        }
    }

    #[test]
    fn single_vertex_path() {
        let t = figure3();
        let v2 = t.vertex("v2").unwrap();
        let path = t.path(v2, v2);
        let table = ProjectionTable::new(&t, &path);
        for v in t.vertices() {
            assert_eq!(table.project(v), v2);
            assert_eq!(table.position(v), 0);
        }
    }
}
