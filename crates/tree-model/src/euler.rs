//! `ListConstruction`: the Euler-tour list representation of a rooted tree
//! (Section 6 and Lemma 2 of the paper).
//!
//! Every party runs this deterministic traversal locally, obtaining the same
//! list `L`; `PathsFinder` then runs real-valued AA over *indices into* `L`.

use crate::tree::{Tree, VertexId};

/// The list `L` produced by [`list_construction`], together with the
/// occurrence index `L(v)` for every vertex.
///
/// Indices are **0-based** throughout this crate (the paper uses 1-based
/// indices; the translation is mechanical and does not affect any of the
/// interval arguments of Lemma 2/3).
///
/// # Example
///
/// ```
/// use tree_model::{Tree, list_construction};
///
/// # fn main() -> Result<(), tree_model::TreeError> {
/// let t = Tree::from_labeled_edges(["a", "b", "c"], [("a", "b"), ("a", "c")])?;
/// let l = list_construction(&t);
/// // DFS from `a`: a, b, back to a, c, back to a.
/// let labels: Vec<_> = l.entries().iter().map(|&v| t.label(v).as_str()).collect();
/// assert_eq!(labels, ["a", "b", "a", "c", "a"]);
/// assert_eq!(l.occurrences(t.vertex("a").unwrap()), &[0, 2, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EulerList {
    entries: Vec<VertexId>,
    /// `occ[v]` = sorted list of indices i with `entries[i] == v`.
    occ: Vec<Vec<usize>>,
}

impl EulerList {
    /// The full list `L`.
    pub fn entries(&self) -> &[VertexId] {
        &self.entries
    }

    /// `|L|`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` never for lists built from a [`Tree`] (trees are non-empty);
    /// provided alongside [`EulerList::len`].
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The vertex `L_i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> VertexId {
        self.entries[i]
    }

    /// The sorted occurrence set `L(v)`.
    pub fn occurrences(&self, v: VertexId) -> &[usize] {
        &self.occ[v.index()]
    }

    /// `min L(v)` — the index each party feeds into `RealAA` in
    /// `PathsFinder`.
    pub fn first_occurrence(&self, v: VertexId) -> usize {
        self.occ[v.index()][0]
    }

    /// `max L(v)`.
    pub fn last_occurrence(&self, v: VertexId) -> usize {
        *self.occ[v.index()].last().expect("every vertex occurs")
    }
}

/// Builds the paper's list representation: a DFS from the canonical root
/// that records the current vertex **on arrival and after each child
/// returns** (children in ascending label order).
///
/// Guarantees (Lemma 2), all covered by tests:
/// 1. consecutive entries are adjacent (when `|V| > 1`);
/// 2. `|L| = 2|V| − 1 ≤ 2|V|`, and every vertex occurs at least once;
/// 3. `u` is in the subtree rooted at `v` iff
///    `L(u) ⊆ [min L(v), max L(v)]`;
/// 4. for `i ∈ L(v)`, `i' ∈ L(v')`, the LCA of `v` and `v'` appears among
///    `L_k` for `k` between `i` and `i'`.
pub fn list_construction(tree: &Tree) -> EulerList {
    let n = tree.vertex_count();
    let mut entries = Vec::with_capacity(2 * n - 1);
    let mut occ = vec![Vec::new(); n];

    // Iterative DFS. The stack holds (vertex, next-child-position).
    let root = tree.root();
    let mut stack: Vec<(VertexId, usize)> = vec![(root, 0)];
    occ[root.index()].push(entries.len());
    entries.push(root);
    while let Some(&mut (v, ref mut next)) = stack.last_mut() {
        let kids = tree.children(v);
        if *next < kids.len() {
            let child = kids[*next];
            *next += 1;
            occ[child.index()].push(entries.len());
            entries.push(child);
            stack.push((child, 0));
        } else {
            stack.pop();
            if let Some(&(parent, _)) = stack.last() {
                occ[parent.index()].push(entries.len());
                entries.push(parent);
            }
        }
    }

    EulerList { entries, occ }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::tree::Tree;

    fn figure3() -> Tree {
        Tree::from_labeled_edges(
            ["v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8"],
            [
                ("v1", "v2"),
                ("v2", "v3"),
                ("v3", "v6"),
                ("v3", "v7"),
                ("v2", "v4"),
                ("v4", "v8"),
                ("v2", "v5"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure3_list_matches_paper() {
        // Section 6: L = [v1, v2, v3, v6, v3, v7, v3, v2, v4, v8, v4, v2,
        //                 v5, v2, v1]
        let t = figure3();
        let l = list_construction(&t);
        let labels: Vec<_> = l.entries().iter().map(|&v| t.label(v).as_str()).collect();
        assert_eq!(
            labels,
            [
                "v1", "v2", "v3", "v6", "v3", "v7", "v3", "v2", "v4", "v8", "v4", "v2", "v5", "v2",
                "v1"
            ]
        );
    }

    #[test]
    fn figure3_occurrence_sets_match_paper() {
        // The paper (1-based): L(v3) = {3,5,7}, L(v6) = {4}, L(v5) = {13},
        // L(v4) = {9,11}, L(v8) = {10}. Ours are 0-based (subtract 1).
        let t = figure3();
        let l = list_construction(&t);
        let occ = |s: &str| l.occurrences(t.vertex(s).unwrap()).to_vec();
        assert_eq!(occ("v3"), [2, 4, 6]);
        assert_eq!(occ("v6"), [3]);
        assert_eq!(occ("v5"), [12]);
        assert_eq!(occ("v4"), [8, 10]);
        assert_eq!(occ("v8"), [9]);
    }

    #[test]
    fn single_vertex_list() {
        let t = generate::path(1);
        let l = list_construction(&t);
        assert_eq!(l.len(), 1);
        assert_eq!(l.get(0), t.root());
    }

    fn lemma2_check(t: &Tree) {
        let l = list_construction(t);
        let n = t.vertex_count();

        // Property 2: size bound and full coverage.
        assert_eq!(l.len(), 2 * n - 1);
        assert!(l.len() <= 2 * n);
        for v in t.vertices() {
            assert!(!l.occurrences(v).is_empty(), "vertex {v} missing");
        }

        // Property 1: consecutive adjacency.
        if n > 1 {
            for w in l.entries().windows(2) {
                assert!(t.adjacent(w[0], w[1]));
            }
        }

        // Property 3: subtree iff occurrence interval containment.
        for v in t.vertices() {
            let lo = l.first_occurrence(v);
            let hi = l.last_occurrence(v);
            for u in t.vertices() {
                let inside = l.occurrences(u).iter().all(|&i| lo <= i && i <= hi);
                assert_eq!(
                    t.is_ancestor(v, u),
                    inside,
                    "subtree/interval mismatch v={v} u={u}"
                );
            }
        }

        // Property 4: LCA appears within every occurrence interval.
        for v in t.vertices() {
            for u in t.vertices() {
                let lca = t.lca_naive(v, u);
                for &i in l.occurrences(v) {
                    for &j in l.occurrences(u) {
                        let (a, b) = (i.min(j), i.max(j));
                        assert!(
                            (a..=b).any(|k| l.get(k) == lca),
                            "lca {lca} not found between {a} and {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lemma2_on_figure3() {
        lemma2_check(&figure3());
    }

    #[test]
    fn lemma2_on_generated_families() {
        lemma2_check(&generate::path(9));
        lemma2_check(&generate::star(7));
        lemma2_check(&generate::balanced_kary(2, 4));
        lemma2_check(&generate::caterpillar(5, 2));
        lemma2_check(&generate::spider(4, 3));
    }

    #[test]
    fn occurrence_count_is_child_count_plus_one() {
        let t = figure3();
        let l = list_construction(&t);
        for v in t.vertices() {
            assert_eq!(l.occurrences(v).len(), t.children(v).len() + 1);
        }
    }

    #[test]
    fn first_and_last_occurrence_bracket_all() {
        let t = generate::balanced_kary(3, 3);
        let l = list_construction(&t);
        for v in t.vertices() {
            let occ = l.occurrences(v);
            assert_eq!(l.first_occurrence(v), occ[0]);
            assert_eq!(l.last_occurrence(v), *occ.last().unwrap());
            assert!(occ.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        }
    }
}
