//! Plain-text serialization of trees, plus Graphviz DOT export.
//!
//! The text format is line-oriented and diff-friendly:
//!
//! ```text
//! # comments and blank lines are ignored
//! vertex a
//! vertex b
//! edge a b
//! ```

use std::error::Error;
use std::fmt;

use crate::tree::{Tree, TreeBuilder, TreeError};

/// Errors raised while parsing the text format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseTreeError {
    /// A line did not match `vertex <label>` or `edge <a> <b>`.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The parsed vertices/edges do not form a tree.
    Structure(TreeError),
}

impl fmt::Display for ParseTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTreeError::BadLine { line, content } => {
                write!(
                    f,
                    "line {line}: expected `vertex <label>` or `edge <a> <b>`, got `{content}`"
                )
            }
            ParseTreeError::Structure(e) => write!(f, "not a tree: {e}"),
        }
    }
}

impl Error for ParseTreeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseTreeError::Structure(e) => Some(e),
            ParseTreeError::BadLine { .. } => None,
        }
    }
}

impl From<TreeError> for ParseTreeError {
    fn from(e: TreeError) -> Self {
        ParseTreeError::Structure(e)
    }
}

/// Parses the line-oriented text format.
///
/// # Errors
///
/// Returns [`ParseTreeError::BadLine`] for malformed lines and
/// [`ParseTreeError::Structure`] when the declarations do not form a tree
/// (duplicate labels, cycles, disconnection, emptiness).
///
/// # Example
///
/// ```
/// use tree_model::parse_tree;
///
/// # fn main() -> Result<(), tree_model::ParseTreeError> {
/// let tree = parse_tree("
///     vertex a
///     vertex b
///     vertex c
///     edge a b
///     edge a c
/// ")?;
/// assert_eq!(tree.vertex_count(), 3);
/// # Ok(())
/// # }
/// ```
pub fn parse_tree(text: &str) -> Result<Tree, ParseTreeError> {
    let mut b = TreeBuilder::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some("vertex"), Some(label), None, _) => {
                b.add_vertex(label)?;
            }
            (Some("edge"), Some(a), Some(c), None) => {
                b.add_edge(a, c)?;
            }
            _ => {
                return Err(ParseTreeError::BadLine {
                    line: i + 1,
                    content: line.to_owned(),
                })
            }
        }
    }
    Ok(b.build()?)
}

impl Tree {
    /// Renders the tree in the text format accepted by [`parse_tree`]
    /// (vertices in label order, edges in canonical parent→child order).
    pub fn to_text(&self) -> String {
        let mut vertices: Vec<_> = self.vertices().collect();
        vertices.sort_by(|&a, &b| self.label(a).cmp(self.label(b)));
        let mut out = String::new();
        for v in &vertices {
            out.push_str(&format!("vertex {}\n", self.label(*v)));
        }
        for &v in self.dfs_preorder() {
            for &c in self.children(v) {
                out.push_str(&format!("edge {} {}\n", self.label(v), self.label(c)));
            }
        }
        out
    }

    /// Renders the tree as a Graphviz DOT graph. Vertices listed in
    /// `highlight` are filled — handy for visualizing hulls, paths, or
    /// protocol outputs.
    ///
    /// # Example
    ///
    /// ```
    /// use tree_model::generate;
    ///
    /// let t = generate::path(3);
    /// let dot = t.to_dot(&[t.root()]);
    /// assert!(dot.starts_with("graph tree {"));
    /// assert!(dot.contains("\"v0000\" [style=filled"));
    /// ```
    pub fn to_dot(&self, highlight: &[crate::tree::VertexId]) -> String {
        let mut out = String::from("graph tree {\n  node [shape=circle];\n");
        for v in self.vertices() {
            if highlight.contains(&v) {
                out.push_str(&format!(
                    "  \"{}\" [style=filled, fillcolor=lightblue];\n",
                    self.label(v)
                ));
            } else {
                out.push_str(&format!("  \"{}\";\n", self.label(v)));
            }
        }
        for &v in self.dfs_preorder() {
            for &c in self.children(v) {
                out.push_str(&format!(
                    "  \"{}\" -- \"{}\";\n",
                    self.label(v),
                    self.label(c)
                ));
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn roundtrip_text() {
        let t = generate::caterpillar(4, 2);
        let text = t.to_text();
        let back = parse_tree(&text).unwrap();
        assert_eq!(back.vertex_count(), t.vertex_count());
        for v in t.vertices() {
            let label = t.label(v).as_str();
            let w = back.vertex(label).unwrap();
            let mut n1: Vec<_> = t
                .neighbors(v)
                .iter()
                .map(|&x| t.label(x).as_str())
                .collect();
            let mut n2: Vec<_> = back
                .neighbors(w)
                .iter()
                .map(|&x| back.label(x).as_str())
                .collect();
            n1.sort();
            n2.sort();
            assert_eq!(n1, n2, "adjacency differs at {label}");
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let t = parse_tree("# a comment\n\nvertex x\n  \nvertex y\nedge x y\n").unwrap();
        assert_eq!(t.vertex_count(), 2);
    }

    #[test]
    fn bad_line_reported_with_number() {
        let err = parse_tree("vertex a\nnode b\n").unwrap_err();
        assert_eq!(
            err,
            ParseTreeError::BadLine {
                line: 2,
                content: "node b".into()
            }
        );
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn extra_tokens_rejected() {
        assert!(matches!(
            parse_tree("vertex a b\n"),
            Err(ParseTreeError::BadLine { .. })
        ));
        assert!(matches!(
            parse_tree("edge a b c\n"),
            Err(ParseTreeError::BadLine { .. })
        ));
    }

    #[test]
    fn structural_errors_propagate() {
        let err = parse_tree("vertex a\nvertex b\n").unwrap_err();
        assert!(matches!(
            err,
            ParseTreeError::Structure(TreeError::Disconnected)
        ));
        let err = parse_tree("").unwrap_err();
        assert!(matches!(err, ParseTreeError::Structure(TreeError::Empty)));
    }

    #[test]
    fn dot_contains_all_edges() {
        let t = generate::star(4);
        let dot = t.to_dot(&[]);
        assert_eq!(dot.matches(" -- ").count(), 3);
        assert!(dot.ends_with("}\n"));
    }
}
