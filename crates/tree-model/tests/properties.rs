//! Property-based tests for the tree-model invariants the protocols rely
//! on: metric laws, hull laws, Lemma 1 (projection), Lemma 2 (Euler list),
//! Lemma 3 (root paths through hulls), and Remarks 1-2 (closestInt).

use proptest::prelude::*;
use rand::SeedableRng;
use tree_model::{closest_int, generate, list_construction, Tree, VertexId};

/// A random tree described by a seed + size, decodable deterministically.
fn arb_tree() -> impl Strategy<Value = Tree> {
    (1usize..60, any::<u64>(), prop::bool::ANY).prop_map(|(n, seed, uniform)| {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let t = if uniform {
            generate::random_prufer(n, &mut rng)
        } else {
            generate::random_attachment(n, &mut rng)
        };
        generate::relabel_shuffled(&t, &mut rng)
    })
}

fn arb_tree_with_subset(max_subset: usize) -> impl Strategy<Value = (Tree, Vec<VertexId>)> {
    (arb_tree(), any::<u64>()).prop_map(move |(t, seed)| {
        use rand::Rng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let k = rng.gen_range(1..=max_subset);
        let s: Vec<VertexId> = (0..k)
            .map(|_| VertexId_from_index(&t, rng.gen_range(0..t.vertex_count())))
            .collect();
        (t, s)
    })
}

/// Helper: vertices() is the only public way to get ids; index into it.
#[allow(non_snake_case)]
fn VertexId_from_index(t: &Tree, i: usize) -> VertexId {
    t.vertices().nth(i).expect("index in range")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn distance_is_a_metric((t, s) in arb_tree_with_subset(3)) {
        let u = s[0];
        let v = s[s.len() / 2];
        let w = s[s.len() - 1];
        // Identity, symmetry, triangle inequality.
        prop_assert_eq!(t.distance(u, u), 0);
        prop_assert_eq!(t.distance(u, v), t.distance(v, u));
        prop_assert!(t.distance(u, w) <= t.distance(u, v) + t.distance(v, w));
    }

    #[test]
    fn path_endpoints_and_adjacency(t in arb_tree()) {
        for u in t.vertices() {
            let v = t.root();
            let p = t.path(u, v);
            prop_assert_eq!(p.endpoints(), (u, v));
            for pair in p.vertices().windows(2) {
                prop_assert!(t.adjacent(pair[0], pair[1]));
            }
            prop_assert_eq!(p.edge_len(), t.distance(u, v));
        }
    }

    #[test]
    fn lca_table_matches_naive(t in arb_tree()) {
        let table = tree_model::LcaTable::new(&t);
        for u in t.vertices() {
            for v in t.vertices() {
                prop_assert_eq!(table.lca(u, v), t.lca_naive(u, v));
            }
        }
    }

    #[test]
    fn hull_contains_inputs_and_is_minimal((t, s) in arb_tree_with_subset(6)) {
        let hull = t.convex_hull(&s);
        for &v in &s {
            prop_assert!(hull.contains(v));
        }
        // Every hull member is on a path between two members of S.
        for w in hull.iter() {
            prop_assert!(t.hull_contains_naive(&s, w));
        }
        // And nothing outside is.
        for w in t.vertices() {
            if !hull.contains(w) {
                prop_assert!(!t.hull_contains_naive(&s, w));
            }
        }
    }

    #[test]
    fn hull_is_idempotent((t, s) in arb_tree_with_subset(6)) {
        let hull = t.convex_hull(&s);
        let again = t.convex_hull(hull.vertices());
        prop_assert_eq!(hull.vertices(), again.vertices());
    }

    #[test]
    fn hull_is_monotone((t, s) in arb_tree_with_subset(6)) {
        let sub = &s[..s.len().div_ceil(2)];
        let small = t.convex_hull(sub);
        let big = t.convex_hull(&s);
        for v in small.iter() {
            prop_assert!(big.contains(v));
        }
    }

    #[test]
    fn euler_list_satisfies_lemma2(t in arb_tree()) {
        let l = list_construction(&t);
        let n = t.vertex_count();
        prop_assert!(l.len() <= 2 * n);
        prop_assert_eq!(l.len(), 2 * n - 1);
        if n > 1 {
            for w in l.entries().windows(2) {
                prop_assert!(t.adjacent(w[0], w[1]));
            }
        }
        for v in t.vertices() {
            prop_assert!(!l.occurrences(v).is_empty());
            let (lo, hi) = (l.first_occurrence(v), l.last_occurrence(v));
            for u in t.vertices() {
                let inside = l.occurrences(u).iter().all(|&i| lo <= i && i <= hi);
                prop_assert_eq!(t.is_ancestor(v, u), inside);
            }
        }
    }

    #[test]
    fn lemma3_root_paths_intersect_hull((t, s) in arb_tree_with_subset(5)) {
        // For any index between the extremes of S's occurrences, the path
        // from the root to L_i intersects <S>.
        let l = list_construction(&t);
        let hull = t.convex_hull(&s);
        let i_min = s.iter().map(|&v| l.first_occurrence(v)).min().unwrap();
        let i_max = s.iter().map(|&v| l.last_occurrence(v)).max().unwrap();
        for i in i_min..=i_max {
            let p = t.path(t.root(), l.get(i));
            prop_assert!(
                p.vertices().iter().any(|&w| hull.contains(w)),
                "path to L_{} misses the hull", i
            );
        }
    }

    #[test]
    fn lemma1_projections_stay_in_hull((t, s) in arb_tree_with_subset(5)) {
        // Choose the hull's diameter path as P (it intersects <S>), then
        // every projection of an S-vertex lands in V(P) ∩ <S>.
        let hull = t.convex_hull(&s);
        let p = t.hull_diameter_path(&hull).expect("non-empty S");
        let table = tree_model::ProjectionTable::new(&t, &p);
        for &v in &s {
            let pr = table.project(v);
            prop_assert!(p.contains(pr));
            prop_assert!(hull.contains(pr));
        }
    }

    #[test]
    fn projection_minimizes_distance((t, s) in arb_tree_with_subset(2)) {
        let p = t.path(s[0], *s.last().unwrap());
        let table = tree_model::ProjectionTable::new(&t, &p);
        for v in t.vertices() {
            let pr = table.project(v);
            for &w in p.vertices() {
                prop_assert!(t.distance(v, pr) <= t.distance(v, w));
            }
        }
    }

    #[test]
    fn closest_int_remark1(lo in -50i64..0, hi in 0i64..50, x in 0.0f64..1.0) {
        let j = lo as f64 + (hi - lo) as f64 * x;
        let r = closest_int(j);
        prop_assert!(r >= lo && r <= hi);
    }

    #[test]
    fn closest_int_remark2(j in -100.0f64..100.0, d in -1.0f64..1.0) {
        let r = closest_int(j);
        let rp = closest_int(j + d);
        prop_assert!((r - rp).abs() <= 1);
    }

    #[test]
    fn diameter_equals_max_pairwise_distance(t in arb_tree()) {
        let info = t.diameter_info();
        let mut best = 0;
        for u in t.vertices() {
            for v in t.vertices() {
                best = best.max(t.distance(u, v));
            }
        }
        prop_assert_eq!(info.diameter, best);
        prop_assert_eq!(info.path.edge_len(), best);
    }
}

// ---------------------------------------------------------------------
// Exhaustive cross-checks against from-scratch reference implementations
// (independent of everything in tree-model: LCA by ancestor walk, metric
// by BFS over the raw adjacency lists), over a fixed stream of 200 seeded
// random trees. proptest shrinks well but re-derives its oracles from the
// crate under test; these loops don't.
// ---------------------------------------------------------------------

/// The 200 seeded random trees the cross-check tests iterate over.
fn seeded_trees() -> impl Iterator<Item = Tree> {
    (0u64..200).map(|seed| {
        use rand::Rng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let n = rng.gen_range(1..40);
        let t = if seed % 2 == 0 {
            generate::random_prufer(n, &mut rng)
        } else {
            generate::random_attachment(n, &mut rng)
        };
        generate::relabel_shuffled(&t, &mut rng)
    })
}

/// Reference LCA: walk `u`'s ancestor chain to the root, then walk up
/// from `v` until hitting it — O(n), no Euler tour, no sparse table.
fn lca_by_ancestor_walk(t: &Tree, u: VertexId, v: VertexId) -> VertexId {
    let mut chain = vec![u];
    let mut cur = u;
    while let Some(p) = t.parent(cur) {
        chain.push(p);
        cur = p;
    }
    let mut cur = v;
    loop {
        if chain.contains(&cur) {
            return cur;
        }
        cur = t.parent(cur).expect("walk reaches the root");
    }
}

/// Reference single-source distances: plain BFS over `neighbors()`.
fn bfs_distances(t: &Tree, src: VertexId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; t.vertex_count()];
    dist[src.index()] = 0;
    let mut queue = std::collections::VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        for &w in t.neighbors(u) {
            if dist[w.index()] == usize::MAX {
                dist[w.index()] = dist[u.index()] + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

#[test]
fn lca_table_and_euler_tour_match_ancestor_walk_on_200_trees() {
    for t in seeded_trees() {
        let table = tree_model::LcaTable::new(&t);
        let l = list_construction(&t);
        for u in t.vertices() {
            for v in t.vertices() {
                let expected = lca_by_ancestor_walk(&t, u, v);
                assert_eq!(table.lca(u, v), expected);
                // The classic Euler-tour reduction: the shallowest list
                // entry between two first occurrences is the LCA.
                let (lo, hi) = {
                    let (a, b) = (l.first_occurrence(u), l.first_occurrence(v));
                    (a.min(b), a.max(b))
                };
                let shallowest = (lo..=hi)
                    .map(|i| l.get(i))
                    .min_by_key(|&w| t.depth(w))
                    .expect("non-empty range");
                assert_eq!(shallowest, expected);
            }
        }
    }
}

#[test]
fn distance_and_diameter_match_brute_force_bfs_on_200_trees() {
    for t in seeded_trees() {
        let mut best = 0;
        for u in t.vertices() {
            let dist = bfs_distances(&t, u);
            for v in t.vertices() {
                assert_eq!(t.distance(u, v), dist[v.index()]);
                best = best.max(dist[v.index()]);
            }
            assert_eq!(t.eccentricity(u), *dist.iter().max().expect("non-empty"));
        }
        assert_eq!(t.diameter(), best);
    }
}

#[test]
fn hull_matches_brute_force_betweenness_on_200_trees() {
    for t in seeded_trees() {
        use rand::Rng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(t.vertex_count() as u64);
        let verts: Vec<VertexId> = t.vertices().collect();
        let k = rng.gen_range(1..=verts.len().min(5));
        let s: Vec<VertexId> = (0..k)
            .map(|_| verts[rng.gen_range(0..verts.len())])
            .collect();
        let hull = t.convex_hull(&s);
        // w ∈ <S> iff w lies on a shortest path between two members of S:
        // d(a, w) + d(w, b) = d(a, b) for some a, b ∈ S.
        for &w in &verts {
            let between = s.iter().any(|&a| {
                s.iter()
                    .any(|&b| t.distance(a, w) + t.distance(w, b) == t.distance(a, b))
            });
            assert_eq!(hull.contains(w), between, "vertex {w} of hull over {s:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn text_serialization_roundtrips(t in arb_tree()) {
        let text = t.to_text();
        let back = tree_model::parse_tree(&text).unwrap();
        prop_assert_eq!(back.vertex_count(), t.vertex_count());
        prop_assert_eq!(back.diameter(), t.diameter());
        for v in t.vertices() {
            let label = t.label(v).as_str();
            let w = back.vertex(label).unwrap();
            prop_assert_eq!(back.degree(w), t.degree(v));
        }
    }

    #[test]
    fn centroid_defining_property(t in arb_tree()) {
        let n = t.vertex_count();
        let c = t.centroid();
        for &nb in t.neighbors(c) {
            let count = t
                .vertices()
                .filter(|&v| t.distance(v, nb) < t.distance(v, c))
                .count();
            prop_assert!(count <= n / 2, "component {} > {}", count, n / 2);
        }
    }

    #[test]
    fn eccentricity_is_bounded_by_diameter(t in arb_tree()) {
        let d = t.diameter();
        for v in t.vertices() {
            let e = t.eccentricity(v);
            prop_assert!(e <= d);
            // Radius lower bound: ecc >= ceil(D/2).
            prop_assert!(2 * e >= d);
        }
        prop_assert!(t.height() <= d || t.vertex_count() == 1);
    }
}
