//! Bundled gradecast: one wire round shared by k in-flight AA instances.
//!
//! A production agreement service runs many approximate-agreement
//! instances concurrently. Running them as separate protocols multiplies
//! the per-round framing (and, over real sockets, the per-message
//! syscalls) by k. This module amortizes the substrate: each party
//! broadcasts **one** message per phase carrying a struct-of-arrays
//! vector over all k instances — an outer presence bitmap (absent slot =
//! instance already finished at that sender) whose entries are exactly
//! the per-instance [`GcBatchMsg`](crate::GcBatchMsg) bodies of PR 6's
//! batched wire, `Arc`-shared so inbox clones never copy the arrays.
//! Delivered bytes per round stay O(n²) of framing shared across all k
//! instances, plus the per-instance payload each instance would have
//! paid anyway.
//!
//! # Equivalence by construction
//!
//! [`BundleGradecast`] holds one [`BatchGradecast`] core per instance
//! and routes each inner slot of an incoming bundle to the matching
//! core through the absorb halves
//! ([`BatchGradecast::absorb_lead`] /
//! [`BatchGradecast::absorb_echo_slots`] /
//! [`BatchGradecast::absorb_vote_slots`]). The cores share no state, so
//! instance j's tallies, grades, and outputs are — by construction —
//! exactly what a standalone [`BatchGradecast`] fed the same slots
//! would produce. Two corollaries the tests pin down:
//!
//! * **Differential equivalence.** A bundled run of k instances equals
//!   k independent runs, slot for slot (and the `real-aa` layer extends
//!   this to outcomes, hull trajectories, and trace events — see
//!   `crates/real-aa/tests/bundle_equiv.rs`).
//! * **Corruption isolation.** A Byzantine sender equivocating in only
//!   one instance of its bundle perturbs only that instance's core;
//!   every other instance is bit-identical to the honest baseline.
//!
//! An absent *outer* slot simply means the sender had nothing to say
//! for that instance — indistinguishable from that sender being silent
//! in a standalone run of the instance, which is exactly the semantics
//! early-stopped instances need.

use std::fmt;
use std::sync::Arc;

use sim_net::{PartyId, Payload};

use crate::batch::{BatchGradecast, GcSlots, GcValue};
use crate::state::GradecastOutput;

/// A structurally invalid bundle request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BundleError {
    /// A bundle must carry at least one instance (k ≥ 1).
    Empty,
}

impl fmt::Display for BundleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleError::Empty => write!(f, "bundle must carry at least one instance (k = 0)"),
        }
    }
}

impl std::error::Error for BundleError {}

/// A bundled gradecast message: one broadcast per sender per phase,
/// shared by all k instances. The outer [`GcSlots`] ranges over
/// instances (absent = the sender has finished that instance); inner
/// bodies are the per-instance batched wire of [`crate::batch`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GcBundleMsg<V> {
    /// Round 3i+1: the sender's own lead value for each active instance.
    Leads(Arc<GcSlots<V>>),
    /// Round 3i+2: per active instance, the sender's echo slots over all
    /// n leaders.
    Echoes(Arc<GcSlots<GcSlots<V>>>),
    /// Round 3i+3: per active instance, the sender's vote hashes.
    Votes(Arc<GcSlots<GcSlots<u32>>>),
}

impl<V: Payload> Payload for GcBundleMsg<V> {
    fn size_bytes(&self) -> usize {
        // Tag byte + outer bitmap + nested per-instance bodies, sized
        // recursively with the same per-entry accounting as the batched
        // wire so trace byte totals reconcile across both formats.
        match self {
            GcBundleMsg::Leads(slots) => 1 + slots.wire_bytes_with(Payload::size_bytes),
            GcBundleMsg::Echoes(outer) => {
                1 + outer.wire_bytes_with(|inner| inner.wire_bytes_with(Payload::size_bytes))
            }
            GcBundleMsg::Votes(outer) => {
                1 + outer.wire_bytes_with(|inner| inner.wire_bytes_with(|_| 4))
            }
        }
    }
}

/// k parallel-gradecast batches driven by one bundled wire message per
/// phase: one independent [`BatchGradecast`] core per instance.
#[derive(Clone, Debug)]
pub struct BundleGradecast<V> {
    cores: Vec<BatchGradecast<V>>,
}

impl<V: GcValue> BundleGradecast<V> {
    /// Creates a bundle of `k` instances for party `me` out of `n` with
    /// corruption bound `t`, no leaders muted anywhere.
    ///
    /// # Errors
    ///
    /// [`BundleError::Empty`] if `k == 0`.
    ///
    /// # Panics
    ///
    /// As [`BatchGradecast::new`]: requires `n > 3t` and `me < n`.
    pub fn new(me: PartyId, n: usize, t: usize, k: usize) -> Result<Self, BundleError> {
        Self::with_muted(me, n, t, vec![vec![false; n]; k])
    }

    /// Creates a bundle with a per-instance initial muted set (carried
    /// over between `RealAA` iterations); `k = muted.len()`.
    ///
    /// # Errors
    ///
    /// [`BundleError::Empty`] if `muted` is empty.
    ///
    /// # Panics
    ///
    /// As [`BatchGradecast::with_muted`] for each instance.
    pub fn with_muted(
        me: PartyId,
        n: usize,
        t: usize,
        muted: Vec<Vec<bool>>,
    ) -> Result<Self, BundleError> {
        if muted.is_empty() {
            return Err(BundleError::Empty);
        }
        Ok(BundleGradecast {
            cores: muted
                .into_iter()
                .map(|m| BatchGradecast::with_muted(me, n, t, m))
                .collect(),
        })
    }

    /// Number of bundled instances.
    pub fn k(&self) -> usize {
        self.cores.len()
    }

    /// Resets every core to a fresh batch with its next muted set,
    /// reusing all per-core buffers (see
    /// [`BatchGradecast::reset_with_muted`]) — how a long-lived bundle
    /// starts each `RealAA` iteration without reallocating k cores.
    ///
    /// # Panics
    ///
    /// Panics unless `muted.len() == k` and each entry covers `n`.
    pub fn reset_with_muted(&mut self, muted: &[Vec<bool>]) {
        assert_eq!(muted.len(), self.k(), "one muted set per instance");
        for (core, m) in self.cores.iter_mut().zip(muted) {
            core.reset_with_muted(m);
        }
    }

    /// Absorbs round-3i+3 vote bundles without grading, so the caller
    /// can grade instance by instance through
    /// [`BatchGradecast::grade_into`] into a reused buffer. The absorb
    /// half of [`BundleGradecast::on_votes`].
    pub fn absorb_vote_bundles<'a, I>(&mut self, inbox: I)
    where
        I: IntoIterator<Item = (PartyId, &'a GcBundleMsg<V>)>,
        V: 'a,
    {
        for (from, msg) in inbox {
            if let GcBundleMsg::Votes(outer) = msg {
                for (inst, inner) in outer.iter() {
                    if let Some(core) = self.cores.get_mut(inst) {
                        core.absorb_vote_slots(from, inner);
                    }
                }
            }
        }
    }

    /// The per-instance core (for muting and inspection).
    ///
    /// # Panics
    ///
    /// Panics if `inst >= k`.
    pub fn core(&self, inst: usize) -> &BatchGradecast<V> {
        &self.cores[inst]
    }

    /// The per-instance core, mutably.
    ///
    /// # Panics
    ///
    /// Panics if `inst >= k`.
    pub fn core_mut(&mut self, inst: usize) -> &mut BatchGradecast<V> {
        &mut self.cores[inst]
    }

    /// Phase 1: the bundled lead message — this party's own value per
    /// instance, `None` for instances it has finished.
    ///
    /// # Panics
    ///
    /// Panics unless `values.len() == k`.
    pub fn lead_msg(&self, values: Vec<Option<V>>) -> GcBundleMsg<V> {
        assert_eq!(values.len(), self.k(), "one lead slot per instance");
        GcBundleMsg::Leads(Arc::new(GcSlots::from_options(values)))
    }

    /// Phase 2: consume round-3i+1 lead bundles, return the echo bundle
    /// to broadcast. `active[j]` gates which instances get an outer slot
    /// (finished instances send nothing, exactly like a terminated
    /// standalone party).
    ///
    /// # Panics
    ///
    /// Panics unless `active.len() == k`.
    pub fn on_leads<'a, I>(&mut self, inbox: I, active: &[bool]) -> GcBundleMsg<V>
    where
        I: IntoIterator<Item = (PartyId, &'a GcBundleMsg<V>)>,
        V: 'a,
    {
        assert_eq!(active.len(), self.k(), "one active flag per instance");
        for (from, msg) in inbox {
            if let GcBundleMsg::Leads(slots) = msg {
                for (inst, v) in slots.iter() {
                    if let Some(core) = self.cores.get_mut(inst) {
                        core.absorb_lead(from, v);
                    }
                }
            }
        }
        let echoes = (0..self.k())
            .map(|j| active[j].then(|| self.cores[j].echo_slots()))
            .collect();
        GcBundleMsg::Echoes(Arc::new(GcSlots::from_options(echoes)))
    }

    /// Phase 3: consume round-3i+2 echo bundles, return the vote bundle
    /// to broadcast.
    ///
    /// # Panics
    ///
    /// Panics unless `active.len() == k`.
    pub fn on_echoes<'a, I>(&mut self, inbox: I, active: &[bool]) -> GcBundleMsg<V>
    where
        I: IntoIterator<Item = (PartyId, &'a GcBundleMsg<V>)>,
        V: 'a,
    {
        assert_eq!(active.len(), self.k(), "one active flag per instance");
        for (from, msg) in inbox {
            if let GcBundleMsg::Echoes(outer) = msg {
                for (inst, inner) in outer.iter() {
                    if let Some(core) = self.cores.get_mut(inst) {
                        core.absorb_echo_slots(from, inner);
                    }
                }
            }
        }
        let votes = (0..self.k())
            .map(|j| active[j].then(|| self.cores[j].vote_slots()))
            .collect();
        GcBundleMsg::Votes(Arc::new(GcSlots::from_options(votes)))
    }

    /// Phase 4: consume round-3i+3 vote bundles and grade every leader
    /// of every active instance (`None` for inactive instances).
    ///
    /// # Panics
    ///
    /// Panics unless `active.len() == k`.
    pub fn on_votes<'a, I>(
        &mut self,
        inbox: I,
        active: &[bool],
    ) -> Vec<Option<Vec<GradecastOutput<V>>>>
    where
        I: IntoIterator<Item = (PartyId, &'a GcBundleMsg<V>)>,
        V: 'a,
    {
        assert_eq!(active.len(), self.k(), "one active flag per instance");
        self.absorb_vote_bundles(inbox);
        (0..self.k())
            .map(|j| active[j].then(|| self.cores[j].grade_all()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::GcBatchMsg;
    use crate::state::Grade;
    use aa_codec::Json;

    /// One lockstep bundled run: every party leads `lead_of(party, inst)`
    /// in every instance (None = silent in that instance), all instances
    /// active throughout. Returns `outputs[party][inst][leader]`.
    fn run_bundled(
        n: usize,
        t: usize,
        k: usize,
        lead_of: impl Fn(usize, usize) -> Option<u64>,
        silent: &[bool],
        tamper_echoes: impl Fn(usize, GcBundleMsg<u64>) -> GcBundleMsg<u64>,
    ) -> Vec<Vec<Vec<GradecastOutput<u64>>>> {
        let active = vec![true; k];
        let mut ms: Vec<BundleGradecast<u64>> = (0..n)
            .map(|i| BundleGradecast::new(PartyId(i), n, t, k).unwrap())
            .collect();
        let leads: Vec<(PartyId, GcBundleMsg<u64>)> = (0..n)
            .map(|snd| {
                let values = (0..k).map(|j| lead_of(snd, j)).collect();
                (PartyId(snd), ms[snd].lead_msg(values))
            })
            .collect();
        let mut echoes: Vec<(PartyId, GcBundleMsg<u64>)> = Vec::new();
        for r in 0..n {
            let batch = ms[r].on_leads(leads.iter().map(|(p, m)| (*p, m)), &active);
            if !silent[r] {
                echoes.push((PartyId(r), tamper_echoes(r, batch)));
            }
        }
        let mut votes: Vec<(PartyId, GcBundleMsg<u64>)> = Vec::new();
        for r in 0..n {
            let batch = ms[r].on_echoes(echoes.iter().map(|(p, m)| (*p, m)), &active);
            if !silent[r] {
                votes.push((PartyId(r), batch));
            }
        }
        (0..n)
            .map(|r| {
                ms[r]
                    .on_votes(votes.iter().map(|(p, m)| (*p, m)), &active)
                    .into_iter()
                    .map(|o| o.expect("all instances active"))
                    .collect()
            })
            .collect()
    }

    /// The independent reference: one standalone [`BatchGradecast`] run
    /// per instance, same leads. Returns `outputs[party][inst][leader]`.
    fn run_independent(
        n: usize,
        t: usize,
        k: usize,
        lead_of: impl Fn(usize, usize) -> Option<u64>,
    ) -> Vec<Vec<Vec<GradecastOutput<u64>>>> {
        let mut out = vec![Vec::new(); n];
        for j in 0..k {
            let mut ms: Vec<BatchGradecast<u64>> = (0..n)
                .map(|i| BatchGradecast::new(PartyId(i), n, t))
                .collect();
            let leads: Vec<(PartyId, GcBatchMsg<u64>)> = (0..n)
                .filter_map(|snd| lead_of(snd, j).map(|v| (PartyId(snd), GcBatchMsg::Lead(v))))
                .collect();
            let echoes: Vec<(PartyId, GcBatchMsg<u64>)> = (0..n)
                .map(|r| {
                    let batch = ms[r].on_leads(leads.iter().map(|(p, m)| (*p, m)));
                    (PartyId(r), batch)
                })
                .collect();
            let votes: Vec<(PartyId, GcBatchMsg<u64>)> = (0..n)
                .map(|r| {
                    let batch = ms[r].on_echoes(echoes.iter().map(|(p, m)| (*p, m)));
                    (PartyId(r), batch)
                })
                .collect();
            for (r, m) in ms.iter_mut().enumerate() {
                out[r].push(m.on_votes(votes.iter().map(|(p, m)| (*p, m))));
            }
        }
        out
    }

    #[test]
    fn empty_bundle_is_a_typed_error() {
        assert_eq!(
            BundleGradecast::<u64>::new(PartyId(0), 4, 1, 0).unwrap_err(),
            BundleError::Empty
        );
        assert_eq!(
            BundleGradecast::<u64>::with_muted(PartyId(0), 4, 1, Vec::new()).unwrap_err(),
            BundleError::Empty
        );
        let msg = BundleError::Empty.to_string();
        assert!(msg.contains("k = 0"), "unhelpful error: {msg}");
    }

    #[test]
    fn bundled_equals_independent_per_instance() {
        let (n, t, k) = (7, 2, 3);
        // Instance 0 all honest, instance 1 has a silent leader, instance
        // 2 has distinct values everywhere.
        let lead_of = |snd: usize, j: usize| match j {
            1 if snd == 3 => None,
            _ => Some(1000 * j as u64 + snd as u64),
        };
        let bundled = run_bundled(n, t, k, lead_of, &vec![false; n], |_, m| m);
        let independent = run_independent(n, t, k, lead_of);
        assert_eq!(bundled, independent);
        for out in &bundled {
            assert_eq!(out[1][3].grade, Grade::Zero);
            assert_eq!(out[0][2].value, Some(2));
        }
    }

    #[test]
    fn byzantine_in_one_instance_corrupts_only_that_instance() {
        let (n, t, k) = (7, 2, 3);
        let lead_of = |snd: usize, j: usize| Some(1000 * j as u64 + snd as u64);
        // Parties 5 and 6 crash after leading, so every leader sits at
        // exactly n − t = 5 echoes — the margin where one Byzantine
        // echoer matters. Party 0 then tampers its echo bundle in
        // instance 1 only, fabricating a value for every leader: true
        // echo counts drop to 4, no party votes, and every grade in
        // instance 1 collapses to Zero. Instances 0 and 2 must stay
        // bit-identical to the untampered baseline at every party.
        let mut silent = vec![false; n];
        silent[5] = true;
        silent[6] = true;
        let tamper = |r: usize, m: GcBundleMsg<u64>| {
            if r != 0 {
                return m;
            }
            let GcBundleMsg::Echoes(outer) = &m else {
                panic!("phase 2 produces echoes")
            };
            let rewritten = (0..k)
                .map(|j| {
                    let inner = outer.iter().find(|(i, _)| *i == j).unwrap().1.clone();
                    if j == 1 {
                        Some(GcSlots::from_options(vec![Some(0xbad); n]))
                    } else {
                        Some(inner)
                    }
                })
                .collect();
            GcBundleMsg::Echoes(Arc::new(GcSlots::from_options(rewritten)))
        };
        let tampered = run_bundled(n, t, k, lead_of, &silent, tamper);
        let honest = run_bundled(n, t, k, lead_of, &silent, |_, m| m);
        assert_ne!(tampered, honest, "tampering must be visible somewhere");
        for (party, (got, want)) in tampered.iter().zip(&honest).enumerate() {
            assert_eq!(got[0], want[0], "instance 0 perturbed at party {party}");
            assert_eq!(got[2], want[2], "instance 2 perturbed at party {party}");
            for slot in &got[1] {
                assert_eq!(slot.grade, Grade::Zero, "party {party}");
            }
            for slot in &want[1] {
                assert_eq!(slot.grade, Grade::Two, "party {party}");
            }
        }
    }

    #[test]
    fn bundle_bytes_amortize_outer_framing() {
        // k instances bundled: 1 tag + outer bitmap + k inner bodies.
        // Independent: k × (1 tag + inner body). The saving is the k−1
        // repeated tags minus the outer bitmap — small per message but
        // what matters is it never grows with n, and the engine pays one
        // delivery instead of k.
        let (n, k) = (64usize, 16usize);
        let inner = GcSlots::from_options((0..n).map(|l| Some(l as u64)).collect());
        let bundled = GcBundleMsg::Echoes(Arc::new(GcSlots::from_options(
            (0..k).map(|_| Some(inner.clone())).collect(),
        )))
        .size_bytes();
        let independent = k * GcBatchMsg::Echoes(Arc::new(inner.clone())).size_bytes();
        assert_eq!(
            bundled,
            1 + k.div_ceil(8) + k * inner.wire_bytes_with(|v| v.size_bytes())
        );
        assert!(bundled < independent);
    }

    /// Encodes slots as the canonical JSON the repro/trace tooling uses:
    /// a presence bitmap array plus dense entries.
    fn slots_to_json(slots: &GcSlots<u64>) -> Json {
        let present = (0..slots.n())
            .map(|i| Json::Bool(slots.is_present(i)))
            .collect();
        let entries = slots.iter().map(|(_, &v)| Json::int(v)).collect();
        Json::Obj(vec![
            ("present".into(), Json::Arr(present)),
            ("entries".into(), Json::Arr(entries)),
        ])
    }

    fn slots_from_json(v: &Json) -> GcSlots<u64> {
        let present = v.get("present").and_then(Json::as_arr).unwrap();
        let mut entries = v
            .get("entries")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|e| e.as_u64().unwrap());
        let options = present
            .iter()
            .map(|p| matches!(p, Json::Bool(true)).then(|| entries.next().unwrap()))
            .collect();
        GcSlots::from_options(options)
    }

    #[test]
    fn partial_presence_bitmaps_roundtrip_through_aa_codec() {
        // encode → decode → encode identity for a ragged bitmap,
        // including the all-absent and all-present borders.
        for options in [
            vec![
                None,
                Some(7),
                None,
                None,
                Some(0),
                Some((1 << 53) - 1),
                None,
            ],
            vec![None; 9],
            (0..11).map(Some).collect::<Vec<_>>(),
        ] {
            let slots = GcSlots::from_options(options);
            let text = slots_to_json(&slots).to_string();
            let parsed = Json::parse(&text).unwrap();
            let decoded = slots_from_json(&parsed);
            assert_eq!(decoded, slots);
            assert_eq!(slots_to_json(&decoded).to_string(), text);
        }
    }
}
