//! Gradecast wire messages.

use sim_net::{PartyId, Payload};

/// A gradecast message. `Echo` and `Vote` carry the id of the *leader*
/// whose instance they belong to; a `Lead` implicitly belongs to the
/// instance of its (authenticated) sender.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GcMsg<V> {
    /// Round 1: the leader's value.
    Lead(V),
    /// Round 2: "leader `ℓ` sent me this value".
    Echo(PartyId, V),
    /// Round 3: "I saw `n − t` matching echoes of this value for `ℓ`".
    Vote(PartyId, V),
}

impl<V: Clone + std::fmt::Debug> Payload for GcMsg<V> {
    fn size_bytes(&self) -> usize {
        // Tag byte + optional leader id (4 bytes) + value payload.
        let value_size = std::mem::size_of::<V>();
        match self {
            GcMsg::Lead(_) => 1 + value_size,
            GcMsg::Echo(_, _) | GcMsg::Vote(_, _) => 1 + 4 + value_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_estimates_are_positive_and_tagged() {
        let lead: GcMsg<u64> = GcMsg::Lead(1);
        let echo: GcMsg<u64> = GcMsg::Echo(PartyId(0), 1);
        let vote: GcMsg<u64> = GcMsg::Vote(PartyId(0), 1);
        assert_eq!(lead.size_bytes(), 9);
        assert_eq!(echo.size_bytes(), 13);
        assert_eq!(vote.size_bytes(), 13);
    }
}
