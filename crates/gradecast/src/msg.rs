//! Gradecast wire messages.

use sim_net::{PartyId, Payload};

/// A gradecast message. `Echo` and `Vote` carry the id of the *leader*
/// whose instance they belong to; a `Lead` implicitly belongs to the
/// instance of its (authenticated) sender.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GcMsg<V> {
    /// Round 1: the leader's value.
    Lead(V),
    /// Round 2: "leader `ℓ` sent me this value".
    Echo(PartyId, V),
    /// Round 3: "I saw `n − t` matching echoes of this value for `ℓ`".
    Vote(PartyId, V),
}

impl<V: Payload> Payload for GcMsg<V> {
    fn size_bytes(&self) -> usize {
        // Tag byte + optional leader id (4 bytes) + value payload. The
        // value is sized through its own `Payload` impl so heap-carrying
        // values (strings, vertex lists) count their real wire size, not
        // `size_of::<V>()`'s shallow pointer-width estimate.
        match self {
            GcMsg::Lead(v) => 1 + v.size_bytes(),
            GcMsg::Echo(_, v) | GcMsg::Vote(_, v) => 1 + 4 + v.size_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_estimates_are_positive_and_tagged() {
        let lead: GcMsg<u64> = GcMsg::Lead(1);
        let echo: GcMsg<u64> = GcMsg::Echo(PartyId(0), 1);
        let vote: GcMsg<u64> = GcMsg::Vote(PartyId(0), 1);
        assert_eq!(lead.size_bytes(), 9);
        assert_eq!(echo.size_bytes(), 13);
        assert_eq!(vote.size_bytes(), 13);
    }

    #[test]
    fn heap_values_count_their_real_size() {
        // A 100-byte string must contribute 100 bytes, not the 24-byte
        // shallow size of the `String` header.
        let v = "x".repeat(100);
        let lead: GcMsg<String> = GcMsg::Lead(v.clone());
        let echo: GcMsg<String> = GcMsg::Echo(PartyId(3), v);
        assert_eq!(lead.size_bytes(), 1 + 100);
        assert_eq!(echo.size_bytes(), 1 + 4 + 100);
    }
}
