//! The parallel gradecast state machine (pure, engine-agnostic).

use std::collections::BTreeMap;

use sim_net::PartyId;

use crate::msg::GcMsg;

/// A gradecast confidence grade.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Grade {
    /// No value could be attributed to the leader.
    Zero,
    /// A value with at least `t + 1` votes — bound, but possibly not seen
    /// by everyone.
    One,
    /// A value with at least `n − t` votes — guaranteed grade ≥ 1
    /// everywhere.
    Two,
}

impl Grade {
    /// Numeric grade (0, 1 or 2).
    pub fn as_u8(self) -> u8 {
        match self {
            Grade::Zero => 0,
            Grade::One => 1,
            Grade::Two => 2,
        }
    }
}

/// The per-leader result of one parallel gradecast batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GradecastOutput<V> {
    /// The bound value; `None` exactly when `grade` is [`Grade::Zero`].
    pub value: Option<V>,
    /// The confidence grade.
    pub grade: Grade,
}

impl<V> GradecastOutput<V> {
    /// Whether this output would be *accepted* by `RealAA` (grade ≥ 1).
    pub fn accepted(&self) -> bool {
        self.grade >= Grade::One
    }
}

/// One batch of `n` parallel gradecast instances (every party leads one),
/// as a pure three-phase state machine.
///
/// The caller drives the phases in order, feeding each phase the messages
/// delivered for it and broadcasting the messages each phase returns:
///
/// 1. [`ParallelGradecast::lead_msgs`] — this party's round-1 broadcast;
/// 2. [`ParallelGradecast::on_leads`] — consume leads, produce echoes;
/// 3. [`ParallelGradecast::on_echoes`] — consume echoes, produce votes;
/// 4. [`ParallelGradecast::on_votes`] — consume votes, produce the final
///    [`GradecastOutput`] per leader.
///
/// Values must be `Ord` so vote tallies have a deterministic maximum.
///
/// Messages from the same sender for the same slot are de-duplicated
/// (first one wins) — a Byzantine sender gains nothing by repeating
/// itself on an authenticated channel.
#[derive(Clone, Debug)]
pub struct ParallelGradecast<V> {
    me: PartyId,
    n: usize,
    t: usize,
    /// Leaders this party refuses to relay (echo/vote) for.
    muted: Vec<bool>,
    /// Per leader: the lead value received (first lead wins).
    leads: Vec<Option<V>>,
    /// Per leader: echo tallies value → distinct-sender count.
    echo_tally: Vec<BTreeMap<V, usize>>,
    /// Per (leader, sender): whether an echo was already counted.
    echo_seen: Vec<Vec<bool>>,
    /// Per leader: vote tallies.
    vote_tally: Vec<BTreeMap<V, usize>>,
    /// Per (leader, sender): whether a vote was already counted.
    vote_seen: Vec<Vec<bool>>,
}

impl<V: Clone + Ord + std::fmt::Debug> ParallelGradecast<V> {
    /// Creates a batch for party `me` out of `n` with corruption bound
    /// `t`, with no leaders muted.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3t` and `me < n` — gradecast's guarantees need
    /// `t < n/3`, and constructing it outside that regime is a bug.
    pub fn new(me: PartyId, n: usize, t: usize) -> Self {
        Self::with_muted(me, n, t, vec![false; n])
    }

    /// Creates a batch with an initial muted set (carried over between
    /// `RealAA` iterations).
    ///
    /// # Panics
    ///
    /// As [`ParallelGradecast::new`]; additionally requires
    /// `muted.len() == n`.
    pub fn with_muted(me: PartyId, n: usize, t: usize, muted: Vec<bool>) -> Self {
        assert!(n > 3 * t, "gradecast requires n > 3t (n = {n}, t = {t})");
        assert!(me.index() < n, "party id out of range");
        assert_eq!(muted.len(), n, "muted set must cover all parties");
        ParallelGradecast {
            me,
            n,
            t,
            muted,
            leads: vec![None; n],
            echo_tally: vec![BTreeMap::new(); n],
            echo_seen: vec![vec![false; n]; n],
            vote_tally: vec![BTreeMap::new(); n],
            vote_seen: vec![vec![false; n]; n],
        }
    }

    /// This party's id.
    pub fn me(&self) -> PartyId {
        self.me
    }

    /// Number of parties.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Corruption bound.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Stops relaying for `leader` (permanently, across batches if the
    /// caller carries the muted set forward).
    pub fn mute(&mut self, leader: PartyId) {
        self.muted[leader.index()] = true;
    }

    /// Whether `leader` is muted here.
    pub fn is_muted(&self, leader: PartyId) -> bool {
        self.muted[leader.index()]
    }

    /// The muted set, for carrying into the next batch.
    pub fn muted(&self) -> &[bool] {
        &self.muted
    }

    /// Phase 1: the messages this party broadcasts as leader of its own
    /// instance.
    pub fn lead_msgs(&self, value: V) -> Vec<GcMsg<V>> {
        vec![GcMsg::Lead(value)]
    }

    /// Phase 2: consume round-1 leads, return echoes to broadcast.
    ///
    /// Leads from muted leaders are ignored; no echoes are produced for
    /// them.
    pub fn on_leads(&mut self, inbox: &[(PartyId, GcMsg<V>)]) -> Vec<GcMsg<V>> {
        for (from, msg) in inbox {
            if let GcMsg::Lead(v) = msg {
                let leader = from.index();
                if !self.muted[leader] && self.leads[leader].is_none() {
                    self.leads[leader] = Some(v.clone());
                }
            }
        }
        self.leads
            .iter()
            .enumerate()
            .filter_map(|(leader, lead)| {
                lead.as_ref()
                    .map(|v| GcMsg::Echo(PartyId(leader), v.clone()))
            })
            .collect()
    }

    /// Phase 3: consume round-2 echoes, return votes to broadcast.
    ///
    /// A vote for leader `ℓ` and value `v` is produced iff `n − t`
    /// distinct parties echoed `v` for `ℓ` and `ℓ` is not muted.
    pub fn on_echoes(&mut self, inbox: &[(PartyId, GcMsg<V>)]) -> Vec<GcMsg<V>> {
        for (from, msg) in inbox {
            if let GcMsg::Echo(leader, v) = msg {
                let (l, s) = (leader.index(), from.index());
                if l < self.n && !self.echo_seen[l][s] {
                    self.echo_seen[l][s] = true;
                    *self.echo_tally[l].entry(v.clone()).or_insert(0) += 1;
                }
            }
        }
        let mut votes = Vec::new();
        for l in 0..self.n {
            if self.muted[l] {
                continue;
            }
            if let Some((v, _)) = self.echo_tally[l]
                .iter()
                .find(|&(_, &c)| c >= self.n - self.t)
            {
                votes.push(GcMsg::Vote(PartyId(l), v.clone()));
            }
        }
        votes
    }

    /// Phase 4: consume round-3 votes and produce the output for every
    /// leader.
    ///
    /// Outputs are computed for muted leaders too: muting suppresses
    /// *relaying*, not *evaluation* (see the crate docs on why `RealAA`
    /// needs exactly this split).
    pub fn on_votes(&mut self, inbox: &[(PartyId, GcMsg<V>)]) -> Vec<GradecastOutput<V>> {
        for (from, msg) in inbox {
            if let GcMsg::Vote(leader, v) = msg {
                let (l, s) = (leader.index(), from.index());
                if l < self.n && !self.vote_seen[l][s] {
                    self.vote_seen[l][s] = true;
                    *self.vote_tally[l].entry(v.clone()).or_insert(0) += 1;
                }
            }
        }
        (0..self.n)
            .map(|l| {
                // Deterministic argmax: BTreeMap iterates values in order,
                // keep the first value attaining the maximal count.
                let best = self.vote_tally[l]
                    .iter()
                    .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)));
                match best {
                    Some((v, &c)) if c >= self.n - self.t => GradecastOutput {
                        value: Some(v.clone()),
                        grade: Grade::Two,
                    },
                    Some((v, &c)) if c > self.t => GradecastOutput {
                        value: Some(v.clone()),
                        grade: Grade::One,
                    },
                    _ => GradecastOutput {
                        value: None,
                        grade: Grade::Zero,
                    },
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_honest_run(n: usize, t: usize, values: &[u64]) -> Vec<Vec<GradecastOutput<u64>>> {
        // Drive n state machines by hand, all honest.
        let mut machines: Vec<ParallelGradecast<u64>> = (0..n)
            .map(|i| ParallelGradecast::new(PartyId(i), n, t))
            .collect();
        // Round 1: leads.
        let mut leads: Vec<(PartyId, GcMsg<u64>)> = Vec::new();
        for (i, m) in machines.iter().enumerate() {
            for msg in m.lead_msgs(values[i]) {
                leads.push((PartyId(i), msg));
            }
        }
        // Round 2: echoes (everyone receives all leads).
        let mut echoes: Vec<(PartyId, GcMsg<u64>)> = Vec::new();
        for (i, m) in machines.iter_mut().enumerate() {
            for msg in m.on_leads(&leads) {
                echoes.push((PartyId(i), msg));
            }
        }
        // Round 3: votes.
        let mut votes: Vec<(PartyId, GcMsg<u64>)> = Vec::new();
        for (i, m) in machines.iter_mut().enumerate() {
            for msg in m.on_echoes(&echoes) {
                votes.push((PartyId(i), msg));
            }
        }
        machines.iter_mut().map(|m| m.on_votes(&votes)).collect()
    }

    #[test]
    fn all_honest_all_grade_two() {
        let values = [10, 20, 30, 40];
        let outs = all_honest_run(4, 1, &values);
        for out in &outs {
            for (leader, slot) in out.iter().enumerate() {
                assert_eq!(slot.grade, Grade::Two);
                assert_eq!(slot.value, Some(values[leader]));
                assert!(slot.accepted());
            }
        }
    }

    #[test]
    fn muted_leader_grades_zero_when_all_mute() {
        let n = 4;
        let mut machines: Vec<ParallelGradecast<u64>> = (0..n)
            .map(|i| ParallelGradecast::new(PartyId(i), n, 1))
            .collect();
        for m in &mut machines {
            m.mute(PartyId(0));
        }
        let mut leads = Vec::new();
        for (i, m) in machines.iter().enumerate() {
            for msg in m.lead_msgs(i as u64) {
                leads.push((PartyId(i), msg));
            }
        }
        let mut echoes = Vec::new();
        for (i, m) in machines.iter_mut().enumerate() {
            for msg in m.on_leads(&leads) {
                echoes.push((PartyId(i), msg));
            }
        }
        // No echoes for leader 0 at all.
        assert!(echoes
            .iter()
            .all(|(_, m)| !matches!(m, GcMsg::Echo(l, _) if l.index() == 0)));
        let mut votes = Vec::new();
        for (i, m) in machines.iter_mut().enumerate() {
            for msg in m.on_echoes(&echoes) {
                votes.push((PartyId(i), msg));
            }
        }
        for m in &mut machines {
            let out = m.on_votes(&votes);
            assert_eq!(out[0].grade, Grade::Zero);
            assert_eq!(out[0].value, None);
            // Other leaders unaffected.
            for slot in &out[1..] {
                assert_eq!(slot.grade, Grade::Two);
            }
        }
    }

    #[test]
    fn duplicate_messages_from_same_sender_count_once() {
        let n = 4;
        let mut m = ParallelGradecast::<u64>::new(PartyId(0), n, 1);
        // Feed duplicate votes for leader 1 value 9 from the same sender.
        let vote = (PartyId(2), GcMsg::Vote(PartyId(1), 9u64));
        let out = m.on_votes(&[vote.clone(), vote.clone(), vote]);
        // One vote < t + 1 = 2, so grade 0.
        assert_eq!(out[1].grade, Grade::Zero);
    }

    #[test]
    fn votes_below_threshold_grade_zero_between_grade_one() {
        let n = 4; // t = 1: grade 1 needs 2 votes, grade 2 needs 3.
        let mut m = ParallelGradecast::<u64>::new(PartyId(0), n, 1);
        let out = m.on_votes(&[
            (PartyId(1), GcMsg::Vote(PartyId(3), 7u64)),
            (PartyId(2), GcMsg::Vote(PartyId(3), 7u64)),
        ]);
        assert_eq!(out[3].grade, Grade::One);
        assert_eq!(out[3].value, Some(7));
    }

    #[test]
    #[should_panic(expected = "n > 3t")]
    fn rejects_too_many_faults() {
        let _ = ParallelGradecast::<u64>::new(PartyId(0), 6, 2);
    }

    #[test]
    fn first_lead_wins() {
        let n = 4;
        let mut m = ParallelGradecast::<u64>::new(PartyId(0), n, 1);
        let echoes = m.on_leads(&[(PartyId(1), GcMsg::Lead(5)), (PartyId(1), GcMsg::Lead(6))]);
        assert_eq!(echoes, vec![GcMsg::Echo(PartyId(1), 5)]);
    }
}
