//! Gradecast (graded broadcast): the three-round primitive underlying the
//! round-optimal real-valued AA protocol of Ben-Or, Dolev and Hoch, which
//! the paper uses as its `RealAA` building block.
//!
//! A designated *leader* disseminates a value; every party outputs a pair
//! `(value, grade)` with `grade ∈ {0, 1, 2}` such that, among honest
//! parties:
//!
//! 1. **Honest leader.** If the leader is honest with value `v`, every
//!    honest party outputs `(v, 2)`.
//! 2. **Binding.** If two honest parties output grades `≥ 1`, their values
//!    are equal.
//! 3. **Grade gap.** The grades of any two honest parties differ by at most
//!    one (in particular, `2` at one party excludes `0` at another).
//!
//! The construction is the classic lead/echo/vote pattern over a
//! synchronous network with `t < n/3` Byzantine parties:
//!
//! * **Round 1 (lead).** The leader broadcasts `lead(v)`.
//! * **Round 2 (echo).** Every party broadcasts `echo(ℓ, v)` for the value
//!   it received from leader `ℓ`.
//! * **Round 3 (vote).** A party that saw `n − t` matching echoes for `v`
//!   broadcasts `vote(ℓ, v)`. Output: the value with the most votes, with
//!   grade 2 at `≥ n − t` votes, grade 1 at `≥ t + 1`, grade 0 otherwise.
//!
//! All `n` instances (every party acting as leader once) run *in parallel*
//! inside the same three rounds — this is how `RealAA` uses them, via
//! [`ParallelGradecast`]. A standalone [`GradecastProtocol`] adapter runs
//! one parallel batch on a `sim-net` simulation for testing and message
//! accounting.
//!
//! # Muting
//!
//! [`ParallelGradecast::mute`] makes a party *stop relaying* (echoing and
//! voting) for a given leader while still evaluating that leader's grades
//! from other parties' traffic. Muting is how `RealAA` permanently
//! silences parties caught equivocating: once more than `t` honest parties
//! mute a leader, no value of that leader can gather the `n − t` echoes
//! needed for a single honest vote, so every honest party grades it 0
//! forever after.
//!
//! # Example
//!
//! ```
//! use gradecast::{Grade, GradecastProtocol};
//! use sim_net::{run_simulation, Passive, SimConfig};
//!
//! // Seven parties gradecast their ids in parallel; no corruption.
//! let cfg = SimConfig { n: 7, t: 2, max_rounds: 8 };
//! let report = run_simulation(
//!     cfg,
//!     |id, n| GradecastProtocol::new(id, n, 2, id.index() as u64),
//!     Passive,
//! ).unwrap();
//! for out in report.honest_outputs() {
//!     for (leader, slot) in out.iter().enumerate() {
//!         assert_eq!(slot.grade, Grade::Two);
//!         assert_eq!(slot.value, Some(leader as u64));
//!     }
//! }
//! ```

//!
//! # Scaling
//!
//! [`ParallelGradecast`] sends one `Echo`/`Vote` broadcast per instance —
//! O(n³) batch bytes per round once fan-out is counted. [`BatchGradecast`]
//! is the semantically equivalent scale path: one struct-of-arrays
//! broadcast per sender per phase (see the [`batch`] module docs), used by
//! `real-aa`'s batched party for n ∈ {1024, 4096} runs.

#![warn(missing_docs)]
pub mod batch;
pub mod bundle;
mod msg;
mod protocol;
mod state;

pub use batch::{BatchGradecast, BatchGradecastProtocol, GcBatchMsg, GcSlots, GcValue};
pub use bundle::{BundleError, BundleGradecast, GcBundleMsg};
pub use msg::GcMsg;
pub use protocol::GradecastProtocol;
pub use state::{Grade, GradecastOutput, ParallelGradecast};
