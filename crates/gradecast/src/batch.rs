//! Batched parallel gradecast: the subquadratic-bytes scale path.
//!
//! [`ParallelGradecast`](crate::ParallelGradecast) is faithful to the
//! textbook protocol but pays O(n³) batch bytes per round: every party
//! broadcasts one `Echo`/`Vote` message *per instance*, so n² broadcasts
//! fan out to n recipients each. This module keeps the protocol's
//! decisions bit-for-bit identical while flattening the encoding: each
//! party broadcasts **one** message per phase carrying a struct-of-arrays
//! view of all n instances — a presence bitmap (⌈n/8⌉ wire bytes) plus a
//! dense vector of per-leader entries — wrapped in an [`Arc`] so cloning
//! a batch out of an inbox never copies the arrays.
//!
//! Two levers cut the bytes:
//!
//! * **Shared framing.** The per-message tag + leader-id overhead (5 of
//!   the 13 bytes of a `GcMsg::<u64>::Echo`) is paid once per batch, not
//!   once per instance.
//! * **Votes by hash.** A vote batch carries a 4-byte hash per instance
//!   instead of the value. Soundness: a vote key can only reach grade
//!   relevance (> t votes) if some honest party voted it, which needs
//!   n − t matching echoes, of which ≥ n − 2t came from honest parties —
//!   and those honest echo broadcasts reached *every* party, so every
//!   honest receiver already holds the voted value in its echo tally
//!   with count ≥ n − 2t > t and can resolve the hash locally. Keys that
//!   resolve to nothing can never exceed t votes and grade `Zero` in
//!   both protocols. Resolution is exact when [`GcValue::bits64`] is
//!   injective and [`GcValue::hash32`] collision-free on the candidate
//!   set; a 32-bit collision between two tallied candidates degrades the
//!   argmax to collision-resistance (documented, not silent: both
//!   protocols still only ever output values some party echoed).
//!
//! The tallies themselves are struct-of-arrays (`u64` key per leader +
//! `u32` count per leader), so absorbing a full honest batch is one
//! [`aa_kernels::eq_count_u64`] sweep; divergent (Byzantine) slots fall
//! back to a per-slot path backed by a `BTreeMap` overflow table.

use std::collections::BTreeMap;
use std::sync::Arc;

use sim_net::{PartyId, Payload};

use crate::state::{Grade, GradecastOutput};

/// A value batched gradecast can tally in struct-of-arrays form.
///
/// `bits64` must be **injective** on the values a deployment actually
/// gradecasts: the batch tallies compare 64-bit keys, not values, so two
/// distinct values mapping to the same key would be merged. Both wire
/// types in this repository qualify exactly (`u64` is the identity,
/// `real-aa`'s `R64` uses the IEEE-754 bit pattern, injective on finite
/// reals).
pub trait GcValue: Clone + Ord + std::fmt::Debug {
    /// An injective 64-bit encoding of the value.
    fn bits64(&self) -> u64;

    /// The 32-bit key vote batches carry on the wire: a fixed avalanche
    /// mix of [`GcValue::bits64`] (splitmix64 finalizer, xor-folded).
    fn hash32(&self) -> u32 {
        let z = self.bits64().wrapping_add(0x9E37_79B9_7F4A_7C15);
        let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z >> 32) ^ z) as u32
    }
}

impl GcValue for u64 {
    fn bits64(&self) -> u64 {
        *self
    }
}

/// Wire bytes of an n-slot presence bitmap.
fn bitmap_bytes(n: usize) -> usize {
    n.div_ceil(8)
}

/// A struct-of-arrays view of per-leader slots: a presence bitmap plus
/// a dense vector of entries in leader order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GcSlots<T> {
    present: Vec<bool>,
    entries: Vec<T>,
}

impl<T> GcSlots<T> {
    /// Builds slots from a per-leader option vector.
    pub fn from_options(slots: Vec<Option<T>>) -> Self {
        let mut present = Vec::with_capacity(slots.len());
        let mut entries = Vec::new();
        for slot in slots {
            present.push(slot.is_some());
            if let Some(v) = slot {
                entries.push(v);
            }
        }
        GcSlots { present, entries }
    }

    /// Number of leader slots (present or not).
    pub fn n(&self) -> usize {
        self.present.len()
    }

    /// Whether every slot is present (the honest-path fast case).
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.present.len()
    }

    /// Iterates `(leader, entry)` over the present slots in leader order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.present
            .iter()
            .enumerate()
            .filter(|(_, &p)| p)
            .map(|(l, _)| l)
            .zip(self.entries.iter())
    }

    /// Whether `slot` is present. Out-of-range slots are absent.
    pub fn is_present(&self, slot: usize) -> bool {
        self.present.get(slot).copied().unwrap_or(false)
    }

    /// Wire bytes of the bitmap plus per-entry payloads as sized by `f`.
    /// Public so nested batch formats (the bundled wire in
    /// [`crate::bundle`]) can size inner slots recursively.
    pub fn wire_bytes_with(&self, f: impl Fn(&T) -> usize) -> usize {
        bitmap_bytes(self.n()) + self.entries.iter().map(f).sum::<usize>()
    }
}

/// A batched gradecast message: one broadcast per sender per phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GcBatchMsg<V> {
    /// Round 1: the leader's own value (identical to the unbatched wire).
    Lead(V),
    /// Round 2: this sender's echo for every leader it heard, as one
    /// `Arc`-shared struct-of-arrays batch.
    Echoes(Arc<GcSlots<V>>),
    /// Round 3: this sender's vote for every leader that reached the
    /// echo threshold — 4 bytes per instance ([`GcValue::hash32`]).
    Votes(Arc<GcSlots<u32>>),
}

impl<V: Payload> Payload for GcBatchMsg<V> {
    fn size_bytes(&self) -> usize {
        // Tag byte + batch body. Entry payloads are sized through their
        // own `Payload` impls, exactly like the unbatched messages, so
        // trace byte accounting reconciles without special cases.
        match self {
            GcBatchMsg::Lead(v) => 1 + v.size_bytes(),
            GcBatchMsg::Echoes(slots) => 1 + slots.wire_bytes_with(Payload::size_bytes),
            GcBatchMsg::Votes(slots) => 1 + slots.wire_bytes_with(|_| 4),
        }
    }
}

/// One batch of `n` parallel gradecast instances over the batched wire
/// format — the drop-in scale-path replacement for
/// [`ParallelGradecast`](crate::ParallelGradecast), with the same phase
/// API, muting semantics, thresholds, and deterministic argmax, verified
/// equivalent by the tests in this module.
#[derive(Clone, Debug)]
pub struct BatchGradecast<V> {
    me: PartyId,
    n: usize,
    t: usize,
    muted: Vec<bool>,
    /// Per leader: the lead value received (first lead wins).
    leads: Vec<Option<V>>,

    /// Per sender: whether an echo batch was already absorbed.
    echo_from: Vec<bool>,
    /// Per leader: whether an echo candidate exists (`echo_cnt` and
    /// `echo_bits` are meaningful only where this is set).
    echo_set: Vec<bool>,
    /// Leaders still without a candidate (fast path requires 0).
    echo_missing: usize,
    /// Per leader: `bits64` of the first value echoed for it.
    echo_bits: Vec<u64>,
    /// Per leader: distinct-sender echo count for the first value.
    echo_cnt: Vec<u32>,
    /// Per leader: the first value echoed for it.
    echo_val: Vec<Option<V>>,
    /// Rare path: `(leader, bits64)` → (value, count) for second and
    /// further distinct values — only Byzantine equivocation lands here.
    echo_overflow: BTreeMap<(usize, u64), (V, u32)>,

    /// Per sender: whether a vote batch was already absorbed.
    vote_from: Vec<bool>,
    /// Per leader: whether a vote candidate hash exists.
    vote_set: Vec<bool>,
    /// Leaders still without a vote candidate.
    vote_missing: usize,
    /// Per leader: the first vote hash seen (widened for the kernel).
    vote_bits: Vec<u64>,
    /// Per leader: distinct-sender vote count for the first hash.
    vote_cnt: Vec<u32>,
    /// Rare path: `(leader, hash)` → count for further distinct hashes.
    vote_overflow: BTreeMap<(usize, u32), u32>,

    /// Reused per-batch key buffer for the kernel sweep.
    scratch: Vec<u64>,
}

impl<V: GcValue> BatchGradecast<V> {
    /// Creates a batch for party `me` out of `n` with corruption bound
    /// `t`, with no leaders muted.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3t` and `me < n`, as
    /// [`ParallelGradecast::new`](crate::ParallelGradecast::new).
    pub fn new(me: PartyId, n: usize, t: usize) -> Self {
        Self::with_muted(me, n, t, vec![false; n])
    }

    /// Creates a batch with an initial muted set (carried over between
    /// `RealAA` iterations).
    ///
    /// # Panics
    ///
    /// As [`BatchGradecast::new`]; additionally requires
    /// `muted.len() == n`.
    pub fn with_muted(me: PartyId, n: usize, t: usize, muted: Vec<bool>) -> Self {
        assert!(n > 3 * t, "gradecast requires n > 3t (n = {n}, t = {t})");
        assert!(me.index() < n, "party id out of range");
        assert_eq!(muted.len(), n, "muted set must cover all parties");
        BatchGradecast {
            me,
            n,
            t,
            muted,
            leads: vec![None; n],
            echo_from: vec![false; n],
            echo_set: vec![false; n],
            echo_missing: n,
            echo_bits: vec![0; n],
            echo_cnt: vec![0; n],
            echo_val: vec![None; n],
            echo_overflow: BTreeMap::new(),
            vote_from: vec![false; n],
            vote_set: vec![false; n],
            vote_missing: n,
            vote_bits: vec![0; n],
            vote_cnt: vec![0; n],
            vote_overflow: BTreeMap::new(),
            scratch: Vec::new(),
        }
    }

    /// Resets every tally to the freshly-constructed state with a new
    /// muted set, reusing the existing buffers. Equivalent to
    /// `*self = BatchGradecast::with_muted(me, n, t, muted.to_vec())`
    /// without the thirteen heap allocations — the lever that lets a
    /// bundle of many instances recycle its cores every iteration.
    ///
    /// # Panics
    ///
    /// Panics unless `muted.len() == n`.
    pub fn reset_with_muted(&mut self, muted: &[bool]) {
        assert_eq!(muted.len(), self.n, "muted set must cover all parties");
        self.muted.copy_from_slice(muted);
        self.leads.fill(None);
        self.echo_from.fill(false);
        self.echo_set.fill(false);
        self.echo_missing = self.n;
        self.echo_bits.fill(0);
        self.echo_cnt.fill(0);
        self.echo_val.fill(None);
        self.echo_overflow.clear();
        self.vote_from.fill(false);
        self.vote_set.fill(false);
        self.vote_missing = self.n;
        self.vote_bits.fill(0);
        self.vote_cnt.fill(0);
        self.vote_overflow.clear();
    }

    /// This party's id.
    pub fn me(&self) -> PartyId {
        self.me
    }

    /// Number of parties.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Corruption bound.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Stops relaying for `leader`.
    pub fn mute(&mut self, leader: PartyId) {
        self.muted[leader.index()] = true;
    }

    /// Whether `leader` is muted here.
    pub fn is_muted(&self, leader: PartyId) -> bool {
        self.muted[leader.index()]
    }

    /// The muted set, for carrying into the next batch.
    pub fn muted(&self) -> &[bool] {
        &self.muted
    }

    /// Phase 1: the message this party broadcasts as leader of its own
    /// instance.
    pub fn lead_msg(&self, value: V) -> GcBatchMsg<V> {
        GcBatchMsg::Lead(value)
    }

    /// Phase 2: consume round-1 leads, return the echo batch to
    /// broadcast. Leads from muted leaders are ignored and get no slot.
    pub fn on_leads<'a, I>(&mut self, inbox: I) -> GcBatchMsg<V>
    where
        I: IntoIterator<Item = (PartyId, &'a GcBatchMsg<V>)>,
        V: 'a,
    {
        for (from, msg) in inbox {
            if let GcBatchMsg::Lead(v) = msg {
                self.absorb_lead(from, v);
            }
        }
        GcBatchMsg::Echoes(Arc::new(self.echo_slots()))
    }

    /// Absorbs one round-1 lead from `from` (first lead per leader wins;
    /// muted leaders are ignored). The absorb half of
    /// [`BatchGradecast::on_leads`], public so the bundled wire in
    /// [`crate::bundle`] can feed many instances from one message.
    pub fn absorb_lead(&mut self, from: PartyId, v: &V) {
        let leader = from.index();
        if !self.muted[leader] && self.leads[leader].is_none() {
            self.leads[leader] = Some(v.clone());
        }
    }

    /// The echo slots this party would broadcast after absorbing leads:
    /// the produce half of [`BatchGradecast::on_leads`].
    pub fn echo_slots(&self) -> GcSlots<V> {
        let mut present = Vec::with_capacity(self.n);
        let mut entries = Vec::with_capacity(self.n);
        for lead in &self.leads {
            present.push(lead.is_some());
            if let Some(v) = lead {
                entries.push(v.clone());
            }
        }
        GcSlots { present, entries }
    }

    /// Phase 3: consume round-2 echo batches, return the vote batch to
    /// broadcast. A vote slot for leader `ℓ` is present iff `n − t`
    /// distinct parties echoed one value for `ℓ` and `ℓ` is not muted.
    pub fn on_echoes<'a, I>(&mut self, inbox: I) -> GcBatchMsg<V>
    where
        I: IntoIterator<Item = (PartyId, &'a GcBatchMsg<V>)>,
        V: 'a,
    {
        for (from, msg) in inbox {
            if let GcBatchMsg::Echoes(slots) = msg {
                self.absorb_echo_slots(from, slots);
            }
        }
        GcBatchMsg::Votes(Arc::new(self.vote_slots()))
    }

    /// The vote slots this party would broadcast after absorbing echoes:
    /// the produce half of [`BatchGradecast::on_echoes`].
    pub fn vote_slots(&self) -> GcSlots<u32> {
        let mut present = Vec::with_capacity(self.n);
        let mut entries = Vec::with_capacity(self.n);
        for l in 0..self.n {
            if self.muted[l] {
                present.push(false);
                continue;
            }
            // At most one value can reach n − t distinct echoes (two
            // would need 2(n − t) > n senders), so checking the first
            // candidate then the overflow table is order-independent.
            let vote = if self.echo_set[l] && self.echo_cnt[l] as usize >= self.n - self.t {
                Some(
                    self.echo_val[l]
                        .as_ref()
                        .expect("set implies value")
                        .hash32(),
                )
            } else {
                self.echo_overflow
                    .range((l, 0)..=(l, u64::MAX))
                    .find(|(_, (_, c))| *c as usize >= self.n - self.t)
                    .map(|(_, (v, _))| v.hash32())
            };
            present.push(vote.is_some());
            if let Some(h) = vote {
                entries.push(h);
            }
        }
        GcSlots { present, entries }
    }

    /// Phase 4: consume round-3 vote batches and produce the output for
    /// every leader (muted ones too — muting suppresses relaying, not
    /// evaluation, exactly as in the unbatched machine).
    pub fn on_votes<'a, I>(&mut self, inbox: I) -> Vec<GradecastOutput<V>>
    where
        I: IntoIterator<Item = (PartyId, &'a GcBatchMsg<V>)>,
        V: 'a,
    {
        for (from, msg) in inbox {
            if let GcBatchMsg::Votes(slots) = msg {
                self.absorb_vote_slots(from, slots);
            }
        }
        self.grade_all()
    }

    /// Grades every leader: the produce half of
    /// [`BatchGradecast::on_votes`].
    pub fn grade_all(&self) -> Vec<GradecastOutput<V>> {
        (0..self.n).map(|l| self.grade_leader(l)).collect()
    }

    /// [`BatchGradecast::grade_all`] into a caller-owned buffer
    /// (cleared first), so a bundle grading many instances per round
    /// allocates nothing.
    pub fn grade_into(&self, out: &mut Vec<GradecastOutput<V>>) {
        out.clear();
        out.extend((0..self.n).map(|l| self.grade_leader(l)));
    }

    /// Folds one sender's echo batch into the per-leader tallies: a
    /// single kernel sweep when the batch is full and every leader
    /// already has a candidate key, per-slot otherwise. The absorb half
    /// of [`BatchGradecast::on_echoes`]; duplicate batches from the same
    /// sender are ignored.
    pub fn absorb_echo_slots(&mut self, sender: PartyId, slots: &GcSlots<V>) {
        self.absorb_echoes(sender.index(), slots);
    }

    fn absorb_echoes(&mut self, sender: usize, slots: &GcSlots<V>) {
        if slots.n() != self.n || self.echo_from[sender] {
            return;
        }
        self.echo_from[sender] = true;
        if slots.is_full() && self.echo_missing == 0 {
            self.scratch.clear();
            self.scratch.extend(slots.iter().map(|(_, v)| v.bits64()));
            let mismatches =
                aa_kernels::eq_count_u64(&self.scratch, &self.echo_bits, &mut self.echo_cnt);
            if mismatches > 0 {
                // Rare (Byzantine) path: find the divergent slots and
                // route them through the overflow table. The kernel
                // already counted the matching slots.
                for (l, v) in slots.iter() {
                    if v.bits64() != self.echo_bits[l] {
                        self.bump_echo_overflow(l, v);
                    }
                }
            }
            return;
        }
        for (l, v) in slots.iter() {
            let bits = v.bits64();
            if !self.echo_set[l] {
                self.echo_set[l] = true;
                self.echo_missing -= 1;
                self.echo_bits[l] = bits;
                self.echo_cnt[l] = 1;
                self.echo_val[l] = Some(v.clone());
            } else if self.echo_bits[l] == bits {
                self.echo_cnt[l] += 1;
            } else {
                self.bump_echo_overflow(l, v);
            }
        }
    }

    fn bump_echo_overflow(&mut self, leader: usize, v: &V) {
        self.echo_overflow
            .entry((leader, v.bits64()))
            .or_insert_with(|| (v.clone(), 0))
            .1 += 1;
    }

    /// Folds one sender's vote batch into the per-leader hash tallies,
    /// mirroring [`BatchGradecast::absorb_echo_slots`]. The absorb half
    /// of [`BatchGradecast::on_votes`].
    pub fn absorb_vote_slots(&mut self, sender: PartyId, slots: &GcSlots<u32>) {
        self.absorb_votes(sender.index(), slots);
    }

    fn absorb_votes(&mut self, sender: usize, slots: &GcSlots<u32>) {
        if slots.n() != self.n || self.vote_from[sender] {
            return;
        }
        self.vote_from[sender] = true;
        if slots.is_full() && self.vote_missing == 0 {
            self.scratch.clear();
            self.scratch
                .extend(slots.iter().map(|(_, &h)| u64::from(h)));
            let mismatches =
                aa_kernels::eq_count_u64(&self.scratch, &self.vote_bits, &mut self.vote_cnt);
            if mismatches > 0 {
                for (l, &h) in slots.iter() {
                    if u64::from(h) != self.vote_bits[l] {
                        *self.vote_overflow.entry((l, h)).or_insert(0) += 1;
                    }
                }
            }
            return;
        }
        for (l, &h) in slots.iter() {
            if !self.vote_set[l] {
                self.vote_set[l] = true;
                self.vote_missing -= 1;
                self.vote_bits[l] = u64::from(h);
                self.vote_cnt[l] = 1;
            } else if self.vote_bits[l] == u64::from(h) {
                self.vote_cnt[l] += 1;
            } else {
                *self.vote_overflow.entry((l, h)).or_insert(0) += 1;
            }
        }
    }

    /// Resolves a vote hash for `leader` to the value it binds: among
    /// the echo-tallied candidates matching the hash, the one with the
    /// highest echo count (smallest value on ties — deterministic, and
    /// the > t-echo dominance argument in the module docs makes the
    /// count tie unreachable for grade-relevant keys).
    fn resolve_hash(&self, leader: usize, hash: u32) -> Option<(V, u32)> {
        let mut best: Option<(V, u32)> = None;
        let cand = self.echo_set[leader].then(|| {
            (
                self.echo_val[leader].clone().expect("set implies value"),
                self.echo_cnt[leader],
            )
        });
        let overflow = self
            .echo_overflow
            .range((leader, 0)..=(leader, u64::MAX))
            .map(|(_, (v, c))| (v.clone(), *c));
        for (v, c) in cand.into_iter().chain(overflow) {
            if v.hash32() != hash {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bv, bc)) => c > *bc || (c == *bc && v < *bv),
            };
            if better {
                best = Some((v, c));
            }
        }
        best
    }

    /// Applies the unbatched machine's exact grading rule to `leader`'s
    /// resolved vote tally.
    fn grade_leader(&self, leader: usize) -> GradecastOutput<V> {
        // Gather (hash, count) pairs, resolve each to a value, then run
        // the reference argmax (max count, smallest value on ties).
        // Unresolvable hashes carry ≤ t votes (see module docs) and
        // cannot influence the outcome, so dropping them is exact.
        let first =
            self.vote_set[leader].then(|| (self.vote_bits[leader] as u32, self.vote_cnt[leader]));
        let overflow = self
            .vote_overflow
            .range((leader, 0)..=(leader, u32::MAX))
            .map(|(&(_, h), &c)| (h, c));
        let mut best: Option<(V, u32)> = None;
        for (hash, count) in first.into_iter().chain(overflow) {
            let Some((value, _)) = self.resolve_hash(leader, hash) else {
                continue;
            };
            let better = match &best {
                None => true,
                Some((bv, bc)) => count > *bc || (count == *bc && value < *bv),
            };
            if better {
                best = Some((value, count));
            }
        }
        match best {
            Some((v, c)) if c as usize >= self.n - self.t => GradecastOutput {
                value: Some(v),
                grade: Grade::Two,
            },
            Some((v, c)) if c as usize > self.t => GradecastOutput {
                value: Some(v),
                grade: Grade::One,
            },
            _ => GradecastOutput {
                value: None,
                grade: Grade::Zero,
            },
        }
    }
}

/// A `sim-net` protocol adapter running one batched parallel gradecast —
/// the scale-path counterpart of
/// [`GradecastProtocol`](crate::GradecastProtocol), with the same round
/// structure, outputs, and `gc.grade` trace events.
#[derive(Clone, Debug)]
pub struct BatchGradecastProtocol<V> {
    value: V,
    gc: BatchGradecast<V>,
    output: Option<Vec<GradecastOutput<V>>>,
}

impl<V: GcValue> BatchGradecastProtocol<V> {
    /// Creates the party state machine for `me` with input `value`.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3t` (see [`BatchGradecast::new`]).
    pub fn new(me: PartyId, n: usize, t: usize, value: V) -> Self {
        BatchGradecastProtocol {
            value,
            gc: BatchGradecast::new(me, n, t),
            output: None,
        }
    }

    /// Mutes `leader` before the run starts.
    pub fn mute(&mut self, leader: PartyId) {
        self.gc.mute(leader);
    }
}

impl<V> sim_net::Protocol for BatchGradecastProtocol<V>
where
    V: GcValue + Send + Sync,
    GcBatchMsg<V>: Payload,
{
    type Msg = GcBatchMsg<V>;
    type Output = Vec<GradecastOutput<V>>;

    fn step(
        &mut self,
        round: u32,
        inbox: &sim_net::Inbox<Self::Msg>,
        ctx: &mut sim_net::RoundCtx<Self::Msg>,
    ) {
        // Batches arrive `Arc`-shared, so feeding the state machine by
        // reference out of the inbox copies nothing.
        let received = || inbox.iter().map(|e| (e.from, &e.payload));
        match round {
            1 => ctx.broadcast(self.gc.lead_msg(self.value.clone())),
            2 => {
                let batch = self.gc.on_leads(received());
                ctx.broadcast(batch);
            }
            3 => {
                let batch = self.gc.on_echoes(received());
                ctx.broadcast(batch);
            }
            4 => {
                let outputs = self.gc.on_votes(received());
                for (leader, slot) in outputs.iter().enumerate() {
                    ctx.emit_with(|| {
                        let mut ev = sim_net::ProtoEvent::new("gc.grade")
                            .u64("leader", leader as u64)
                            .u64("grade", u64::from(slot.grade.as_u8()));
                        if let Some(v) = &slot.value {
                            ev = ev.str("value", &format!("{v:?}"));
                        }
                        ev
                    });
                }
                self.output = Some(outputs);
            }
            _ => {}
        }
    }

    fn output(&self) -> Option<Self::Output> {
        self.output.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::GcMsg;
    use crate::state::ParallelGradecast;

    /// Drives `n` machines of both implementations through identical
    /// scenarios (scripted per-recipient leads for equivocation, per-party
    /// silence for crashes) and asserts every output is equal.
    struct Scenario {
        n: usize,
        t: usize,
        /// `lead[sender][recipient]`: the lead value `recipient` receives
        /// from `sender` (None = silent toward that recipient).
        leads: Vec<Vec<Option<u64>>>,
        /// Parties that never send echoes/votes.
        silent: Vec<bool>,
        /// Leaders muted at every party.
        muted: Vec<bool>,
    }

    fn run_reference(s: &Scenario) -> Vec<Vec<GradecastOutput<u64>>> {
        let mut ms: Vec<ParallelGradecast<u64>> = (0..s.n)
            .map(|i| ParallelGradecast::with_muted(PartyId(i), s.n, s.t, s.muted.clone()))
            .collect();
        // Echoes/votes are broadcast, so every recipient sees one shared
        // list.
        let mut echoes: Vec<(PartyId, GcMsg<u64>)> = Vec::new();
        for (r, m) in ms.iter_mut().enumerate() {
            let inbox: Vec<(PartyId, GcMsg<u64>)> = (0..s.n)
                .filter_map(|snd| s.leads[snd][r].map(|v| (PartyId(snd), GcMsg::Lead(v))))
                .collect();
            let out = m.on_leads(&inbox);
            if !s.silent[r] {
                echoes.extend(out.into_iter().map(|msg| (PartyId(r), msg)));
            }
        }
        let mut votes: Vec<(PartyId, GcMsg<u64>)> = Vec::new();
        for (r, m) in ms.iter_mut().enumerate() {
            let out = m.on_echoes(&echoes);
            if !s.silent[r] {
                votes.extend(out.into_iter().map(|msg| (PartyId(r), msg)));
            }
        }
        ms.iter_mut().map(|m| m.on_votes(&votes)).collect()
    }

    fn run_batched(s: &Scenario) -> Vec<Vec<GradecastOutput<u64>>> {
        let mut ms: Vec<BatchGradecast<u64>> = (0..s.n)
            .map(|i| BatchGradecast::with_muted(PartyId(i), s.n, s.t, s.muted.clone()))
            .collect();
        let mut echo_batches: Vec<(PartyId, GcBatchMsg<u64>)> = Vec::new();
        for (r, m) in ms.iter_mut().enumerate() {
            let inbox: Vec<(PartyId, GcBatchMsg<u64>)> = (0..s.n)
                .filter_map(|snd| s.leads[snd][r].map(|v| (PartyId(snd), GcBatchMsg::Lead(v))))
                .collect();
            let batch = m.on_leads(inbox.iter().map(|(p, msg)| (*p, msg)));
            if !s.silent[r] {
                echo_batches.push((PartyId(r), batch));
            }
        }
        let mut vote_batches: Vec<(PartyId, GcBatchMsg<u64>)> = Vec::new();
        for (r, m) in ms.iter_mut().enumerate() {
            let batch = m.on_echoes(echo_batches.iter().map(|(p, msg)| (*p, msg)));
            if !s.silent[r] {
                vote_batches.push((PartyId(r), batch));
            }
        }
        ms.iter_mut()
            .map(|m| m.on_votes(vote_batches.iter().map(|(p, msg)| (*p, msg))))
            .collect()
    }

    fn assert_equivalent(s: &Scenario) {
        let reference = run_reference(s);
        let batched = run_batched(s);
        assert_eq!(reference, batched);
    }

    fn honest_leads(n: usize) -> Vec<Vec<Option<u64>>> {
        (0..n).map(|snd| vec![Some(100 + snd as u64); n]).collect()
    }

    #[test]
    fn equivalent_all_honest() {
        let n = 7;
        let s = Scenario {
            n,
            t: 2,
            leads: honest_leads(n),
            silent: vec![false; n],
            muted: vec![false; n],
        };
        assert_equivalent(&s);
        for out in run_batched(&s) {
            for (l, slot) in out.iter().enumerate() {
                assert_eq!(slot.grade, Grade::Two);
                assert_eq!(slot.value, Some(100 + l as u64));
            }
        }
    }

    #[test]
    fn equivalent_with_crashed_parties() {
        let n = 7;
        let mut leads = honest_leads(n);
        // Party 3 crashed before leading; party 5 led but stays silent
        // afterwards.
        for slot in leads[3].iter_mut() {
            *slot = None;
        }
        let mut silent = vec![false; n];
        silent[3] = true;
        silent[5] = true;
        let s = Scenario {
            n,
            t: 2,
            leads,
            silent,
            muted: vec![false; n],
        };
        assert_equivalent(&s);
    }

    #[test]
    fn equivalent_with_equivocating_leader() {
        let n = 7;
        let mut leads = honest_leads(n);
        // Leader 0 equivocates: 111 to the first half, 222 to the rest.
        for (r, slot) in leads[0].iter_mut().enumerate() {
            *slot = Some(if r <= n / 2 { 111 } else { 222 });
        }
        let s = Scenario {
            n,
            t: 2,
            leads,
            silent: vec![false; n],
            muted: vec![false; n],
        };
        assert_equivalent(&s);
        // And the binding property holds on the batched side.
        let outs = run_batched(&s);
        let mut bound = None;
        for out in &outs {
            if out[0].accepted() {
                let v = out[0].value.unwrap();
                assert_eq!(*bound.get_or_insert(v), v);
            }
        }
    }

    #[test]
    fn equivalent_with_muted_leader() {
        let n = 7;
        let mut muted = vec![false; n];
        muted[2] = true;
        let s = Scenario {
            n,
            t: 2,
            leads: honest_leads(n),
            silent: vec![false; n],
            muted,
        };
        assert_equivalent(&s);
        for out in run_batched(&s) {
            assert_eq!(out[2].grade, Grade::Zero);
        }
    }

    #[test]
    fn duplicate_batches_from_same_sender_count_once() {
        let n = 4;
        let mut m = BatchGradecast::<u64>::new(PartyId(0), n, 1);
        let votes = GcBatchMsg::Votes(Arc::new(GcSlots::from_options(vec![
            None,
            Some(9u64.hash32()),
            None,
            None,
        ])));
        let out = m.on_votes([
            (PartyId(2), &votes),
            (PartyId(2), &votes),
            (PartyId(2), &votes),
        ]);
        // One distinct vote < t + 1, so grade 0 (and the hash resolves to
        // nothing anyway without echoes — either way Zero, like the
        // reference).
        assert_eq!(out[1].grade, Grade::Zero);
    }

    #[test]
    fn batch_bytes_beat_unbatched_by_2x_at_n1024() {
        // The acceptance-criterion ratio, computed from the same
        // `Payload::size_bytes` accounting the engine traces: per sender
        // and per batch, unbatched gradecast broadcasts n echoes + n
        // votes of 13 bytes each, the batched wire sends one echo batch
        // and one vote batch.
        let n = 1024usize;
        let unbatched_echo: usize = (0..n)
            .map(|l| GcMsg::Echo(PartyId(l), 7u64).size_bytes())
            .sum();
        let unbatched_vote: usize = (0..n)
            .map(|l| GcMsg::Vote(PartyId(l), 7u64).size_bytes())
            .sum();
        let echo_batch = GcBatchMsg::Echoes(Arc::new(GcSlots::from_options(
            (0..n).map(|_| Some(7u64)).collect(),
        )))
        .size_bytes();
        let vote_batch = GcBatchMsg::<u64>::Votes(Arc::new(GcSlots::from_options(
            (0..n).map(|_| Some(7u64.hash32())).collect(),
        )))
        .size_bytes();
        let unbatched = unbatched_echo + unbatched_vote;
        let batched = echo_batch + vote_batch;
        assert!(
            unbatched >= 2 * batched,
            "expected ≥ 2x byte reduction, got {unbatched} vs {batched}"
        );
    }

    #[test]
    fn slot_sizes_account_bitmap_and_entries() {
        // 10 slots, 3 present u64 entries: 2 bitmap bytes + 3 × 8.
        let mut slots = vec![None; 10];
        slots[1] = Some(1u64);
        slots[4] = Some(2u64);
        slots[9] = Some(3u64);
        let msg = GcBatchMsg::Echoes(Arc::new(GcSlots::from_options(slots)));
        assert_eq!(msg.size_bytes(), 1 + 2 + 24);
    }

    #[test]
    fn hash32_is_stable_and_spread() {
        // Pin the mixer so recorded traces stay replayable: a silent
        // change to `hash32` would alter vote-batch contents.
        assert_eq!(0u64.hash32(), 0x5d7c_35e6);
        assert_eq!(1u64.hash32(), 0x3a1c_2af7);
        assert_ne!(1u64.hash32(), 2u64.hash32());
    }
}
