//! A `sim-net` protocol adapter running one parallel gradecast batch.

use sim_net::{Inbox, PartyId, Payload, ProtoEvent, Protocol, RoundCtx};

use crate::msg::GcMsg;
use crate::state::{GradecastOutput, ParallelGradecast};

/// Runs a single batch of `n` parallel gradecasts on a simulation: every
/// party leads one instance with its input value and outputs the vector of
/// per-leader `(value, grade)` results after 3 communication rounds.
///
/// Primarily a test and measurement harness for the primitive; `RealAA`
/// embeds [`ParallelGradecast`] directly to pipeline iterations.
#[derive(Clone, Debug)]
pub struct GradecastProtocol<V> {
    value: V,
    gc: ParallelGradecast<V>,
    output: Option<Vec<GradecastOutput<V>>>,
}

impl<V: Clone + Ord + std::fmt::Debug> GradecastProtocol<V> {
    /// Creates the party state machine for `me` with input `value`.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3t` (see [`ParallelGradecast::new`]).
    pub fn new(me: PartyId, n: usize, t: usize, value: V) -> Self {
        GradecastProtocol {
            value,
            gc: ParallelGradecast::new(me, n, t),
            output: None,
        }
    }

    /// Mutes `leader` before the run starts (for tests exercising relay
    /// muting).
    pub fn mute(&mut self, leader: PartyId) {
        self.gc.mute(leader);
    }
}

fn to_pairs<V: Clone>(inbox: &Inbox<GcMsg<V>>) -> Vec<(PartyId, GcMsg<V>)> {
    inbox.iter().map(|e| (e.from, e.payload.clone())).collect()
}

impl<V> Protocol for GradecastProtocol<V>
where
    V: Clone + Ord + std::fmt::Debug,
    GcMsg<V>: Payload,
{
    type Msg = GcMsg<V>;
    type Output = Vec<GradecastOutput<V>>;

    fn step(&mut self, round: u32, inbox: &Inbox<Self::Msg>, ctx: &mut RoundCtx<Self::Msg>) {
        match round {
            1 => {
                for m in self.gc.lead_msgs(self.value.clone()) {
                    ctx.broadcast(m);
                }
            }
            2 => {
                for m in self.gc.on_leads(&to_pairs(inbox)) {
                    ctx.broadcast(m);
                }
            }
            3 => {
                for m in self.gc.on_echoes(&to_pairs(inbox)) {
                    ctx.broadcast(m);
                }
            }
            4 => {
                let outputs = self.gc.on_votes(&to_pairs(inbox));
                for (leader, slot) in outputs.iter().enumerate() {
                    ctx.emit_with(|| {
                        let mut ev = ProtoEvent::new("gc.grade")
                            .u64("leader", leader as u64)
                            .u64("grade", u64::from(slot.grade.as_u8()));
                        if let Some(v) = &slot.value {
                            ev = ev.str("value", &format!("{v:?}"));
                        }
                        ev
                    });
                }
                self.output = Some(outputs);
            }
            _ => {}
        }
    }

    fn output(&self) -> Option<Self::Output> {
        self.output.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Grade;
    use sim_net::{run_simulation, AdversaryCtx, Passive, SimConfig, StaticByzantine};

    #[test]
    fn honest_run_three_communication_rounds() {
        let cfg = SimConfig {
            n: 4,
            t: 1,
            max_rounds: 10,
        };
        let report = run_simulation(
            cfg,
            |id, n| GradecastProtocol::new(id, n, 1, id.index() as u64),
            Passive,
        )
        .unwrap();
        assert_eq!(report.communication_rounds(), 3);
        for out in report.honest_outputs() {
            for (l, slot) in out.iter().enumerate() {
                assert_eq!(slot.grade, Grade::Two);
                assert_eq!(slot.value, Some(l as u64));
            }
        }
    }

    #[test]
    fn silent_byzantine_leader_grades_zero() {
        let cfg = SimConfig {
            n: 4,
            t: 1,
            max_rounds: 10,
        };
        let adv = StaticByzantine {
            parties: vec![PartyId(0)],
            behave: |_: &mut AdversaryCtx<'_, GcMsg<u64>>| {},
        };
        let report = run_simulation(
            cfg,
            |id, n| GradecastProtocol::new(id, n, 1, id.index() as u64),
            adv,
        )
        .unwrap();
        for out in report.honest_outputs() {
            assert_eq!(out[0].grade, Grade::Zero);
            assert_eq!(out[0].value, None);
            for slot in &out[1..] {
                assert_eq!(slot.grade, Grade::Two);
            }
        }
    }

    #[test]
    fn equivocating_leader_cannot_bind_two_values() {
        // Leader 0 sends value 111 to parties 1,2 and 222 to party 3.
        let cfg = SimConfig {
            n: 7,
            t: 2,
            max_rounds: 10,
        };
        let adv = StaticByzantine {
            parties: vec![PartyId(0)],
            behave: |ctx: &mut AdversaryCtx<'_, GcMsg<u64>>| {
                if ctx.round() == 1 {
                    for i in 1..=3 {
                        ctx.send(PartyId(0), PartyId(i), GcMsg::Lead(111));
                    }
                    for i in 4..7 {
                        ctx.send(PartyId(0), PartyId(i), GcMsg::Lead(222));
                    }
                }
            },
        };
        let report = run_simulation(
            cfg,
            |id, n| GradecastProtocol::new(id, n, 2, id.index() as u64),
            adv,
        )
        .unwrap();
        // Binding: all honest grades >= 1 share one value; grades differ by
        // at most 1.
        let outs = report.honest_outputs();
        let mut bound: Option<u64> = None;
        let mut grades = Vec::new();
        for out in &outs {
            let slot = &out[0];
            grades.push(slot.grade.as_u8());
            if slot.accepted() {
                let v = slot.value.expect("accepted implies a value");
                if let Some(b) = bound {
                    assert_eq!(b, v, "two honest parties bound different values");
                } else {
                    bound = Some(v);
                }
            }
        }
        let (min, max) = (grades.iter().min().unwrap(), grades.iter().max().unwrap());
        assert!(max - min <= 1, "grade gap violated: {grades:?}");
    }
}
