//! Property tests: the three gradecast guarantees hold under arbitrary
//! (randomized) Byzantine behaviour by up to `t` statically corrupted
//! parties.

use gradecast::{GcMsg, Grade, GradecastProtocol};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sim_net::{run_simulation, AdversaryCtx, PartyId, Payload, ScriptedAdversary, SimConfig};

/// A chaos adversary: statically corrupts `bad` parties; every round each
/// corrupted party sprays random gradecast messages (random kinds, leader
/// tags, values, recipients).
fn chaos<V>(
    bad: Vec<PartyId>,
    seed: u64,
    values: Vec<V>,
) -> impl FnMut(&mut AdversaryCtx<'_, GcMsg<V>>)
where
    V: Payload + Ord,
{
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    move |ctx| {
        if ctx.round() == 1 {
            for &p in &bad {
                ctx.corrupt(p).expect("within budget");
            }
        }
        let n = ctx.n();
        for &p in &bad {
            let burst = rng.gen_range(0..2 * n);
            for _ in 0..burst {
                let to = PartyId(rng.gen_range(0..n));
                let v = values[rng.gen_range(0..values.len())].clone();
                let leader = PartyId(rng.gen_range(0..n));
                let msg = match rng.gen_range(0..3) {
                    0 => GcMsg::Lead(v),
                    1 => GcMsg::Echo(leader, v),
                    _ => GcMsg::Vote(leader, v),
                };
                ctx.send(p, to, msg);
            }
        }
    }
}

fn check_gradecast_properties(n: usize, t: usize, num_bad: usize, seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
    // Pick corrupted set.
    let mut ids: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    let bad: Vec<PartyId> = ids[..num_bad].iter().map(|&i| PartyId(i)).collect();
    let is_bad = |i: usize| bad.iter().any(|b| b.index() == i);

    let cfg = SimConfig {
        n,
        t,
        max_rounds: 10,
    };
    let adv = ScriptedAdversary(chaos(bad.clone(), seed, (0u64..5).collect()));
    let inputs: Vec<u64> = (0..n).map(|i| 100 + i as u64).collect();
    let report = run_simulation(
        cfg,
        |id, nn| GradecastProtocol::new(id, nn, t, inputs[id.index()]),
        adv,
    )
    .unwrap();

    let honest_outs: Vec<_> = (0..n)
        .filter(|&i| !is_bad(i))
        .map(|i| (i, report.outputs[i].clone().expect("honest output")))
        .collect();

    for leader in 0..n {
        // Property 1: honest leader -> everyone grades (v, 2).
        if !is_bad(leader) {
            for (_, out) in &honest_outs {
                assert_eq!(out[leader].grade, Grade::Two, "honest leader {leader}");
                assert_eq!(out[leader].value, Some(inputs[leader]));
            }
            continue;
        }
        // Property 2: binding among grades >= 1.
        let mut bound: Option<u64> = None;
        for (_, out) in &honest_outs {
            if out[leader].accepted() {
                let v = out[leader].value.expect("accepted implies value");
                match bound {
                    Some(b) => assert_eq!(b, v, "binding violated for leader {leader}"),
                    None => bound = Some(v),
                }
            }
        }
        // Property 3: grade gap <= 1.
        let grades: Vec<u8> = honest_outs
            .iter()
            .map(|(_, o)| o[leader].grade.as_u8())
            .collect();
        let (lo, hi) = (grades.iter().min().unwrap(), grades.iter().max().unwrap());
        assert!(
            hi - lo <= 1,
            "grade gap violated for leader {leader}: {grades:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn properties_hold_under_chaos_n4(seed in any::<u64>()) {
        check_gradecast_properties(4, 1, 1, seed);
    }

    #[test]
    fn properties_hold_under_chaos_n7(seed in any::<u64>(), bad in 0usize..=2) {
        check_gradecast_properties(7, 2, bad, seed);
    }

    #[test]
    fn properties_hold_under_chaos_n10(seed in any::<u64>(), bad in 0usize..=3) {
        check_gradecast_properties(10, 3, bad, seed);
    }
}

/// A targeted (non-random) split adversary engineering a {0,1} grade split:
/// it leads value 7 to just enough parties that, with Byzantine help, some
/// honest parties vote but others see fewer than t+1 votes.
#[test]
fn engineered_grade_split_zero_one() {
    // n = 7, t = 2: echo threshold 5, vote thresholds 3 (grade 1), 5
    // (grade 2). Byzantine: p0 (leader), p1 (helper).
    let n = 7;
    let t = 2;
    let cfg = SimConfig {
        n,
        t,
        max_rounds: 10,
    };
    let adv = ScriptedAdversary(move |ctx: &mut AdversaryCtx<'_, GcMsg<u64>>| {
        match ctx.round() {
            1 => {
                ctx.corrupt(PartyId(0)).unwrap();
                ctx.corrupt(PartyId(1)).unwrap();
                // Lead 7 to honest parties 2,3,4 only (3 = n - 2t - ... the
                // point: only 3 honest echoes will exist).
                for i in 2..=4 {
                    ctx.send(PartyId(0), PartyId(i), GcMsg::Lead(7));
                }
            }
            2 => {
                // Byzantine echoes top up to the n - t = 5 threshold at
                // party 2 only: parties 2,3,4 echo (3 honest echoes reach
                // everyone); p0+p1 echo only to party 2.
                for b in [0, 1] {
                    ctx.send(PartyId(b), PartyId(2), GcMsg::Echo(PartyId(0), 7));
                }
            }
            3 => {
                // Party 2 votes (it saw 5 echoes); its vote reaches all.
                // Byzantine votes go to parties 2 and 3 only, lifting them
                // to 3 votes = grade 1 while 4,5,6 see a single vote ->
                // grade 0.
                for b in [0, 1] {
                    ctx.send(PartyId(b), PartyId(2), GcMsg::Vote(PartyId(0), 7));
                    ctx.send(PartyId(b), PartyId(3), GcMsg::Vote(PartyId(0), 7));
                }
            }
            _ => {}
        }
    });
    let report = run_simulation(
        cfg,
        |id, nn| GradecastProtocol::new(id, nn, t, id.index() as u64),
        adv,
    )
    .unwrap();
    let grades: Vec<u8> = (2..7)
        .map(|i| report.outputs[i].as_ref().unwrap()[0].grade.as_u8())
        .collect();
    // Parties 2 and 3 accept with grade 1; 4,5,6 reject with grade 0.
    assert_eq!(grades, vec![1, 1, 0, 0, 0]);
}

/// The three grade-semantics guarantees (per the gradecast lineage,
/// arXiv:1007.1049) under the protocol-agnostic `EquivocatingAdversary`:
/// unlike the chaos adversary above, every injected message is a
/// well-formed message stolen from real tentative traffic, so this
/// exercises the "plausible lies" corner rather than random noise.
#[test]
fn grade_semantics_hold_under_equivocation() {
    use sim_net::EquivocatingAdversary;

    for seed in 0..20u64 {
        let n = 7;
        let t = 2;
        let bad = [PartyId(1), PartyId(5)];
        let cfg = SimConfig {
            n,
            t,
            max_rounds: 10,
        };
        let inputs: Vec<u64> = (0..n).map(|i| 100 + i as u64).collect();
        let report = run_simulation(
            cfg,
            |id, nn| GradecastProtocol::new(id, nn, t, inputs[id.index()]),
            EquivocatingAdversary::new(bad.to_vec(), seed),
        )
        .unwrap();
        let honest_outs: Vec<_> = (0..n)
            .filter(|&i| !bad.iter().any(|b| b.index() == i))
            .map(|i| report.outputs[i].clone().expect("honest output"))
            .collect();

        for leader in 0..n {
            if !bad.iter().any(|b| b.index() == leader) {
                // Honest sender: every honest party outputs (v, 2).
                for out in &honest_outs {
                    assert_eq!(out[leader].grade, Grade::Two, "seed {seed} leader {leader}");
                    assert_eq!(out[leader].value, Some(inputs[leader]));
                }
            } else {
                // Binding: all accepted (grade >= 1) values are identical.
                let accepted: Vec<u64> = honest_outs
                    .iter()
                    .filter(|o| o[leader].accepted())
                    .map(|o| o[leader].value.expect("accepted implies value"))
                    .collect();
                assert!(
                    accepted.windows(2).all(|w| w[0] == w[1]),
                    "seed {seed}: binding violated for leader {leader}: {accepted:?}"
                );
                // Grade gap: any two honest grades differ by at most 1.
                let grades: Vec<u8> = honest_outs
                    .iter()
                    .map(|o| o[leader].grade.as_u8())
                    .collect();
                let (lo, hi) = (grades.iter().min().unwrap(), grades.iter().max().unwrap());
                assert!(
                    hi - lo <= 1,
                    "seed {seed}: grade gap for leader {leader}: {grades:?}"
                );
            }
        }
    }
}

/// Grade semantics also hold when equivocation is *composed* with a
/// crash under one shared corruption budget.
#[test]
fn grade_semantics_hold_under_composed_equivocation_and_crash() {
    use sim_net::{ComposedAdversary, CrashAdversary, EquivocatingAdversary};

    let n = 7;
    let t = 2;
    let cfg = SimConfig {
        n,
        t,
        max_rounds: 10,
    };
    let inputs: Vec<u64> = (0..n).map(|i| 10 * i as u64).collect();
    let adv: ComposedAdversary<GcMsg<u64>> = ComposedAdversary::new(vec![
        Box::new(EquivocatingAdversary::new(vec![PartyId(2)], 13)),
        Box::new(CrashAdversary {
            crashes: vec![(PartyId(6), 2)],
        }),
    ]);
    let report = run_simulation(
        cfg,
        |id, nn| GradecastProtocol::new(id, nn, t, inputs[id.index()]),
        adv,
    )
    .unwrap();
    assert!(report.corrupted[2] && report.corrupted[6]);

    let honest_outs: Vec<_> = (0..n)
        .filter(|&i| !report.corrupted[i])
        .map(|i| report.outputs[i].clone().expect("honest output"))
        .collect();
    for leader in 0..n {
        if !report.corrupted[leader] {
            for out in &honest_outs {
                assert_eq!(out[leader].grade, Grade::Two);
                assert_eq!(out[leader].value, Some(inputs[leader]));
            }
        } else {
            let accepted: Vec<u64> = honest_outs
                .iter()
                .filter(|o| o[leader].accepted())
                .map(|o| o[leader].value.unwrap())
                .collect();
            assert!(accepted.windows(2).all(|w| w[0] == w[1]));
            let grades: Vec<u8> = honest_outs
                .iter()
                .map(|o| o[leader].grade.as_u8())
                .collect();
            let (lo, hi) = (grades.iter().min().unwrap(), grades.iter().max().unwrap());
            assert!(hi - lo <= 1, "leader {leader}: {grades:?}");
        }
    }
}
