//! Uniform error-type contract: every public error in `sim-net` implements
//! `std::error::Error` + `Display`, and every variant formats to a message
//! that names its key parameters. New variants must be added here.

use std::error::Error;

use sim_net::{BudgetExceeded, FaultPlanError, SimError};

/// Asserts the `Error` impl and that the Display output mentions every
/// expected fragment.
fn check(err: &dyn Error, fragments: &[&str]) {
    let msg = err.to_string();
    assert!(!msg.is_empty());
    for fragment in fragments {
        assert!(
            msg.contains(fragment),
            "`{msg}` should contain `{fragment}`"
        );
    }
}

#[test]
fn sim_error_every_variant_formats() {
    check(
        &SimError::BadConfig {
            reason: "n must be positive".into(),
        },
        &["bad simulation config", "n must be positive"],
    );
    check(
        &SimError::MaxRoundsExceeded { max_rounds: 17 },
        &["did not terminate", "17"],
    );
    check(
        &SimError::BadFaultPlan {
            reason: "probabilistic link faults".into(),
        },
        &["bad fault plan", "probabilistic link faults"],
    );
}

#[test]
fn budget_exceeded_formats() {
    check(
        &BudgetExceeded {
            round: 4,
            budget: 2,
            spend: 2,
        },
        &["corruption budget exceeded", "round 4", "t = 2"],
    );
}

#[test]
fn fault_plan_error_every_variant_formats() {
    check(
        &FaultPlanError::BadPermille { permille: 1200 },
        &["1200", "permille", "1000"],
    );
    check(
        &FaultPlanError::BadPartitionSide {
            id: 1,
            size: 0,
            n: 5,
        },
        &["partition 1", "proper nonempty subset", "5"],
    );
    check(
        &FaultPlanError::PartyOutOfRange { party: 9, n: 4 },
        &["party 9", "n = 4"],
    );
    check(
        &FaultPlanError::BadWindow {
            what: "crash",
            from: 0,
            until: 3,
        },
        &["crash window", "[0, 3)", "round >= 1"],
    );
    check(
        &FaultPlanError::ReversedWindow {
            what: "crash",
            from: 5,
            until: 2,
        },
        &["crash window", "recovers at round 2", "crashes at round 5"],
    );
    check(
        &FaultPlanError::ReversedWindow {
            what: "partition",
            from: 4,
            until: 1,
        },
        &["partition window", "heals at round 1", "starts at round 4"],
    );
}

#[test]
fn errors_compose_as_trait_objects() {
    // The uniform contract in one line: all three types coerce to
    // `Box<dyn Error>` and round-trip a message through it.
    let boxed: Vec<Box<dyn Error>> = vec![
        Box::new(SimError::MaxRoundsExceeded { max_rounds: 1 }),
        Box::new(BudgetExceeded {
            round: 1,
            budget: 0,
            spend: 0,
        }),
        Box::new(FaultPlanError::BadPermille { permille: 1001 }),
    ];
    for err in &boxed {
        assert!(!err.to_string().is_empty());
    }
}
