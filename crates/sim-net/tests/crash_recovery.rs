//! Crash-recovery and partition semantics of the lockstep fault layer.
//!
//! The documented contract under test:
//!
//! * a crashed party is **frozen** — not stepped, sends suppressed — and on
//!   recovery is stepped with the current *absolute* round number;
//! * traffic sent in the round immediately preceding recovery is delivered
//!   to the recovering party; anything earlier in the outage is lost;
//! * parties still down at termination appear in `RunReport::crashed` with
//!   `None` outputs and do not block termination;
//! * partitions sever cross-cut links only, broadcasts degrade to
//!   same-side unicasts, and every firing shows up in the trace with
//!   per-round accounting intact.

use std::collections::BTreeMap;

use sim_net::{
    run_simulation_faulted, run_simulation_faulted_traced, CrashFault, EngineConfig, EventKind,
    FaultPlan, Inbox, Partition, Passive, Protocol, RoundCtx, SimConfig, SimError, StepMode,
};

/// Broadcasts every round it is up; records exactly which rounds it was
/// stepped in and which senders it heard each round.
#[derive(Clone)]
struct Chatter {
    finish: u32,
    stepped: Vec<u32>,
    heard: BTreeMap<u32, Vec<usize>>,
    done: bool,
}

impl Chatter {
    fn new(finish: u32) -> Self {
        Chatter {
            finish,
            stepped: Vec::new(),
            heard: BTreeMap::new(),
            done: false,
        }
    }
}

impl Protocol for Chatter {
    type Msg = u64;
    type Output = (Vec<u32>, BTreeMap<u32, Vec<usize>>);

    fn step(&mut self, round: u32, inbox: &Inbox<u64>, ctx: &mut RoundCtx<u64>) {
        self.stepped.push(round);
        let mut senders: Vec<usize> = inbox.iter().map(|r| r.from.index()).collect();
        senders.sort_unstable();
        self.heard.insert(round, senders);
        ctx.broadcast(u64::from(round));
        if round >= self.finish {
            self.done = true;
        }
    }

    fn output(&self) -> Option<Self::Output> {
        self.done
            .then(|| (self.stepped.clone(), self.heard.clone()))
    }
}

fn cfg(n: usize, max_rounds: u32) -> EngineConfig {
    EngineConfig::from(SimConfig {
        n,
        t: 0,
        max_rounds,
    })
}

fn crash_plan(party: usize, crash_round: u32, recover_round: u32) -> FaultPlan {
    FaultPlan {
        crashes: vec![CrashFault {
            party,
            crash_round,
            recover_round,
        }],
        ..FaultPlan::none()
    }
}

#[test]
fn crashed_party_is_frozen_and_rejoins_at_the_absolute_round() {
    let plan = crash_plan(2, 2, 4);
    let report =
        run_simulation_faulted(cfg(4, 10), &plan, |_, _| Chatter::new(6), Passive).unwrap();
    assert_eq!(report.rounds_executed, 6);
    assert_eq!(report.crashed, vec![false; 4]);

    let (stepped, heard) = report.outputs[2].clone().unwrap();
    // Frozen during [2, 4): the party was never stepped there, and rejoins
    // with the absolute round number, not a private counter.
    assert_eq!(stepped, vec![1, 4, 5, 6]);
    assert!(!heard.contains_key(&2) && !heard.contains_key(&3));
    // Messages sent in round 3 (the round immediately preceding recovery)
    // are delivered to the recovering party; round-2 traffic is lost.
    assert_eq!(heard[&4], vec![0, 1, 3]);

    // The other parties stop hearing party 2 exactly while its sends are
    // suppressed: round-r inboxes hold round r-1 traffic, so the silence
    // window observed by peers is rounds 3 and 4.
    let (_, heard0) = report.outputs[0].clone().unwrap();
    assert_eq!(heard0[&2], vec![0, 1, 2, 3]);
    assert_eq!(heard0[&3], vec![0, 1, 3]);
    assert_eq!(heard0[&4], vec![0, 1, 3]);
    assert_eq!(heard0[&5], vec![0, 1, 2, 3]);
}

#[test]
fn crash_and_recovery_appear_in_per_round_trace_accounting() {
    let plan = crash_plan(2, 2, 4);
    let (report, trace) =
        run_simulation_faulted_traced(cfg(4, 10), &plan, |_, _| Chatter::new(6), Passive).unwrap();

    let at = |round: u32, kind: &EventKind| {
        trace
            .events
            .iter()
            .any(|e| e.round == round && e.kind == *kind)
    };
    assert!(at(2, &EventKind::FaultCrash { party: 2 }));
    assert!(at(4, &EventKind::FaultRecover { party: 2 }));
    assert!(trace.has_faults());

    // No broadcast from party 2 while it is down.
    for e in &trace.events {
        if let EventKind::Broadcast { from: 2, .. } = e.kind {
            assert!(
                !(2..4).contains(&e.round),
                "party 2 broadcast in round {} while crashed",
                e.round
            );
        }
    }

    // The bracketing/totals checker accepts the faulted trace, and the
    // trace reconciles exactly with the report's metrics.
    aa_trace::check_round_totals(&trace).unwrap();
    let totals = aa_trace::recomputed_totals(&trace);
    assert_eq!(totals.messages(), report.metrics.total_messages());
    assert_eq!(totals.bytes, report.metrics.total_bytes());
}

#[test]
fn permanently_crashed_party_does_not_block_termination() {
    let plan = crash_plan(2, 3, u32::MAX);
    let report =
        run_simulation_faulted(cfg(4, 10), &plan, |_, _| Chatter::new(5), Passive).unwrap();
    assert_eq!(report.rounds_executed, 5);
    assert_eq!(report.crashed, vec![false, false, true, false]);
    assert!(report.outputs[2].is_none());
    assert_eq!(report.honest_outputs().len(), 3);
}

#[test]
fn partition_severs_cross_cut_links_only_and_heals() {
    let plan = FaultPlan {
        partitions: vec![Partition {
            side: vec![0, 1],
            from_round: 2,
            heal_round: 4,
        }],
        ..FaultPlan::none()
    };
    let (report, trace) =
        run_simulation_faulted_traced(cfg(4, 10), &plan, |_, _| Chatter::new(6), Passive).unwrap();

    // During the cut each side only hears itself (round-r inboxes hold
    // round r-1 traffic, so rounds 3 and 4 show the severed view).
    let (_, heard0) = report.outputs[0].clone().unwrap();
    let (_, heard2) = report.outputs[2].clone().unwrap();
    assert_eq!(heard0[&3], vec![0, 1]);
    assert_eq!(heard2[&3], vec![2, 3]);
    // Round 4 runs healed, so round 5 inboxes are full again.
    assert_eq!(heard0[&5], vec![0, 1, 2, 3]);
    assert_eq!(heard2[&5], vec![0, 1, 2, 3]);

    let at = |round: u32, kind: &EventKind| {
        trace
            .events
            .iter()
            .any(|e| e.round == round && e.kind == *kind)
    };
    assert!(at(2, &EventKind::PartitionStart { id: 0 }));
    assert!(at(4, &EventKind::PartitionHeal { id: 0 }));
    // Every sender loses exactly its 2 cross-cut recipients per broadcast.
    let drops = |round: u32| {
        trace
            .events
            .iter()
            .filter(|e| e.round == round && matches!(e.kind, EventKind::FaultDrop { .. }))
            .count()
    };
    assert_eq!(drops(2), 8);
    assert_eq!(drops(3), 8);
    assert_eq!(drops(4), 0);

    aa_trace::check_round_totals(&trace).unwrap();
    let totals = aa_trace::recomputed_totals(&trace);
    assert_eq!(totals.messages(), report.metrics.total_messages());
    assert_eq!(totals.bytes, report.metrics.total_bytes());
}

#[test]
fn faulted_runs_are_step_mode_invariant() {
    let plan = FaultPlan {
        partitions: vec![Partition {
            side: vec![1, 2],
            from_round: 2,
            heal_round: 3,
        }],
        crashes: vec![CrashFault {
            party: 0,
            crash_round: 3,
            recover_round: 5,
        }],
        ..FaultPlan::none()
    };
    let run = |mode| {
        let mut engine = cfg(5, 12);
        engine.step_mode = mode;
        run_simulation_faulted_traced(engine, &plan, |_, _| Chatter::new(7), Passive).unwrap()
    };
    let (report_seq, trace_seq) = run(StepMode::Sequential);
    let (report_par, trace_par) = run(StepMode::Parallel { threads: 3 });
    assert_eq!(report_seq, report_par);
    assert_eq!(
        trace_seq.to_canonical_string(),
        trace_par.to_canonical_string(),
        "faulted traces must stay byte-identical across step modes"
    );
}

#[test]
fn empty_plan_is_observably_identical_to_no_plan() {
    let plain = sim_net::run_simulation(cfg(4, 10).sim, |_, _| Chatter::new(4), Passive).unwrap();
    let faulted = run_simulation_faulted(
        cfg(4, 10),
        &FaultPlan::none(),
        |_, _| Chatter::new(4),
        Passive,
    )
    .unwrap();
    assert_eq!(plain, faulted);
}

#[test]
fn incompatible_or_invalid_plans_are_rejected() {
    let probabilistic = FaultPlan {
        drop_permille: 100,
        ..FaultPlan::none()
    };
    let err = run_simulation_faulted(cfg(4, 10), &probabilistic, |_, _| Chatter::new(3), Passive)
        .unwrap_err();
    assert!(matches!(err, SimError::BadFaultPlan { .. }), "{err}");

    let out_of_range = crash_plan(7, 1, 2);
    let err = run_simulation_faulted(cfg(4, 10), &out_of_range, |_, _| Chatter::new(3), Passive)
        .unwrap_err();
    assert!(err.to_string().contains("party 7"), "{err}");
}

#[test]
fn monitored_wrapper_degrades_on_over_threshold_silence() {
    // t = 1 but two parties crash forever: the survivors' outcomes must be
    // Degraded with a non-empty certificate naming both silent parties.
    let plan = FaultPlan {
        crashes: vec![
            CrashFault {
                party: 2,
                crash_round: 2,
                recover_round: u32::MAX,
            },
            CrashFault {
                party: 3,
                crash_round: 2,
                recover_round: u32::MAX,
            },
        ],
        ..FaultPlan::none()
    };
    let engine = EngineConfig::from(SimConfig {
        n: 4,
        t: 1,
        max_rounds: 12,
    });
    let report = run_simulation_faulted(
        engine,
        &plan,
        |_, n| sim_net::Monitored::new(Chatter::new(6), n, 1),
        Passive,
    )
    .unwrap();
    for i in [0, 1] {
        let outcome = report.outputs[i].as_ref().unwrap();
        assert!(outcome.is_degraded(), "party {i} should have degraded");
        let cert = outcome.certificate().unwrap();
        assert!(cert.exceeds_budget());
        assert!(!cert.evidence.is_empty());
        let parties: Vec<usize> = cert.evidence.iter().map(|e| e.party()).collect();
        assert!(parties.contains(&2) && parties.contains(&3), "{cert}");
    }

    // Under the budget (a single recovering crash) the outcome stays a
    // plain Value.
    let ok_plan = crash_plan(3, 2, 4);
    let report = run_simulation_faulted(
        engine,
        &ok_plan,
        |_, n| sim_net::Monitored::new(Chatter::new(6), n, 1),
        Passive,
    )
    .unwrap();
    for outcome in report.honest_outputs() {
        assert!(!outcome.is_degraded());
    }
}
