//! Sequential ≡ Parallel determinism at scale.
//!
//! The unit tests in `engine.rs` pin the step-mode invariants at n ≤ 7;
//! these runs exercise the work-stealing scheduler where it actually has
//! work to schedule — n ∈ {256, 1024}, thread counts {2, 3, 0 = cores} —
//! and assert the two guarantees the engine documents:
//!
//! * **bit-identical `RunReport`s**: outputs, corruption state, rounds,
//!   and every per-round metric are equal across modes;
//! * **byte-identical traces**: the canonical JSON rendering of a traced
//!   run is the same string no matter how threads were scheduled.
//!
//! The protocol is deliberately cheap (broadcast id, echo back the sum of
//! what was heard, then output) so the suite stays fast in debug builds
//! while still flowing n broadcasts through every inbox each round.

use sim_net::{
    run_simulation_traced, run_simulation_with, CrashAdversary, EngineConfig, Inbox, PartyId,
    Protocol, RoundCtx, SimConfig, StepMode,
};

/// Three rounds of all-to-all traffic with state that depends on every
/// received message, so any mis-scheduled or reordered delivery changes
/// the output.
struct SumEcho {
    id: usize,
    heard: u64,
    done: Option<u64>,
}

impl Protocol for SumEcho {
    type Msg = u64;
    type Output = u64;

    fn step(&mut self, round: u32, inbox: &Inbox<u64>, ctx: &mut RoundCtx<u64>) {
        match round {
            1 => ctx.broadcast(self.id as u64),
            2 => {
                self.heard = inbox.iter().map(|r| r.payload).sum();
                ctx.broadcast(self.heard.wrapping_mul(31).wrapping_add(self.id as u64));
            }
            _ => {
                if self.done.is_none() {
                    self.done = Some(inbox.iter().map(|r| r.payload).sum());
                }
            }
        }
    }

    fn output(&self) -> Option<u64> {
        self.done
    }
}

fn factory(id: PartyId, _n: usize) -> SumEcho {
    SumEcho {
        id: id.index(),
        heard: 0,
        done: None,
    }
}

fn cfg(n: usize, mode: StepMode) -> EngineConfig {
    EngineConfig {
        sim: SimConfig {
            n,
            t: (n - 1) / 3,
            max_rounds: 6,
        },
        step_mode: mode,
    }
}

/// A crash mid-protocol makes the runs assert determinism under
/// adversarial state changes too, not just on the happy path.
fn adversary(n: usize) -> CrashAdversary {
    CrashAdversary {
        crashes: vec![(PartyId(n / 2), 2)],
    }
}

const PARALLEL_MODES: [StepMode; 3] = [
    StepMode::Parallel { threads: 2 },
    StepMode::Parallel { threads: 3 },
    StepMode::Parallel { threads: 0 },
];

fn assert_modes_agree(n: usize) {
    let reference =
        run_simulation_with(cfg(n, StepMode::Sequential), factory, adversary(n)).unwrap();
    assert_eq!(reference.rounds_executed, 3);
    for mode in PARALLEL_MODES {
        let report = run_simulation_with(cfg(n, mode), factory, adversary(n)).unwrap();
        assert_eq!(report, reference, "n={n} mode {mode:?} diverged");
    }
}

fn assert_traces_agree(n: usize) {
    let (ref_report, ref_trace) =
        run_simulation_traced(cfg(n, StepMode::Sequential), factory, adversary(n)).unwrap();
    let ref_bytes = ref_trace.to_canonical_string();
    for mode in PARALLEL_MODES {
        let (report, trace) = run_simulation_traced(cfg(n, mode), factory, adversary(n)).unwrap();
        assert_eq!(report, ref_report, "n={n} mode {mode:?} report diverged");
        assert_eq!(
            trace.to_canonical_string(),
            ref_bytes,
            "n={n} mode {mode:?} trace not byte-identical"
        );
    }
    aa_trace::check_round_totals(&ref_trace).unwrap();
}

#[test]
fn reports_bit_identical_n256() {
    assert_modes_agree(256);
}

#[test]
fn reports_bit_identical_n1024() {
    assert_modes_agree(1024);
}

#[test]
fn traces_byte_identical_n256() {
    assert_traces_agree(256);
}

#[test]
fn traces_byte_identical_n1024() {
    assert_traces_agree(1024);
}
