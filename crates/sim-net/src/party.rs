//! The protocol (party state machine) abstraction.

use aa_trace::ProtoEvent;

use crate::mailbox::{Inbox, Outbox};
use crate::message::{Envelope, PartyId, Payload};

/// A synchronous protocol, written as a per-party round state machine.
///
/// The engine drives all parties in lockstep. In round `r` (1-based), each
/// party receives the messages that were sent to it in round `r − 1` (round
/// 1 delivers an empty inbox) and may send messages via the [`RoundCtx`].
///
/// Implementations must be deterministic functions of their construction
/// parameters and observed inboxes — the honest parties of the paper's model
/// are deterministic, and the simulator's reproducibility relies on it.
/// Because each party's round is such a pure function, the engine is free
/// to step parties concurrently (see `StepMode`); the `Send` bounds on
/// `run_simulation` exist for that.
pub trait Protocol {
    /// Message type exchanged by this protocol.
    type Msg: Payload;
    /// The value a party terminates with.
    type Output: Clone;

    /// Executes one round: consume this round's inbox, emit this round's
    /// messages.
    fn step(&mut self, round: u32, inbox: &Inbox<Self::Msg>, ctx: &mut RoundCtx<Self::Msg>);

    /// The party's output, once it has terminated. The engine stops when
    /// every honest party reports `Some`.
    fn output(&self) -> Option<Self::Output>;
}

/// Per-round sending context handed to a party by the engine.
///
/// All sends are attributed to the stepping party; recipients are any of the
/// `n` parties, including the sender itself (self-delivery is ordinary
/// delivery in the next round).
///
/// Unicasts and broadcasts are tracked separately (see
/// [`Outbox`]): a broadcast records its payload **once** instead of
/// materialising `n` cloned envelopes, which is what makes all-to-all
/// rounds linear instead of quadratic in allocations.
#[derive(Debug)]
pub struct RoundCtx<M> {
    me: PartyId,
    n: usize,
    unicasts: Vec<Envelope<M>>,
    broadcasts: Vec<M>,
    tracing: bool,
    events: Vec<ProtoEvent>,
}

impl<M: Payload> RoundCtx<M> {
    /// Creates a standalone context (tracing disabled).
    ///
    /// The engine builds these internally; the constructor is public so
    /// that *composed* protocols can drive an inner protocol's `step` with
    /// a scratch context and re-wrap its outbox into their own message
    /// type (see `tree-aa`, which nests real-valued AA engines).
    pub fn new(me: PartyId, n: usize) -> Self {
        RoundCtx {
            me,
            n,
            unicasts: Vec::new(),
            broadcasts: Vec::new(),
            tracing: false,
            events: Vec::new(),
        }
    }

    /// Creates a context with flight-recorder tracing enabled: protocol
    /// events passed to [`RoundCtx::emit_with`] are collected and can be
    /// drained with [`RoundCtx::take_events`].
    pub fn traced(me: PartyId, n: usize) -> Self {
        RoundCtx {
            tracing: true,
            ..RoundCtx::new(me, n)
        }
    }

    /// Whether this round is being traced. Protocols rarely need this:
    /// [`RoundCtx::emit_with`] already evaluates its closure only when
    /// tracing is on.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Records a protocol-level trace event.
    ///
    /// The closure is invoked **only when tracing is enabled**, so an
    /// instrumented protocol pays nothing — not even the event's string
    /// formatting — on ordinary untraced runs.
    pub fn emit_with<F: FnOnce() -> ProtoEvent>(&mut self, build: F) {
        if self.tracing {
            self.events.push(build());
        }
    }

    /// Drains the protocol events recorded this round (emission order).
    pub fn take_events(&mut self) -> Vec<ProtoEvent> {
        std::mem::take(&mut self.events)
    }

    /// The stepping party's own id.
    pub fn me(&self) -> PartyId {
        self.me
    }

    /// Total number of parties.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sends `msg` to `to`, delivered next round.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range — addressing a party that does not
    /// exist is a protocol bug, not a runtime condition.
    pub fn send(&mut self, to: PartyId, msg: M) {
        assert!(
            to.index() < self.n,
            "recipient {to} out of range (n = {})",
            self.n
        );
        self.unicasts.push(Envelope {
            from: self.me,
            to,
            payload: msg,
        });
    }

    /// Sends `msg` to every party (including the sender).
    ///
    /// The payload is moved, not cloned: fan-out to the `n` recipients
    /// happens structurally in the engine's shared broadcast list.
    pub fn broadcast(&mut self, msg: M) {
        self.broadcasts.push(msg);
    }

    /// Consumes the context and returns the accumulated outbox (public
    /// for the same composition use case as [`RoundCtx::new`]).
    pub fn into_outbox(self) -> Outbox<M> {
        Outbox {
            from: self.me,
            n: self.n,
            unicasts: self.unicasts,
            broadcasts: self.broadcasts,
        }
    }
}

/// Feeds a hand-built round through a protocol outside the engine: steps
/// `party` with `inbox` and returns its outbox. This is the harness half of
/// protocol composition (see `tree-aa`) and of history-replay tests.
pub fn step_standalone<P: Protocol>(
    party: &mut P,
    me: PartyId,
    n: usize,
    round: u32,
    inbox: &Inbox<P::Msg>,
) -> Outbox<P::Msg> {
    let mut ctx = RoundCtx::new(me, n);
    party.step(round, inbox, &mut ctx);
    ctx.into_outbox()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_is_recorded_once_but_counts_n() {
        let mut ctx: RoundCtx<u64> = RoundCtx::new(PartyId(1), 3);
        ctx.broadcast(5);
        let out = ctx.into_outbox();
        assert_eq!(out.broadcasts(), [5]);
        assert!(out.unicasts().is_empty());
        assert_eq!(out.message_count(), 3);
        assert_eq!(out.sender(), PartyId(1));
    }

    #[test]
    fn send_is_attributed_to_sender() {
        let mut ctx: RoundCtx<u64> = RoundCtx::new(PartyId(2), 4);
        ctx.send(PartyId(0), 9);
        let out = ctx.into_outbox();
        assert_eq!(
            out.unicasts(),
            [Envelope {
                from: PartyId(2),
                to: PartyId(0),
                payload: 9
            }]
        );
        assert_eq!(out.message_count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_out_of_range_panics() {
        let mut ctx: RoundCtx<u64> = RoundCtx::new(PartyId(0), 2);
        ctx.send(PartyId(2), 1);
    }
}
