//! The protocol (party state machine) abstraction.

use crate::message::{Envelope, PartyId, Payload};

/// A synchronous protocol, written as a per-party round state machine.
///
/// The engine drives all parties in lockstep. In round `r` (1-based), each
/// party receives the messages that were sent to it in round `r − 1` (round
/// 1 delivers an empty inbox) and may send messages via the [`RoundCtx`].
///
/// Implementations must be deterministic functions of their construction
/// parameters and observed inboxes — the honest parties of the paper's model
/// are deterministic, and the simulator's reproducibility relies on it.
pub trait Protocol {
    /// Message type exchanged by this protocol.
    type Msg: Payload;
    /// The value a party terminates with.
    type Output: Clone;

    /// Executes one round: consume this round's inbox, emit this round's
    /// messages.
    fn step(&mut self, round: u32, inbox: &[Envelope<Self::Msg>], ctx: &mut RoundCtx<Self::Msg>);

    /// The party's output, once it has terminated. The engine stops when
    /// every honest party reports `Some`.
    fn output(&self) -> Option<Self::Output>;
}

/// Per-round sending context handed to a party by the engine.
///
/// All sends are attributed to the stepping party; recipients are any of the
/// `n` parties, including the sender itself (self-delivery is ordinary
/// delivery in the next round).
#[derive(Debug)]
pub struct RoundCtx<M> {
    me: PartyId,
    n: usize,
    outbox: Vec<Envelope<M>>,
}

impl<M: Payload> RoundCtx<M> {
    /// Creates a standalone context.
    ///
    /// The engine builds these internally; the constructor is public so
    /// that *composed* protocols can drive an inner protocol's `step` with
    /// a scratch context and re-wrap its outbox into their own message
    /// type (see `tree-aa`, which nests real-valued AA engines).
    pub fn new(me: PartyId, n: usize) -> Self {
        RoundCtx { me, n, outbox: Vec::new() }
    }

    /// The stepping party's own id.
    pub fn me(&self) -> PartyId {
        self.me
    }

    /// Total number of parties.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sends `msg` to `to`, delivered next round.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range — addressing a party that does not
    /// exist is a protocol bug, not a runtime condition.
    pub fn send(&mut self, to: PartyId, msg: M) {
        assert!(to.index() < self.n, "recipient {to} out of range (n = {})", self.n);
        self.outbox.push(Envelope { from: self.me, to, payload: msg });
    }

    /// Sends `msg` to every party (including the sender).
    pub fn broadcast(&mut self, msg: M) {
        for i in 0..self.n {
            self.outbox.push(Envelope { from: self.me, to: PartyId(i), payload: msg.clone() });
        }
    }

    /// Consumes the context and returns the accumulated outbox (public
    /// for the same composition use case as [`RoundCtx::new`]).
    pub fn into_outbox(self) -> Vec<Envelope<M>> {
        self.outbox
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_reaches_everyone_including_self() {
        let mut ctx: RoundCtx<u64> = RoundCtx::new(PartyId(1), 3);
        ctx.broadcast(5);
        let out = ctx.into_outbox();
        assert_eq!(out.len(), 3);
        let tos: Vec<_> = out.iter().map(|e| e.to.index()).collect();
        assert_eq!(tos, [0, 1, 2]);
        assert!(out.iter().all(|e| e.from == PartyId(1) && e.payload == 5));
    }

    #[test]
    fn send_is_attributed_to_sender() {
        let mut ctx: RoundCtx<u64> = RoundCtx::new(PartyId(2), 4);
        ctx.send(PartyId(0), 9);
        let out = ctx.into_outbox();
        assert_eq!(out, vec![Envelope { from: PartyId(2), to: PartyId(0), payload: 9 }]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_out_of_range_panics() {
        let mut ctx: RoundCtx<u64> = RoundCtx::new(PartyId(0), 2);
        ctx.send(PartyId(2), 1);
    }
}
