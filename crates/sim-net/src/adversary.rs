//! The Byzantine adversary interface and stock adversaries.

use std::error::Error;
use std::fmt;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::mailbox::Outbox;
use crate::message::{Envelope, PartyId, Payload};

/// Returned by [`AdversaryCtx::corrupt`] when the corruption budget `t` is
/// exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The round in which the over-budget corruption was attempted.
    pub round: u32,
    /// The corruption budget `t`.
    pub budget: usize,
    /// How many parties were already corrupted when the attempt was made.
    pub spend: usize,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "corruption budget exceeded in round {}: budget t = {}, already spent {}",
            self.round, self.budget, self.spend
        )
    }
}

impl Error for BudgetExceeded {}

/// The adversary's per-round view and capabilities.
///
/// Handed to [`Adversary::round`] once per round, *after* every party
/// (honest and corrupted) has produced its tentative messages for the round
/// — this is the **rushing** power. Through it the adversary can:
///
/// * read all tentative traffic of the round ([`AdversaryCtx::traffic`]);
/// * adaptively corrupt parties up to the budget `t`
///   ([`AdversaryCtx::corrupt`]) — a corrupted party's tentative messages
///   for this and later rounds are discarded unless explicitly forwarded;
/// * forward a corrupted party's tentative messages selectively
///   ([`AdversaryCtx::forward`]), which is how omission faults are modeled;
/// * inject arbitrary messages from corrupted senders
///   ([`AdversaryCtx::send`]), with per-recipient content (equivocation).
pub struct AdversaryCtx<'a, M> {
    pub(crate) round: u32,
    pub(crate) n: usize,
    pub(crate) t: usize,
    pub(crate) corrupted: &'a mut Vec<bool>,
    pub(crate) corrupted_count: &'a mut usize,
    /// Tentative outboxes of all parties this round, indexed by sender.
    pub(crate) tentative: &'a [Outbox<M>],
    /// Adversary-authored traffic for this round.
    pub(crate) injected: &'a mut Vec<Envelope<M>>,
    /// Per-sender flag: forward the tentative outbox of this corrupted
    /// sender as-is.
    pub(crate) forwarded: &'a mut Vec<bool>,
}

impl<'a, M: Payload> AdversaryCtx<'a, M> {
    /// Current round (1-based).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Number of parties.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Corruption budget.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Whether `p` is corrupted.
    pub fn is_corrupted(&self, p: PartyId) -> bool {
        self.corrupted[p.index()]
    }

    /// Ids of all corrupted parties.
    pub fn corrupted(&self) -> Vec<PartyId> {
        (0..self.n)
            .filter(|&i| self.corrupted[i])
            .map(PartyId)
            .collect()
    }

    /// How many more parties may be corrupted.
    pub fn remaining_budget(&self) -> usize {
        self.t - *self.corrupted_count
    }

    /// Permanently corrupts `p` (idempotent).
    ///
    /// The engine stops delivering `p`'s tentative messages from this round
    /// on; the adversary speaks for `p` via [`AdversaryCtx::send`] or
    /// [`AdversaryCtx::forward`].
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] if `p` is honest and the budget is
    /// exhausted.
    pub fn corrupt(&mut self, p: PartyId) -> Result<(), BudgetExceeded> {
        if self.corrupted[p.index()] {
            return Ok(());
        }
        if *self.corrupted_count >= self.t {
            return Err(BudgetExceeded {
                round: self.round,
                budget: self.t,
                spend: *self.corrupted_count,
            });
        }
        self.corrupted[p.index()] = true;
        *self.corrupted_count += 1;
        Ok(())
    }

    /// All tentative messages of the round as materialised envelopes: what
    /// every party (honest or corrupted) would send this round if left
    /// alone. Honest entries are exactly what will be delivered; corrupted
    /// entries are delivered only if forwarded.
    ///
    /// Broadcasts are expanded (and their payloads cloned) per recipient
    /// here — this is the adversary's convenience view, not the engine's
    /// delivery path. Prefer [`AdversaryCtx::tentative_outbox`] and
    /// [`Outbox::broadcasts`] when per-recipient envelopes are not needed.
    pub fn traffic(&self) -> impl Iterator<Item = Envelope<M>> + '_ {
        self.tentative.iter().flat_map(Outbox::envelopes)
    }

    /// The tentative outbox of one party this round, in structured form
    /// (unicast envelopes plus broadcast payloads).
    pub fn tentative_outbox(&self, p: PartyId) -> &Outbox<M> {
        &self.tentative[p.index()]
    }

    /// Delivers the tentative outbox of corrupted party `p` unchanged this
    /// round (semi-honest behaviour / fail-stop modeling).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not corrupted — forwarding an honest party's
    /// messages is a no-op the engine already performs, and calling this on
    /// an honest party indicates a bug in the adversary.
    pub fn forward(&mut self, p: PartyId) {
        assert!(
            self.corrupted[p.index()],
            "forward() requires a corrupted party"
        );
        self.forwarded[p.index()] = true;
    }

    /// Sends `msg` from corrupted party `from` to `to` this round.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not corrupted (the engine authenticates
    /// channels: only the adversary's own parties can be spoken for) or if
    /// `to` is out of range.
    pub fn send(&mut self, from: PartyId, to: PartyId, msg: M) {
        assert!(
            self.corrupted[from.index()],
            "adversary can only send from corrupted parties (channels are authenticated)"
        );
        assert!(to.index() < self.n, "recipient {to} out of range");
        self.injected.push(Envelope {
            from,
            to,
            payload: msg,
        });
    }

    /// Sends `msg` from corrupted `from` to every party.
    pub fn broadcast(&mut self, from: PartyId, msg: M) {
        for i in 0..self.n {
            self.send(from, PartyId(i), msg.clone());
        }
    }
}

/// A Byzantine adversary strategy.
///
/// Stateless strategies are free to ignore `round`; stateful ones (e.g. the
/// budget-split equivocators in `real-aa`) keep their plans and RNGs inside
/// `self`.
pub trait Adversary<M: Payload> {
    /// Invoked once per round with the full rushing view.
    fn round(&mut self, ctx: &mut AdversaryCtx<'_, M>);
}

/// The trivial adversary: corrupts no one.
#[derive(Clone, Copy, Debug, Default)]
pub struct Passive;

impl<M: Payload> Adversary<M> for Passive {
    fn round(&mut self, _ctx: &mut AdversaryCtx<'_, M>) {}
}

/// Crash-stop faults: each victim is corrupted at its scheduled round and
/// silent from then on (its tentative messages for the crash round are
/// dropped entirely — a "clean" crash at the round boundary).
#[derive(Clone, Debug)]
pub struct CrashAdversary {
    /// `(party, round)` pairs: the party crashes at the start of the round.
    pub crashes: Vec<(PartyId, u32)>,
}

impl<M: Payload> Adversary<M> for CrashAdversary {
    fn round(&mut self, ctx: &mut AdversaryCtx<'_, M>) {
        for &(p, r) in &self.crashes {
            if r == ctx.round() {
                ctx.corrupt(p)
                    .expect("crash schedule exceeds corruption budget");
            }
        }
    }
}

/// Corrupts a fixed set at round 1 and then drives them with a closure —
/// the workhorse for protocol-specific Byzantine strategies in tests.
pub struct StaticByzantine<F> {
    /// Parties corrupted at the start of the execution.
    pub parties: Vec<PartyId>,
    /// Per-round behaviour of the corrupted coalition.
    pub behave: F,
}

impl<M, F> Adversary<M> for StaticByzantine<F>
where
    M: Payload,
    F: FnMut(&mut AdversaryCtx<'_, M>),
{
    fn round(&mut self, ctx: &mut AdversaryCtx<'_, M>) {
        if ctx.round() == 1 {
            for &p in &self.parties {
                ctx.corrupt(p)
                    .expect("static corruption set exceeds budget");
            }
        }
        (self.behave)(ctx);
    }
}

/// Selective omission faults: the victims run the protocol honestly, but
/// each of their outgoing messages is independently dropped with
/// probability `drop_prob` — per *recipient*, which is what distinguishes
/// omission from a clean crash and produces the partial-delivery patterns
/// (e.g. gradecast grade splits) that crash faults cannot.
#[derive(Clone, Debug)]
pub struct SelectiveOmission {
    victims: Vec<PartyId>,
    drop_prob: f64,
    rng: ChaCha8Rng,
}

impl SelectiveOmission {
    /// Creates the adversary with its own deterministic RNG.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= drop_prob <= 1.0`.
    pub fn new(victims: Vec<PartyId>, drop_prob: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_prob),
            "drop_prob must be a probability"
        );
        SelectiveOmission {
            victims,
            drop_prob,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl<M: Payload> Adversary<M> for SelectiveOmission {
    fn round(&mut self, ctx: &mut AdversaryCtx<'_, M>) {
        if ctx.round() == 1 {
            for &v in &self.victims.clone() {
                ctx.corrupt(v)
                    .expect("victim set exceeds corruption budget");
            }
        }
        for &v in &self.victims.clone() {
            let outbox: Vec<Envelope<M>> = ctx.tentative_outbox(v).envelopes().collect();
            for env in outbox {
                if self.rng.gen_range(0.0..1.0) >= self.drop_prob {
                    ctx.send(v, env.to, env.payload);
                }
            }
        }
    }
}

/// A fully scripted adversary: the closure receives the context every round
/// and does everything itself (corruption, forwarding, injection).
pub struct ScriptedAdversary<F>(pub F);

impl<M, F> Adversary<M> for ScriptedAdversary<F>
where
    M: Payload,
    F: FnMut(&mut AdversaryCtx<'_, M>),
{
    fn round(&mut self, ctx: &mut AdversaryCtx<'_, M>) {
        (self.0)(ctx);
    }
}

impl<M: Payload, A: Adversary<M> + ?Sized> Adversary<M> for Box<A> {
    fn round(&mut self, ctx: &mut AdversaryCtx<'_, M>) {
        (**self).round(ctx);
    }
}

/// Protocol-agnostic equivocation: the victims are corrupted at round 1
/// and every round each victim sends *different recipients different
/// (syntactically valid) messages* — per recipient, a fair coin decides
/// between the victim's own tentative messages for that recipient and the
/// messages some other uniformly chosen party intended for the same
/// recipient, re-stamped as coming from the victim.
///
/// Because the substituted payloads are drawn from real tentative traffic
/// of the same round, the equivocation is always well-formed for the
/// protocol under attack — no knowledge of the message type is needed,
/// which is what lets one adversary attack `TreeAA`, `RealAA`, gradecast
/// and the baseline alike (the fuzz harness relies on this).
#[derive(Clone, Debug)]
pub struct EquivocatingAdversary {
    victims: Vec<PartyId>,
    rng: ChaCha8Rng,
}

impl EquivocatingAdversary {
    /// Creates the adversary with its own deterministic RNG.
    pub fn new(victims: Vec<PartyId>, seed: u64) -> Self {
        EquivocatingAdversary {
            victims,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl<M: Payload> Adversary<M> for EquivocatingAdversary {
    fn round(&mut self, ctx: &mut AdversaryCtx<'_, M>) {
        if ctx.round() == 1 {
            for &v in &self.victims.clone() {
                ctx.corrupt(v)
                    .expect("victim set exceeds corruption budget");
            }
        }
        let n = ctx.n();
        for &v in &self.victims.clone() {
            for to in (0..n).map(PartyId) {
                let donor = if self.rng.gen_bool(0.5) {
                    v
                } else {
                    PartyId(self.rng.gen_range(0..n))
                };
                let stolen: Vec<M> = ctx
                    .tentative_outbox(donor)
                    .envelopes()
                    .filter(|e| e.to == to)
                    .map(|e| e.payload)
                    .collect();
                for m in stolen {
                    ctx.send(v, to, m);
                }
            }
        }
    }
}

/// Runs several adversaries in sequence within each round, sharing one
/// corruption budget and one rushing view — e.g. crash one victim while a
/// second equivocates and a third selectively drops messages.
///
/// Parts run in the order given; later parts observe (via
/// [`AdversaryCtx::is_corrupted`] etc.) the corruptions of earlier ones.
/// The composed strategies must jointly stay within the budget `t`.
pub struct ComposedAdversary<M> {
    parts: Vec<Box<dyn Adversary<M>>>,
}

impl<M: Payload> ComposedAdversary<M> {
    /// Composes the given strategies (empty composition = [`Passive`]).
    pub fn new(parts: Vec<Box<dyn Adversary<M>>>) -> Self {
        ComposedAdversary { parts }
    }

    /// Appends another strategy, run after the existing ones.
    pub fn push(&mut self, part: impl Adversary<M> + 'static) {
        self.parts.push(Box::new(part));
    }
}

impl<M: Payload> Adversary<M> for ComposedAdversary<M> {
    fn round(&mut self, ctx: &mut AdversaryCtx<'_, M>) {
        for part in &mut self.parts {
            part.round(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selective_omission_drops_some_messages() {
        use crate::engine::{run_simulation, SimConfig};
        use crate::mailbox::Inbox;
        use crate::party::{Protocol, RoundCtx};

        struct Chatter {
            heard: Option<usize>,
        }
        impl Protocol for Chatter {
            type Msg = u64;
            type Output = usize;
            fn step(&mut self, round: u32, inbox: &Inbox<u64>, ctx: &mut RoundCtx<u64>) {
                if round == 1 {
                    ctx.broadcast(1);
                } else if self.heard.is_none() {
                    self.heard = Some(inbox.len());
                }
            }
            fn output(&self) -> Option<usize> {
                self.heard
            }
        }
        let adv = SelectiveOmission::new(vec![PartyId(0)], 0.5, 42);
        let report = run_simulation(
            SimConfig {
                n: 8,
                t: 1,
                max_rounds: 5,
            },
            |_, _| Chatter { heard: None },
            adv,
        )
        .unwrap();
        let heard: Vec<usize> = (1..8).map(|i| report.outputs[i].unwrap()).collect();
        // The victim's broadcast reached some but (with this seed) not all.
        assert!(heard.contains(&8), "someone got all 8");
        assert!(
            heard.iter().any(|&h| h < 8),
            "someone lost the victim's message"
        );
    }

    fn empty_tentative(n: usize) -> Vec<Outbox<u64>> {
        (0..n).map(|i| Outbox::new(PartyId(i), n)).collect()
    }

    fn ctx_fixture<'a>(
        corrupted: &'a mut Vec<bool>,
        count: &'a mut usize,
        tentative: &'a [Outbox<u64>],
        injected: &'a mut Vec<Envelope<u64>>,
        forwarded: &'a mut Vec<bool>,
    ) -> AdversaryCtx<'a, u64> {
        AdversaryCtx {
            round: 1,
            n: 4,
            t: 2,
            corrupted,
            corrupted_count: count,
            tentative,
            injected,
            forwarded,
        }
    }

    #[test]
    fn budget_is_enforced() {
        let mut corrupted = vec![false; 4];
        let mut count = 0;
        let tentative = empty_tentative(4);
        let mut injected = Vec::new();
        let mut forwarded = vec![false; 4];
        let mut ctx = ctx_fixture(
            &mut corrupted,
            &mut count,
            &tentative,
            &mut injected,
            &mut forwarded,
        );
        assert_eq!(ctx.remaining_budget(), 2);
        ctx.corrupt(PartyId(0)).unwrap();
        ctx.corrupt(PartyId(0)).unwrap(); // idempotent, costs nothing
        ctx.corrupt(PartyId(1)).unwrap();
        assert_eq!(ctx.remaining_budget(), 0);
        assert_eq!(
            ctx.corrupt(PartyId(2)),
            Err(BudgetExceeded {
                round: 1,
                budget: 2,
                spend: 2
            })
        );
        assert_eq!(ctx.corrupted(), vec![PartyId(0), PartyId(1)]);
    }

    #[test]
    fn budget_exceeded_reports_round_budget_and_spend() {
        let err = BudgetExceeded {
            round: 7,
            budget: 3,
            spend: 3,
        };
        let msg = err.to_string();
        assert!(msg.contains("round 7"), "{msg}");
        assert!(msg.contains("budget t = 3"), "{msg}");
        assert!(msg.contains("spent 3"), "{msg}");
        // It is a real std::error::Error.
        let dynamic: &dyn std::error::Error = &err;
        assert_eq!(dynamic.to_string(), msg);
    }

    #[test]
    fn equivocator_sends_wellformed_but_inconsistent_traffic() {
        use crate::engine::{run_simulation, SimConfig};
        use crate::mailbox::Inbox;
        use crate::party::{Protocol, RoundCtx};

        /// Broadcasts its id in round 1, then records what the victim said.
        struct Listener {
            from_victim: Option<Vec<u64>>,
        }
        impl Protocol for Listener {
            type Msg = u64;
            type Output = Vec<u64>;
            fn step(&mut self, round: u32, inbox: &Inbox<u64>, ctx: &mut RoundCtx<u64>) {
                if round == 1 {
                    ctx.broadcast(ctx.me().index() as u64);
                } else if self.from_victim.is_none() {
                    self.from_victim = Some(
                        inbox
                            .iter()
                            .filter(|e| e.from == PartyId(0))
                            .map(|e| e.payload)
                            .collect(),
                    );
                }
            }
            fn output(&self) -> Option<Vec<u64>> {
                self.from_victim.clone()
            }
        }
        let adv = EquivocatingAdversary::new(vec![PartyId(0)], 3);
        let report = run_simulation(
            SimConfig {
                n: 8,
                t: 1,
                max_rounds: 4,
            },
            |_, _| Listener { from_victim: None },
            adv,
        )
        .unwrap();
        // Every payload the victim sent is a value some party legitimately
        // broadcast (well-formedness)…
        let heard: Vec<Vec<u64>> = (1..8).map(|i| report.outputs[i].clone().unwrap()).collect();
        for msgs in &heard {
            for &m in msgs {
                assert!(m < 8, "forged value {m} not drawn from real traffic");
            }
        }
        // …and (with this seed) two recipients saw different claims.
        assert!(
            heard.iter().any(|h| h != &heard[0]),
            "no equivocation happened: {heard:?}"
        );
    }

    #[test]
    fn composition_shares_the_budget_and_runs_in_order() {
        use crate::engine::{run_simulation, SimConfig};
        use crate::mailbox::Inbox;
        use crate::party::{Protocol, RoundCtx};

        struct Idle(u32);
        impl Protocol for Idle {
            type Msg = u64;
            type Output = u32;
            fn step(&mut self, round: u32, _i: &Inbox<u64>, _c: &mut RoundCtx<u64>) {
                self.0 = round;
            }
            fn output(&self) -> Option<u32> {
                (self.0 >= 2).then_some(self.0)
            }
        }

        let mut composed: ComposedAdversary<u64> = ComposedAdversary::new(Vec::new());
        composed.push(CrashAdversary {
            crashes: vec![(PartyId(1), 1)],
        });
        composed.push(EquivocatingAdversary::new(vec![PartyId(2)], 9));
        let report = run_simulation(
            SimConfig {
                n: 7,
                t: 2,
                max_rounds: 4,
            },
            |_, _| Idle(0),
            composed,
        )
        .unwrap();
        assert!(report.corrupted[1] && report.corrupted[2]);
        assert_eq!(report.corrupted.iter().filter(|&&c| c).count(), 2);
    }

    #[test]
    #[should_panic(expected = "authenticated")]
    fn cannot_send_as_honest_party() {
        let mut corrupted = vec![false; 4];
        let mut count = 0;
        let tentative = empty_tentative(4);
        let mut injected = Vec::new();
        let mut forwarded = vec![false; 4];
        let mut ctx = ctx_fixture(
            &mut corrupted,
            &mut count,
            &tentative,
            &mut injected,
            &mut forwarded,
        );
        ctx.send(PartyId(3), PartyId(0), 1);
    }

    #[test]
    fn equivocation_is_possible_from_corrupted() {
        let mut corrupted = vec![false; 4];
        let mut count = 0;
        let tentative = empty_tentative(4);
        let mut injected = Vec::new();
        let mut forwarded = vec![false; 4];
        {
            let mut ctx = ctx_fixture(
                &mut corrupted,
                &mut count,
                &tentative,
                &mut injected,
                &mut forwarded,
            );
            ctx.corrupt(PartyId(0)).unwrap();
            ctx.send(PartyId(0), PartyId(1), 10);
            ctx.send(PartyId(0), PartyId(2), 20); // different value to p2
        }
        assert_eq!(injected.len(), 2);
        assert_ne!(injected[0].payload, injected[1].payload);
    }

    #[test]
    #[should_panic(expected = "requires a corrupted party")]
    fn forward_requires_corruption() {
        let mut corrupted = vec![false; 4];
        let mut count = 0;
        let tentative = empty_tentative(4);
        let mut injected = Vec::new();
        let mut forwarded = vec![false; 4];
        let mut ctx = ctx_fixture(
            &mut corrupted,
            &mut count,
            &tentative,
            &mut injected,
            &mut forwarded,
        );
        ctx.forward(PartyId(1));
    }
}
