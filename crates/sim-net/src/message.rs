//! Party identities, message payloads, and authenticated envelopes.

use std::fmt;

/// The identity of one of the `n` parties, a dense index in `0..n`.
///
/// Identities are public and bound to channels: the engine stamps every
/// [`Envelope`] with the true sender, which models the paper's
/// *authenticated channels* — a Byzantine party can equivocate but cannot
/// impersonate another party.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartyId(pub usize);

impl PartyId {
    /// The dense index of this party.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A message payload.
///
/// [`Payload::size_bytes`] is used by the metrics layer to estimate
/// communication complexity; the default is the shallow in-memory size,
/// which protocols with heap-carrying payloads should override.
pub trait Payload: Clone + fmt::Debug {
    /// Estimated wire size of this message in bytes.
    fn size_bytes(&self) -> usize {
        std::mem::size_of_val(self)
    }
}

impl Payload for u64 {}
impl Payload for i64 {}
impl Payload for f64 {}
impl Payload for () {}
impl Payload for String {
    fn size_bytes(&self) -> usize {
        self.len()
    }
}

/// A delivered message: payload plus the engine-stamped sender and
/// recipient.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// True sender (authenticated by the engine).
    pub from: PartyId,
    /// Recipient.
    pub to: PartyId,
    /// The message body.
    pub payload: M,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn party_id_display_and_index() {
        let p = PartyId(3);
        assert_eq!(p.to_string(), "p3");
        assert_eq!(p.index(), 3);
    }

    #[test]
    fn default_size_is_shallow_size() {
        assert_eq!(7u64.size_bytes(), 8);
        assert_eq!(().size_bytes(), 0);
    }

    #[test]
    fn string_size_is_len() {
        assert_eq!("hello".to_string().size_bytes(), 5);
    }

    #[test]
    fn envelope_is_plain_data() {
        let e = Envelope {
            from: PartyId(0),
            to: PartyId(1),
            payload: 9u64,
        };
        let f = e.clone();
        assert_eq!(e, f);
    }
}
