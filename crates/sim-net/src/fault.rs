//! Deterministic, seed-driven fault plans for both network substrates.
//!
//! A [`FaultPlan`] describes *benign* infrastructure faults — distinct from
//! the Byzantine [`Adversary`](crate::Adversary): messages dropped or
//! duplicated by a lossy link, delay spikes, scheduled network partitions
//! that later heal, and parties that crash and recover. The plan is a pure
//! value; all randomness used when applying it is derived from
//! [`FaultPlan::seed`], so a run under a plan is exactly as reproducible as
//! a fault-free run.
//!
//! Two substrates consume plans:
//!
//! * the lockstep engine (`run_simulation_faulted`) applies the subset that
//!   is expressible in a synchronous round structure — crash/recovery
//!   windows and partitions ([`FaultPlan::lockstep_compatible`]);
//! * the asynchronous event loop (`async-net`) applies everything,
//!   including probabilistic per-message drop, duplication and delay
//!   spikes.
//!
//! Every fault firing is recorded as an `aa-trace` event, so traced runs
//! under a plan remain byte-identical across step modes and reruns.

use std::error::Error;
use std::fmt;

/// A scheduled network partition: `side` is cut off from the rest of the
/// network for rounds `from_round..heal_round` (the heal round itself runs
/// with the partition healed). Links *within* `side` and within its
/// complement keep working.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Parties on the severed side of the cut.
    pub side: Vec<usize>,
    /// First round (1-based) in which the cut is in effect.
    pub from_round: u32,
    /// First round in which the cut is no longer in effect; use
    /// `u32::MAX` for a partition that never heals.
    pub heal_round: u32,
}

impl Partition {
    /// Whether the cut is in effect in `round`.
    pub fn active(&self, round: u32) -> bool {
        self.from_round <= round && round < self.heal_round
    }

    /// Whether this partition separates `a` from `b` in `round`.
    pub fn severs(&self, round: u32, a: usize, b: usize) -> bool {
        self.active(round) && (self.side.contains(&a) != self.side.contains(&b))
    }
}

/// A benign crash with scheduled recovery: the party is frozen (not
/// stepped, sends suppressed, inbound messages lost) for rounds
/// `crash_round..recover_round`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashFault {
    /// The crashing party.
    pub party: usize,
    /// First round (1-based) the party is down.
    pub crash_round: u32,
    /// First round the party is back up; use `u32::MAX` for a permanent
    /// crash.
    pub recover_round: u32,
}

impl CrashFault {
    /// Whether the party is down in `round`.
    pub fn down(&self, round: u32) -> bool {
        self.crash_round <= round && round < self.recover_round
    }
}

/// A deterministic fault-injection plan.
///
/// The probabilistic link faults (`*_permille` fields) only apply in the
/// asynchronous substrate; the scheduled faults (`partitions`, `crashes`)
/// apply in both. [`FaultPlan::none`] is the identity plan: running under
/// it is observably identical to not passing a plan at all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for all probabilistic fault decisions.
    pub seed: u64,
    /// Per-message drop probability in permille (0..=1000), async only.
    pub drop_permille: u32,
    /// Per-message duplication probability in permille, async only.
    pub dup_permille: u32,
    /// Per-message delay-spike probability in permille (the delay is
    /// forced to the maximum of the delay model's range), async only.
    pub delay_spike_permille: u32,
    /// Scheduled partitions.
    pub partitions: Vec<Partition>,
    /// Scheduled crash/recovery windows.
    pub crashes: Vec<CrashFault>,
}

impl FaultPlan {
    /// The identity plan: no faults.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_permille: 0,
            dup_permille: 0,
            delay_spike_permille: 0,
            partitions: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// Whether the plan injects no faults at all.
    pub fn is_empty(&self) -> bool {
        self.drop_permille == 0
            && self.dup_permille == 0
            && self.delay_spike_permille == 0
            && self.partitions.is_empty()
            && self.crashes.is_empty()
    }

    /// Whether every fault in the plan is expressible in the lockstep
    /// engine (only scheduled crashes and partitions are; probabilistic
    /// per-message faults have no synchronous-round meaning).
    pub fn lockstep_compatible(&self) -> bool {
        self.drop_permille == 0 && self.dup_permille == 0 && self.delay_spike_permille == 0
    }

    /// Whether every link is eventually connected forever: all partitions
    /// heal and all crashes recover. Under such a plan a retransmitting
    /// protocol is guaranteed to terminate.
    pub fn eventually_connected(&self) -> bool {
        self.partitions.iter().all(|p| p.heal_round != u32::MAX)
            && self.crashes.iter().all(|c| c.recover_round != u32::MAX)
    }

    /// Parties whose crash never recovers (`recover_round == u32::MAX`),
    /// deduplicated and sorted.
    pub fn permanently_crashed(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .crashes
            .iter()
            .filter(|c| c.recover_round == u32::MAX)
            .map(|c| c.party)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether `party` is down in `round` under some crash window.
    pub fn crashed_in(&self, party: usize, round: u32) -> bool {
        self.crashes
            .iter()
            .any(|c| c.party == party && c.down(round))
    }

    /// Whether the link `a -> b` is severed in `round` by some partition.
    pub fn severed(&self, round: u32, a: usize, b: usize) -> bool {
        self.partitions.iter().any(|p| p.severs(round, a, b))
    }

    /// The last round in which any scheduled fault is still in effect
    /// (never-healing windows contribute nothing; callers that need
    /// termination should check [`FaultPlan::eventually_connected`]).
    pub fn scheduled_extent(&self) -> u32 {
        let p = self
            .partitions
            .iter()
            .filter(|p| p.heal_round != u32::MAX)
            .map(|p| p.heal_round)
            .max()
            .unwrap_or(0);
        let c = self
            .crashes
            .iter()
            .filter(|c| c.recover_round != u32::MAX)
            .map(|c| c.recover_round)
            .max()
            .unwrap_or(0);
        p.max(c)
    }

    /// Validates the plan against a network of `n` parties.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found.
    pub fn validate(&self, n: usize) -> Result<(), FaultPlanError> {
        for &permille in [
            self.drop_permille,
            self.dup_permille,
            self.delay_spike_permille,
        ]
        .iter()
        {
            if permille > 1000 {
                return Err(FaultPlanError::BadPermille { permille });
            }
        }
        for (id, p) in self.partitions.iter().enumerate() {
            if p.side.is_empty() || p.side.len() >= n {
                return Err(FaultPlanError::BadPartitionSide {
                    id,
                    size: p.side.len(),
                    n,
                });
            }
            if let Some(&party) = p.side.iter().find(|&&x| x >= n) {
                return Err(FaultPlanError::PartyOutOfRange { party, n });
            }
            if p.from_round == 0 {
                return Err(FaultPlanError::BadWindow {
                    what: "partition",
                    from: p.from_round,
                    until: p.heal_round,
                });
            }
            // `heal_round == from_round` is an empty window — a valid
            // no-op partition (active in no round). Only a window that
            // heals strictly *before* it starts is malformed.
            if p.heal_round < p.from_round {
                return Err(FaultPlanError::ReversedWindow {
                    what: "partition",
                    from: p.from_round,
                    until: p.heal_round,
                });
            }
        }
        for c in &self.crashes {
            if c.party >= n {
                return Err(FaultPlanError::PartyOutOfRange { party: c.party, n });
            }
            if c.crash_round == 0 {
                return Err(FaultPlanError::BadWindow {
                    what: "crash",
                    from: c.crash_round,
                    until: c.recover_round,
                });
            }
            // Likewise `recover_round == crash_round` is an empty, no-op
            // crash; `recover_round < crash_round` is reversed.
            if c.recover_round < c.crash_round {
                return Err(FaultPlanError::ReversedWindow {
                    what: "crash",
                    from: c.crash_round,
                    until: c.recover_round,
                });
            }
        }
        Ok(())
    }
}

/// Why a [`FaultPlan`] is structurally invalid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultPlanError {
    /// A probability field exceeds 1000 permille.
    BadPermille {
        /// The offending value.
        permille: u32,
    },
    /// A partition side is empty or covers the whole network.
    BadPartitionSide {
        /// Index of the partition in the plan.
        id: usize,
        /// The side's size.
        size: usize,
        /// Number of parties.
        n: usize,
    },
    /// A party index is out of range.
    PartyOutOfRange {
        /// The offending index.
        party: usize,
        /// Number of parties.
        n: usize,
    },
    /// A fault window starts at round 0 (rounds are 1-based).
    BadWindow {
        /// `"partition"` or `"crash"`.
        what: &'static str,
        /// Start round.
        from: u32,
        /// End round.
        until: u32,
    },
    /// A fault window ends strictly before it starts (an *empty* window,
    /// `until == from`, is accepted as a no-op).
    ReversedWindow {
        /// `"partition"` or `"crash"`.
        what: &'static str,
        /// Start round.
        from: u32,
        /// End round.
        until: u32,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::BadPermille { permille } => {
                write!(f, "fault probability {permille} permille exceeds 1000")
            }
            FaultPlanError::BadPartitionSide { id, size, n } => {
                write!(
                    f,
                    "partition {id}: side of {size} parties must be a proper nonempty \
                     subset of the {n}-party network"
                )
            }
            FaultPlanError::PartyOutOfRange { party, n } => {
                write!(f, "fault names party {party} but the network has n = {n}")
            }
            FaultPlanError::BadWindow { what, from, until } => {
                write!(
                    f,
                    "{what} window [{from}, {until}) must start at round >= 1 (rounds are 1-based)"
                )
            }
            FaultPlanError::ReversedWindow { what, from, until } => {
                let (start, end) = match *what {
                    "crash" => ("crashes", "recovers"),
                    _ => ("starts", "heals"),
                };
                write!(
                    f,
                    "{what} window [{from}, {until}) {end} at round {until}, strictly before it \
                     {start} at round {from}; an empty window (until == from) is the way to \
                     express a no-op"
                )
            }
        }
    }
}

impl Error for FaultPlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty_and_compatible() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(plan.lockstep_compatible());
        assert!(plan.eventually_connected());
        assert_eq!(plan.scheduled_extent(), 0);
        plan.validate(4).unwrap();
    }

    #[test]
    fn windows_and_cuts_are_half_open() {
        let plan = FaultPlan {
            partitions: vec![Partition {
                side: vec![0, 1],
                from_round: 2,
                heal_round: 4,
            }],
            crashes: vec![CrashFault {
                party: 3,
                crash_round: 1,
                recover_round: 3,
            }],
            ..FaultPlan::none()
        };
        plan.validate(5).unwrap();
        assert!(!plan.severed(1, 0, 2));
        assert!(plan.severed(2, 0, 2));
        assert!(plan.severed(3, 2, 1));
        assert!(!plan.severed(4, 0, 2));
        // Links within a side keep working.
        assert!(!plan.severed(2, 0, 1));
        assert!(!plan.severed(2, 2, 3));
        assert!(!plan.crashed_in(3, 0));
        assert!(plan.crashed_in(3, 1));
        assert!(plan.crashed_in(3, 2));
        assert!(!plan.crashed_in(3, 3));
        assert_eq!(plan.scheduled_extent(), 4);
        assert!(plan.eventually_connected());
    }

    #[test]
    fn permanent_faults_are_flagged() {
        let plan = FaultPlan {
            crashes: vec![
                CrashFault {
                    party: 1,
                    crash_round: 2,
                    recover_round: u32::MAX,
                },
                CrashFault {
                    party: 0,
                    crash_round: 1,
                    recover_round: 3,
                },
            ],
            ..FaultPlan::none()
        };
        plan.validate(4).unwrap();
        assert!(!plan.eventually_connected());
        assert_eq!(plan.permanently_crashed(), vec![1]);
        // The permanent window does not inflate the scheduled extent.
        assert_eq!(plan.scheduled_extent(), 3);
    }

    #[test]
    fn validation_rejects_malformed_plans() {
        let n = 4;
        let bad_permille = FaultPlan {
            drop_permille: 1001,
            ..FaultPlan::none()
        };
        assert_eq!(
            bad_permille.validate(n),
            Err(FaultPlanError::BadPermille { permille: 1001 })
        );
        let whole_network = FaultPlan {
            partitions: vec![Partition {
                side: vec![0, 1, 2, 3],
                from_round: 1,
                heal_round: 2,
            }],
            ..FaultPlan::none()
        };
        assert!(matches!(
            whole_network.validate(n),
            Err(FaultPlanError::BadPartitionSide { .. })
        ));
        let out_of_range = FaultPlan {
            crashes: vec![CrashFault {
                party: 9,
                crash_round: 1,
                recover_round: 2,
            }],
            ..FaultPlan::none()
        };
        assert_eq!(
            out_of_range.validate(n),
            Err(FaultPlanError::PartyOutOfRange { party: 9, n })
        );
        let round_zero = FaultPlan {
            crashes: vec![CrashFault {
                party: 0,
                crash_round: 0,
                recover_round: 3,
            }],
            ..FaultPlan::none()
        };
        assert!(matches!(
            round_zero.validate(n),
            Err(FaultPlanError::BadWindow { what: "crash", .. })
        ));
    }

    #[test]
    fn empty_windows_are_valid_no_ops() {
        // heal_round == from_round: a partition that is active in no
        // round; recover_round == crash_round likewise for crashes.
        let plan = FaultPlan {
            partitions: vec![Partition {
                side: vec![0],
                from_round: 3,
                heal_round: 3,
            }],
            crashes: vec![CrashFault {
                party: 1,
                crash_round: 3,
                recover_round: 3,
            }],
            ..FaultPlan::none()
        };
        plan.validate(4).unwrap();
        for round in 0..10 {
            assert!(!plan.severed(round, 0, 1), "round {round}");
            assert!(!plan.crashed_in(1, round), "round {round}");
        }
        assert!(plan.eventually_connected());
        assert!(plan.permanently_crashed().is_empty());
    }

    #[test]
    fn reversed_windows_are_rejected_with_a_precise_message() {
        let plan = FaultPlan {
            crashes: vec![CrashFault {
                party: 0,
                crash_round: 5,
                recover_round: 2,
            }],
            ..FaultPlan::none()
        };
        let err = plan.validate(4).unwrap_err();
        assert_eq!(
            err,
            FaultPlanError::ReversedWindow {
                what: "crash",
                from: 5,
                until: 2,
            }
        );
        let msg = err.to_string();
        assert!(
            msg.contains("recovers at round 2") && msg.contains("crashes at round 5"),
            "message must name the reversed bounds: {msg}"
        );

        let plan = FaultPlan {
            partitions: vec![Partition {
                side: vec![0],
                from_round: 4,
                heal_round: 1,
            }],
            ..FaultPlan::none()
        };
        assert!(matches!(
            plan.validate(4),
            Err(FaultPlanError::ReversedWindow {
                what: "partition",
                from: 4,
                until: 1,
            })
        ));
    }

    #[test]
    fn probabilistic_faults_break_lockstep_compatibility() {
        let plan = FaultPlan {
            dup_permille: 10,
            ..FaultPlan::none()
        };
        assert!(!plan.lockstep_compatible());
        assert!(!plan.is_empty());
    }
}
