//! Inbound and outbound mailboxes: the zero-copy broadcast fan-out layer.
//!
//! A broadcast used to be materialised as `n` cloned [`Envelope`]s — one
//! per recipient — before the engine even decided whether to deliver it.
//! For the all-to-all protocols in this workspace (gradecast, `RealAA`,
//! `TreeAA`) that made every round Θ(n²) payload clones and Θ(n³) total
//! inbox insertions per gradecast batch.
//!
//! This module splits traffic by *shape* instead:
//!
//! * an [`Outbox`] keeps unicasts as explicit envelopes and broadcasts as a
//!   bare payload list — a broadcast costs one `push`, not `n` clones;
//! * an [`Inbox`] hands every recipient the round's broadcast traffic as a
//!   single shared list (an [`Arc`] built once by the engine) plus a small
//!   per-recipient `direct` list of unicasts and adversary injections.
//!
//! Recipients cannot tell the difference: [`Inbox::iter`] yields each
//! message once with its authenticated sender, exactly as if the envelopes
//! had been materialised.

use std::sync::Arc;

use crate::message::{Envelope, PartyId, Payload};

/// A delivered message: the payload plus its engine-authenticated sender.
///
/// The recipient is implicit — an inbox belongs to exactly one party — so
/// unlike [`Envelope`] there is no `to` field to carry around n times for
/// a broadcast.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Received<M> {
    /// True sender (authenticated by the engine).
    pub from: PartyId,
    /// The message body.
    pub payload: M,
}

/// One party's view of the messages delivered to it this round.
///
/// Iteration order is deterministic: first the round's broadcasts (by
/// sender id, emission order within a sender), then direct traffic —
/// unicasts by sender id, adversary injections last in injection order.
#[derive(Clone, Debug)]
pub struct Inbox<M> {
    /// The round's broadcast traffic, shared by every recipient.
    pub(crate) broadcasts: Arc<Vec<Received<M>>>,
    /// Unicasts and injections addressed to this party only.
    pub(crate) direct: Vec<Received<M>>,
}

impl<M> Default for Inbox<M> {
    fn default() -> Self {
        Inbox {
            broadcasts: Arc::new(Vec::new()),
            direct: Vec::new(),
        }
    }
}

impl<M> Inbox<M> {
    /// An empty inbox (what round 1 delivers).
    pub fn empty() -> Self {
        Inbox::default()
    }

    /// An inbox holding exactly `messages`, in order.
    ///
    /// The engine builds inboxes itself; this constructor exists for
    /// *composed* protocols that drive an inner protocol's `step` by hand
    /// (see `tree-aa`) and for tests.
    pub fn from_messages(messages: Vec<Received<M>>) -> Self {
        Inbox {
            broadcasts: Arc::new(Vec::new()),
            direct: messages,
        }
    }

    /// An inbox holding the payloads of `envelopes`, in order (the `to`
    /// fields are discarded — an inbox is already addressed).
    pub fn from_envelopes(envelopes: Vec<Envelope<M>>) -> Self {
        Inbox::from_messages(
            envelopes
                .into_iter()
                .map(|e| Received {
                    from: e.from,
                    payload: e.payload,
                })
                .collect(),
        )
    }

    /// Number of messages delivered.
    pub fn len(&self) -> usize {
        self.broadcasts.len() + self.direct.len()
    }

    /// Whether nothing was delivered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All delivered messages: shared broadcasts first, then direct
    /// traffic.
    pub fn iter(&self) -> impl Iterator<Item = &Received<M>> {
        self.broadcasts.iter().chain(self.direct.iter())
    }
}

impl<'a, M> IntoIterator for &'a Inbox<M> {
    type Item = &'a Received<M>;
    type IntoIter =
        std::iter::Chain<std::slice::Iter<'a, Received<M>>, std::slice::Iter<'a, Received<M>>>;

    fn into_iter(self) -> Self::IntoIter {
        self.broadcasts.iter().chain(self.direct.iter())
    }
}

/// One party's tentative traffic for a round, split by shape.
///
/// Built by [`RoundCtx::into_outbox`](crate::RoundCtx::into_outbox);
/// consumed by the engine (which moves each broadcast payload into the
/// round's shared list — no per-recipient clone ever happens) and shown to
/// the adversary.
#[derive(Clone, Debug)]
pub struct Outbox<M> {
    pub(crate) from: PartyId,
    pub(crate) n: usize,
    pub(crate) unicasts: Vec<Envelope<M>>,
    pub(crate) broadcasts: Vec<M>,
}

impl<M: Payload> Outbox<M> {
    /// An empty outbox for `from` in an `n`-party network.
    pub fn new(from: PartyId, n: usize) -> Self {
        Outbox {
            from,
            n,
            unicasts: Vec::new(),
            broadcasts: Vec::new(),
        }
    }

    /// The party whose traffic this is.
    pub fn sender(&self) -> PartyId {
        self.from
    }

    /// Number of parties in the network (every broadcast fans out to all
    /// of them, sender included).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The point-to-point messages, in emission order.
    pub fn unicasts(&self) -> &[Envelope<M>] {
        &self.unicasts
    }

    /// The broadcast payloads, in emission order. Each is logically
    /// addressed to all `n` parties.
    pub fn broadcasts(&self) -> &[M] {
        &self.broadcasts
    }

    /// Whether no traffic was emitted.
    pub fn is_empty(&self) -> bool {
        self.unicasts.is_empty() && self.broadcasts.is_empty()
    }

    /// The number of point-to-point messages this outbox expands to:
    /// `unicasts + broadcasts × n`.
    pub fn message_count(&self) -> usize {
        self.unicasts.len() + self.broadcasts.len() * self.n
    }

    /// The traffic as materialised envelopes: each broadcast expanded to
    /// all `n` recipients (in id order), then the unicasts.
    ///
    /// This is the *expensive* compatibility view — it clones payloads —
    /// intended for adversaries that rewrite a corrupted party's traffic
    /// per recipient. The engine itself never calls it.
    pub fn envelopes(&self) -> impl Iterator<Item = Envelope<M>> + '_ {
        let from = self.from;
        let n = self.n;
        self.broadcasts
            .iter()
            .flat_map(move |m| {
                (0..n).map(move |i| Envelope {
                    from,
                    to: PartyId(i),
                    payload: m.clone(),
                })
            })
            .chain(self.unicasts.iter().cloned())
    }

    /// Decomposes into `(unicasts, broadcasts)`, e.g. for re-wrapping an
    /// inner protocol's traffic into an outer message type.
    pub fn into_parts(self) -> (Vec<Envelope<M>>, Vec<M>) {
        (self.unicasts, self.broadcasts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inbox_orders_broadcasts_before_direct() {
        let inbox = Inbox {
            broadcasts: Arc::new(vec![Received {
                from: PartyId(0),
                payload: 10u64,
            }]),
            direct: vec![Received {
                from: PartyId(2),
                payload: 20,
            }],
        };
        let seen: Vec<(usize, u64)> = inbox.iter().map(|r| (r.from.index(), r.payload)).collect();
        assert_eq!(seen, [(0, 10), (2, 20)]);
        assert_eq!(inbox.len(), 2);
        assert!(!inbox.is_empty());
    }

    #[test]
    fn inbox_from_envelopes_drops_addressing() {
        let inbox = Inbox::from_envelopes(vec![Envelope {
            from: PartyId(1),
            to: PartyId(0),
            payload: 7u64,
        }]);
        assert_eq!(
            inbox.iter().next().unwrap(),
            &Received {
                from: PartyId(1),
                payload: 7
            }
        );
    }

    #[test]
    fn shared_broadcast_list_is_one_allocation() {
        let shared = Arc::new(vec![Received {
            from: PartyId(0),
            payload: 1u64,
        }]);
        let a = Inbox {
            broadcasts: Arc::clone(&shared),
            direct: Vec::new(),
        };
        let b = Inbox {
            broadcasts: Arc::clone(&shared),
            direct: Vec::new(),
        };
        assert!(Arc::ptr_eq(&a.broadcasts, &b.broadcasts));
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn outbox_counts_and_expands_broadcasts() {
        let mut ob: Outbox<u64> = Outbox::new(PartyId(1), 3);
        ob.broadcasts.push(5);
        ob.unicasts.push(Envelope {
            from: PartyId(1),
            to: PartyId(0),
            payload: 9,
        });
        assert_eq!(ob.message_count(), 4);
        let envs: Vec<Envelope<u64>> = ob.envelopes().collect();
        assert_eq!(envs.len(), 4);
        assert!(envs[..3]
            .iter()
            .enumerate()
            .all(|(i, e)| { e.from == PartyId(1) && e.to == PartyId(i) && e.payload == 5 }));
        assert_eq!(envs[3].payload, 9);
    }

    #[test]
    fn outbox_into_parts_preserves_shape() {
        let mut ob: Outbox<u64> = Outbox::new(PartyId(0), 2);
        ob.broadcasts.push(1);
        ob.broadcasts.push(2);
        let (unicasts, broadcasts) = ob.into_parts();
        assert!(unicasts.is_empty());
        assert_eq!(broadcasts, [1, 2]);
    }
}
