//! Graceful degradation: structured outcomes with evidence certificates.
//!
//! Every protocol in this workspace assumes `t < n/3`. When reality
//! violates that bound — more than `t` parties crash, stay silent, or
//! provably equivocate — a bare output value would be *silently wrong*.
//! This module gives protocols a vocabulary for saying so instead: an
//! [`Outcome`] is either a plain [`Outcome::Value`] or an
//! [`Outcome::Degraded`] carrying the best-effort fallback value *and* an
//! [`EvidenceCertificate`] naming the observed faults that exceeded the
//! budget.
//!
//! The [`Monitored`] wrapper retrofits degradation onto any synchronous
//! [`Protocol`] without touching it: it watches each round's inbox through
//! a [`SilenceMonitor`] and wraps the inner output accordingly. Protocols
//! with richer fault views (e.g. `async-aa`'s reliable-broadcast layer,
//! which can *prove* equivocation from conflicting echo quorums) build
//! their certificates directly.

use std::collections::BTreeMap;
use std::fmt;

use crate::mailbox::Inbox;
use crate::message::Payload;
use crate::party::{Protocol, RoundCtx};

/// One piece of observed-fault evidence.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Evidence {
    /// A party failed to deliver anything in a round where at least
    /// `n − t` parties did (so under `t < n/3` it cannot be explained by
    /// scheduling alone).
    Silence {
        /// The silent party.
        party: usize,
        /// The first round the silence was observed.
        round: u32,
    },
    /// A party provably sent conflicting messages where the protocol
    /// required consistency (e.g. two distinct values each backed by an
    /// echo quorum intersecting the honest set).
    Equivocation {
        /// The equivocating party.
        party: usize,
        /// Where the conflict was observed (protocol-specific, e.g.
        /// `"rbc iter 2 broadcaster 5"`).
        context: String,
    },
}

impl fmt::Display for Evidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Evidence::Silence { party, round } => {
                write!(f, "party {party} silent since round {round}")
            }
            Evidence::Equivocation { party, context } => {
                write!(f, "party {party} equivocated ({context})")
            }
        }
    }
}

impl Evidence {
    /// The implicated party.
    pub fn party(&self) -> usize {
        match self {
            Evidence::Silence { party, .. } | Evidence::Equivocation { party, .. } => *party,
        }
    }
}

/// The evidence justifying a [`Outcome::Degraded`] outcome: the observed
/// faulty parties exceeded the configured budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvidenceCertificate {
    /// The individual observations, sorted (one per implicated party at
    /// minimum).
    pub evidence: Vec<Evidence>,
    /// Number of distinct implicated parties.
    pub observed: usize,
    /// The configured corruption budget `t` that was exceeded.
    pub budget: usize,
}

impl EvidenceCertificate {
    /// Builds a certificate from raw evidence, deduplicating by party and
    /// sorting for determinism.
    pub fn new(mut evidence: Vec<Evidence>, budget: usize) -> Self {
        evidence.sort();
        evidence.dedup();
        let mut parties: Vec<usize> = evidence.iter().map(Evidence::party).collect();
        parties.sort_unstable();
        parties.dedup();
        EvidenceCertificate {
            evidence,
            observed: parties.len(),
            budget,
        }
    }

    /// Whether the certificate actually demonstrates an over-threshold
    /// condition (more implicated parties than the budget allows).
    pub fn exceeds_budget(&self) -> bool {
        self.observed > self.budget
    }
}

impl fmt::Display for EvidenceCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} faulty parties observed (budget t = {}):",
            self.observed, self.budget
        )?;
        for e in &self.evidence {
            write!(f, " [{e}]")?;
        }
        Ok(())
    }
}

/// A degraded result: the best-effort fallback value plus the certificate
/// explaining why the protocol's guarantees no longer apply.
#[derive(Clone, Debug, PartialEq)]
pub struct Degradation<T> {
    /// Best-effort value (for AA protocols: still inside the input hull
    /// the party has observed).
    pub fallback: T,
    /// Why the run degraded.
    pub certificate: EvidenceCertificate,
}

/// A protocol outcome that distinguishes a fully guaranteed value from a
/// degraded best-effort one.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome<T> {
    /// The protocol terminated with all its guarantees intact.
    Value(T),
    /// Observed faults exceeded the budget; guarantees are void, but the
    /// carried value is still the party's best effort and the certificate
    /// is checkable.
    Degraded(Degradation<T>),
}

impl<T> Outcome<T> {
    /// The carried value, guaranteed or best-effort.
    pub fn value(&self) -> &T {
        match self {
            Outcome::Value(v) => v,
            Outcome::Degraded(d) => &d.fallback,
        }
    }

    /// Consumes the outcome, returning the carried value.
    pub fn into_value(self) -> T {
        match self {
            Outcome::Value(v) => v,
            Outcome::Degraded(d) => d.fallback,
        }
    }

    /// Whether this is a degraded outcome.
    pub fn is_degraded(&self) -> bool {
        matches!(self, Outcome::Degraded(_))
    }

    /// The certificate, if degraded.
    pub fn certificate(&self) -> Option<&EvidenceCertificate> {
        match self {
            Outcome::Value(_) => None,
            Outcome::Degraded(d) => Some(&d.certificate),
        }
    }
}

/// A per-round silence detector.
///
/// The rule: in any round where *some other party's* message arrived —
/// evidence the network and the protocol schedule were live — every party
/// that delivered nothing is suspected as of that round; a suspect that is
/// heard again is cleared (crash-*recovery* is not a standing fault). In a
/// round with no traffic at all, nobody is suspected: schedule-wide
/// silence is indistinguishable from a quiet protocol phase.
///
/// For the all-to-all protocols in this workspace (every honest party
/// broadcasts in every round of its schedule), an honest, connected party
/// is heard in every observed round, so under `t < n/3` actually holding
/// the *final* suspect set is at most the `t` faulty parties and a correct
/// run is never misclassified as over-threshold. Transient suspicion
/// (e.g. during a partition that later heals) clears itself.
#[derive(Clone, Debug)]
pub struct SilenceMonitor {
    n: usize,
    t: usize,
    first_silent: BTreeMap<usize, u32>,
}

impl SilenceMonitor {
    /// Creates a monitor for an `n`-party network with budget `t`.
    pub fn new(n: usize, t: usize) -> Self {
        SilenceMonitor {
            n,
            t,
            first_silent: BTreeMap::new(),
        }
    }

    /// Feeds one round's observation: the deduplicated set of senders that
    /// delivered to this party (as a membership bitmap) plus the party's
    /// own id (never suspected).
    pub fn observe_round(&mut self, round: u32, me: usize, seen: &[bool]) {
        let any_speaker = seen
            .iter()
            .enumerate()
            .any(|(party, &present)| present && party != me);
        for (party, &present) in seen.iter().enumerate().take(self.n) {
            if party == me {
                continue;
            }
            if present {
                self.first_silent.remove(&party);
            } else if any_speaker {
                self.first_silent.entry(party).or_insert(round);
            }
        }
    }

    /// Convenience: observes an inbox directly.
    pub fn observe_inbox<M>(&mut self, round: u32, me: usize, inbox: &Inbox<M>) {
        let mut seen = vec![false; self.n];
        seen[me] = true; // a party always "hears" itself
        for r in inbox.iter() {
            if r.from.index() < self.n {
                seen[r.from.index()] = true;
            }
        }
        self.observe_round(round, me, &seen);
    }

    /// The currently suspected parties with the first round each went
    /// silent.
    pub fn suspects(&self) -> &BTreeMap<usize, u32> {
        &self.first_silent
    }

    /// Whether the suspect count exceeds the budget.
    pub fn over_threshold(&self) -> bool {
        self.first_silent.len() > self.t
    }

    /// The suspects as [`Evidence`].
    pub fn evidence(&self) -> Vec<Evidence> {
        self.first_silent
            .iter()
            .map(|(&party, &round)| Evidence::Silence { party, round })
            .collect()
    }

    /// A certificate over the current suspects.
    pub fn certificate(&self) -> EvidenceCertificate {
        EvidenceCertificate::new(self.evidence(), self.t)
    }
}

/// Wraps any synchronous protocol with silence-based degradation: the
/// output becomes an [`Outcome`] that turns [`Outcome::Degraded`] when the
/// observed silent-party count exceeds `t`.
///
/// Message traffic is completely unchanged — the wrapper only *reads* the
/// inbox — so a network of `Monitored<P>` parties is wire-compatible with
/// a network of plain `P` parties.
#[derive(Clone, Debug)]
pub struct Monitored<P> {
    inner: P,
    monitor: SilenceMonitor,
}

impl<P> Monitored<P> {
    /// Wraps `inner` for an `n`-party network with budget `t`.
    pub fn new(inner: P, n: usize, t: usize) -> Self {
        Monitored {
            inner,
            monitor: SilenceMonitor::new(n, t),
        }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The silence monitor's current state.
    pub fn monitor(&self) -> &SilenceMonitor {
        &self.monitor
    }
}

impl<P: Protocol> Protocol for Monitored<P>
where
    P::Msg: Payload,
{
    type Msg = P::Msg;
    type Output = Outcome<P::Output>;

    fn step(&mut self, round: u32, inbox: &Inbox<Self::Msg>, ctx: &mut RoundCtx<Self::Msg>) {
        // Round 1 delivers an empty inbox by construction; observing it
        // would suspect everyone, so only rounds with history count.
        if round > 1 {
            self.monitor.observe_inbox(round, ctx.me().index(), inbox);
        }
        self.inner.step(round, inbox, ctx);
    }

    fn output(&self) -> Option<Self::Output> {
        let value = self.inner.output()?;
        Some(if self.monitor.over_threshold() {
            Outcome::Degraded(Degradation {
                fallback: value,
                certificate: self.monitor.certificate(),
            })
        } else {
            Outcome::Value(value)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let v: Outcome<u32> = Outcome::Value(7);
        assert_eq!(*v.value(), 7);
        assert!(!v.is_degraded());
        assert!(v.certificate().is_none());

        let cert = EvidenceCertificate::new(
            vec![
                Evidence::Silence { party: 1, round: 3 },
                Evidence::Equivocation {
                    party: 2,
                    context: "iter 0".into(),
                },
            ],
            1,
        );
        assert_eq!(cert.observed, 2);
        assert!(cert.exceeds_budget());
        let d: Outcome<u32> = Outcome::Degraded(Degradation {
            fallback: 9,
            certificate: cert.clone(),
        });
        assert_eq!(*d.value(), 9);
        assert!(d.is_degraded());
        assert_eq!(d.certificate(), Some(&cert));
        assert_eq!(d.into_value(), 9);
    }

    #[test]
    fn certificate_dedups_by_party_and_displays() {
        let cert = EvidenceCertificate::new(
            vec![
                Evidence::Silence { party: 3, round: 2 },
                Evidence::Silence { party: 3, round: 2 },
                Evidence::Silence { party: 1, round: 4 },
            ],
            2,
        );
        assert_eq!(cert.evidence.len(), 2);
        assert_eq!(cert.observed, 2);
        assert!(!cert.exceeds_budget());
        let text = cert.to_string();
        assert!(text.contains("budget t = 2"), "{text}");
        assert!(text.contains("party 1 silent since round 4"), "{text}");
    }

    #[test]
    fn silence_monitor_suspects_and_clears() {
        let mut m = SilenceMonitor::new(4, 1);
        // One silent party while others speak: suspected, under budget.
        m.observe_round(2, 0, &[true, true, true, false]);
        assert_eq!(m.suspects().get(&3), Some(&2));
        assert!(!m.over_threshold());
        // A second silent party crosses t = 1.
        m.observe_round(3, 0, &[true, true, false, false]);
        assert!(m.over_threshold());
        let cert = m.certificate();
        assert_eq!(cert.observed, 2);
        assert!(cert.exceeds_budget());
        // Recovery: both heard again, suspicion clears entirely.
        m.observe_round(4, 0, &[true, true, true, true]);
        assert!(m.suspects().is_empty());
        assert!(!m.over_threshold());
    }

    #[test]
    fn schedule_wide_silence_suspects_nobody() {
        let mut m = SilenceMonitor::new(3, 0);
        // Only my own echo arrived: a quiet protocol phase, not a fault.
        m.observe_round(2, 1, &[false, true, false]);
        assert!(m.suspects().is_empty());
    }

    #[test]
    fn self_is_never_suspected() {
        let mut m = SilenceMonitor::new(3, 0);
        // Party 2 speaks; both 0 and me (1) are absent, but only 0 is
        // suspected.
        m.observe_round(2, 1, &[false, false, true]);
        assert_eq!(m.suspects().keys().copied().collect::<Vec<_>>(), vec![0]);
    }
}
