//! A deterministic, synchronous, round-based message-passing simulator with
//! a Byzantine adversary framework.
//!
//! This crate is the execution substrate for every protocol in the
//! workspace. It models the standard synchronous network of the paper
//! (Section 2): `n` parties on a fully connected network of *authenticated*
//! channels, lockstep rounds, guaranteed delivery within one round, and a
//! computationally unbounded, **rushing, adaptive** adversary that may
//! permanently corrupt up to `t` parties.
//!
//! # Execution model
//!
//! * Protocols are round state machines implementing [`Protocol`]: in each
//!   round they read the messages delivered to them (sent in the previous
//!   round) and emit new messages through a [`RoundCtx`].
//! * Channels are authenticated: an [`Envelope`]'s `from` field is stamped
//!   by the engine and cannot be forged by any sender, honest or corrupt.
//! * The adversary ([`Adversary`]) runs *after* the honest parties in every
//!   round (rushing): it inspects all traffic of the current round, may
//!   corrupt further parties mid-execution (up to the budget `t`), discards
//!   or forwards the tentative messages of corrupted parties, and injects
//!   arbitrary messages from corrupted senders — including different
//!   messages to different recipients (equivocation).
//! * Everything is deterministic: honest protocols are deterministic and
//!   adversaries own their seeded RNGs, so a run is a pure function of
//!   (configuration, protocol, adversary, seed).
//!
//! # Performance model
//!
//! Traffic is tracked by *shape*: a broadcast is stored once as a bare
//! payload ([`Outbox`]) and delivered to all `n` recipients as one shared
//! per-round list ([`Inbox`]), so all-to-all rounds cost O(n) payload
//! moves instead of O(n²) clones. Within a round, parties are stepped
//! sequentially or on several threads ([`StepMode`]) with byte-identical
//! results; see the `engine` module docs for the full breakdown.
//!
//! # Example
//!
//! ```
//! use sim_net::{run_simulation, Inbox, Passive, PartyId, Protocol, RoundCtx,
//!               SimConfig};
//!
//! /// Every party broadcasts its id and outputs the sum of all ids it saw.
//! struct SumParty { id: PartyId, sum: u64 }
//!
//! impl Protocol for SumParty {
//!     type Msg = u64;
//!     type Output = u64;
//!     fn step(&mut self, round: u32, inbox: &Inbox<u64>, ctx: &mut RoundCtx<u64>) {
//!         match round {
//!             1 => ctx.broadcast(self.id.index() as u64),
//!             _ => {
//!                 self.sum = inbox.iter().map(|e| e.payload).sum();
//!             }
//!         }
//!     }
//!     fn output(&self) -> Option<u64> {
//!         (self.sum > 0).then_some(self.sum)
//!     }
//! }
//!
//! let cfg = SimConfig { n: 4, t: 0, max_rounds: 10 };
//! let report = run_simulation(cfg, |id, _n| SumParty { id, sum: 0 }, Passive).unwrap();
//! assert!(report.outputs.iter().all(|o| *o == Some(0 + 1 + 2 + 3)));
//! ```

#![warn(missing_docs)]
mod adversary;
mod engine;
mod fault;
mod mailbox;
mod message;
mod metrics;
mod outcome;
mod party;

pub use adversary::{
    Adversary, AdversaryCtx, BudgetExceeded, ComposedAdversary, CrashAdversary,
    EquivocatingAdversary, Passive, ScriptedAdversary, SelectiveOmission, StaticByzantine,
};
pub use engine::{
    auto_threads, run_simulation, run_simulation_faulted, run_simulation_faulted_traced,
    run_simulation_traced, run_simulation_with, EngineConfig, RunReport, SimConfig, SimError,
    StepMode, PARALLEL_THRESHOLD,
};
pub use fault::{CrashFault, FaultPlan, FaultPlanError, Partition};
pub use mailbox::{Inbox, Outbox, Received};
pub use message::{Envelope, PartyId, Payload};
pub use metrics::{Metrics, RoundMetrics};
pub use outcome::{Degradation, Evidence, EvidenceCertificate, Monitored, Outcome, SilenceMonitor};
pub use party::{step_standalone, Protocol, RoundCtx};

// Flight-recorder types, re-exported so protocol crates can emit events
// through their existing `sim-net` dependency.
pub use aa_trace::{EventKind, ProtoEvent, Trace, TraceEvent};
