//! The lockstep execution engine.

use std::error::Error;
use std::fmt;

use crate::adversary::{Adversary, AdversaryCtx};
use crate::message::{Envelope, PartyId, Payload};
use crate::metrics::{Metrics, RoundMetrics};
use crate::party::{Protocol, RoundCtx};

/// Static parameters of a simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of parties.
    pub n: usize,
    /// Corruption budget (`t < n` enforced; protocols typically require
    /// `t < n/3`, which is *their* precondition, not the engine's).
    pub t: usize,
    /// Hard stop: error out if honest parties have not all terminated by
    /// this round.
    pub max_rounds: u32,
}

/// Why a simulation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// `n == 0` or `t >= n`.
    BadConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// Some honest party had produced no output by `max_rounds`.
    MaxRoundsExceeded {
        /// The configured bound that was hit.
        max_rounds: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadConfig { reason } => write!(f, "bad simulation config: {reason}"),
            SimError::MaxRoundsExceeded { max_rounds } => {
                write!(f, "honest parties did not terminate within {max_rounds} rounds")
            }
        }
    }
}

impl Error for SimError {}

/// The result of a completed run.
#[derive(Clone, Debug)]
pub struct RunReport<O> {
    /// Per-party outputs; `None` exactly for corrupted parties.
    pub outputs: Vec<Option<O>>,
    /// Which parties ended the run corrupted.
    pub corrupted: Vec<bool>,
    /// Rounds executed until every honest party had an output.
    pub rounds_executed: u32,
    /// Communication metrics.
    pub metrics: Metrics,
}

impl<O: Clone> RunReport<O> {
    /// Outputs of the honest parties only.
    pub fn honest_outputs(&self) -> Vec<O> {
        self.outputs
            .iter()
            .zip(&self.corrupted)
            .filter(|(_, &c)| !c)
            .map(|(o, _)| o.clone().expect("honest parties have outputs on success"))
            .collect()
    }

    /// The communication round complexity: last round with traffic.
    pub fn communication_rounds(&self) -> u32 {
        self.metrics.communication_rounds()
    }
}

/// Runs a protocol instance against an adversary until every honest party
/// outputs.
///
/// `factory(id, n)` builds the party state machine for each id. The
/// adversary is invoked after the parties in every round (rushing) and may
/// adaptively corrupt up to `cfg.t` parties.
///
/// # Errors
///
/// * [`SimError::BadConfig`] if `n == 0` or `t >= n`.
/// * [`SimError::MaxRoundsExceeded`] if some honest party has no output
///   after `cfg.max_rounds` rounds — typically a deadlocked or
///   non-terminating protocol under test.
///
/// # Example
///
/// See the crate-level documentation.
pub fn run_simulation<P, A, F>(
    cfg: SimConfig,
    factory: F,
    mut adversary: A,
) -> Result<RunReport<P::Output>, SimError>
where
    P: Protocol,
    A: Adversary<P::Msg>,
    F: FnMut(PartyId, usize) -> P,
{
    let SimConfig { n, t, max_rounds } = cfg;
    if n == 0 {
        return Err(SimError::BadConfig { reason: "n must be positive".into() });
    }
    if t >= n {
        return Err(SimError::BadConfig { reason: format!("t = {t} must be < n = {n}") });
    }

    let mut factory = factory;
    let mut parties: Vec<P> = (0..n).map(|i| factory(PartyId(i), n)).collect();
    let mut corrupted = vec![false; n];
    let mut corrupted_count = 0usize;
    let mut inboxes: Vec<Vec<Envelope<P::Msg>>> = vec![Vec::new(); n];
    let mut metrics = Metrics::default();

    for round in 1..=max_rounds {
        // 1. Step every party (corrupted ones too: their tentative traffic
        //    is shown to the adversary, supporting omission/semi-honest
        //    strategies), collecting tentative outboxes.
        let mut tentative: Vec<Vec<Envelope<P::Msg>>> = Vec::with_capacity(n);
        for (i, party) in parties.iter_mut().enumerate() {
            let mut ctx = RoundCtx::new(PartyId(i), n);
            let inbox = std::mem::take(&mut inboxes[i]);
            party.step(round, &inbox, &mut ctx);
            tentative.push(ctx.into_outbox());
        }

        // 2. The adversary observes everything and acts (rushing,
        //    adaptive).
        let mut injected: Vec<Envelope<P::Msg>> = Vec::new();
        let mut forwarded = vec![false; n];
        {
            let mut actx = AdversaryCtx {
                round,
                n,
                t,
                corrupted: &mut corrupted,
                corrupted_count: &mut corrupted_count,
                tentative: &tentative,
                injected: &mut injected,
                forwarded: &mut forwarded,
            };
            adversary.round(&mut actx);
        }

        // 3. Deliver: honest tentative traffic verbatim; corrupted
        //    tentative traffic only if forwarded; plus adversary
        //    injections. Delivery order is deterministic: by sender id,
        //    injections last in injection order.
        let mut rm = RoundMetrics::default();
        for (i, outbox) in tentative.into_iter().enumerate() {
            let deliver = !corrupted[i] || forwarded[i];
            if !deliver {
                continue;
            }
            for env in outbox {
                rm.bytes += env.payload.size_bytes();
                if corrupted[i] {
                    rm.byzantine_messages += 1;
                } else {
                    rm.honest_messages += 1;
                }
                inboxes[env.to.index()].push(env);
            }
        }
        for env in injected {
            debug_assert!(corrupted[env.from.index()]);
            rm.bytes += env.payload.size_bytes();
            rm.byzantine_messages += 1;
            inboxes[env.to.index()].push(env);
        }
        metrics.per_round.push(rm);

        // 4. Termination check.
        let all_honest_done = (0..n).all(|i| corrupted[i] || parties[i].output().is_some());
        if all_honest_done {
            let outputs = parties
                .iter()
                .enumerate()
                .map(|(i, p)| if corrupted[i] { None } else { p.output() })
                .collect();
            return Ok(RunReport { outputs, corrupted, rounds_executed: round, metrics });
        }
    }

    Err(SimError::MaxRoundsExceeded { max_rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{CrashAdversary, Passive, ScriptedAdversary, StaticByzantine};

    /// Round 1: broadcast own id. Round 2: output the multiset of senders
    /// seen.
    struct EchoParty {
        seen: Option<Vec<usize>>,
    }

    impl Protocol for EchoParty {
        type Msg = u64;
        type Output = Vec<usize>;
        fn step(&mut self, round: u32, inbox: &[Envelope<u64>], ctx: &mut RoundCtx<u64>) {
            if round == 1 {
                ctx.broadcast(ctx.me().index() as u64);
            } else if self.seen.is_none() {
                let mut s: Vec<usize> = inbox.iter().map(|e| e.from.index()).collect();
                s.sort_unstable();
                self.seen = Some(s);
            }
        }
        fn output(&self) -> Option<Vec<usize>> {
            self.seen.clone()
        }
    }

    fn echo_factory(_id: PartyId, _n: usize) -> EchoParty {
        EchoParty { seen: None }
    }

    #[test]
    fn all_honest_all_delivered() {
        let cfg = SimConfig { n: 5, t: 0, max_rounds: 5 };
        let report = run_simulation(cfg, echo_factory, Passive).unwrap();
        assert_eq!(report.rounds_executed, 2);
        for out in report.honest_outputs() {
            assert_eq!(out, vec![0, 1, 2, 3, 4]);
        }
        // 5 broadcasts of 5 messages in round 1.
        assert_eq!(report.metrics.total_messages(), 25);
        assert_eq!(report.communication_rounds(), 1);
    }

    #[test]
    fn crashed_party_is_silent_and_outputless() {
        let cfg = SimConfig { n : 4, t: 1, max_rounds: 5 };
        let adv = CrashAdversary { crashes: vec![(PartyId(2), 1)] };
        let report = run_simulation(cfg, echo_factory, adv).unwrap();
        assert!(report.corrupted[2]);
        assert!(report.outputs[2].is_none());
        for (i, out) in report.outputs.iter().enumerate() {
            if i != 2 {
                assert_eq!(out.as_ref().unwrap(), &vec![0, 1, 3]);
            }
        }
    }

    #[test]
    fn late_crash_after_broadcast_still_counts_round1_traffic() {
        let cfg = SimConfig { n: 4, t: 1, max_rounds: 5 };
        let adv = CrashAdversary { crashes: vec![(PartyId(2), 2)] };
        let report = run_simulation(cfg, echo_factory, adv).unwrap();
        // p2 broadcast in round 1 before crashing in round 2.
        for (i, out) in report.outputs.iter().enumerate() {
            if i != 2 {
                assert_eq!(out.as_ref().unwrap(), &vec![0, 1, 2, 3]);
            }
        }
    }

    #[test]
    fn equivocation_reaches_different_recipients() {
        let cfg = SimConfig { n: 4, t: 1, max_rounds: 5 };
        let adv = StaticByzantine {
            parties: vec![PartyId(0)],
            behave: |ctx: &mut AdversaryCtx<'_, u64>| {
                if ctx.round() == 1 {
                    ctx.send(PartyId(0), PartyId(1), 100);
                    ctx.send(PartyId(0), PartyId(2), 200);
                }
            },
        };
        struct Recorder {
            got: Option<Vec<(usize, u64)>>,
        }
        impl Protocol for Recorder {
            type Msg = u64;
            type Output = Vec<(usize, u64)>;
            fn step(&mut self, round: u32, inbox: &[Envelope<u64>], _ctx: &mut RoundCtx<u64>) {
                if round == 2 {
                    self.got =
                        Some(inbox.iter().map(|e| (e.from.index(), e.payload)).collect());
                }
            }
            fn output(&self) -> Option<Self::Output> {
                self.got.clone()
            }
        }
        let report =
            run_simulation(cfg, |_, _| Recorder { got: None }, adv).unwrap();
        assert_eq!(report.outputs[1].as_ref().unwrap(), &vec![(0, 100)]);
        assert_eq!(report.outputs[2].as_ref().unwrap(), &vec![(0, 200)]);
        assert_eq!(report.outputs[3].as_ref().unwrap(), &Vec::new());
    }

    #[test]
    fn forwarding_models_semi_honest_corruption() {
        let cfg = SimConfig { n: 3, t: 1, max_rounds: 5 };
        let adv = ScriptedAdversary(|ctx: &mut AdversaryCtx<'_, u64>| {
            if ctx.round() == 1 {
                ctx.corrupt(PartyId(0)).unwrap();
                ctx.forward(PartyId(0)); // behave honestly this round
            }
        });
        let report = run_simulation(cfg, echo_factory, adv).unwrap();
        for (i, out) in report.outputs.iter().enumerate() {
            if i != 0 {
                assert_eq!(out.as_ref().unwrap(), &vec![0, 1, 2]);
            }
        }
    }

    #[test]
    fn nontermination_is_reported() {
        struct Mute;
        impl Protocol for Mute {
            type Msg = u64;
            type Output = ();
            fn step(&mut self, _r: u32, _i: &[Envelope<u64>], _c: &mut RoundCtx<u64>) {}
            fn output(&self) -> Option<()> {
                None
            }
        }
        let cfg = SimConfig { n: 2, t: 0, max_rounds: 7 };
        let err = run_simulation(cfg, |_, _| Mute, Passive).unwrap_err();
        assert_eq!(err, SimError::MaxRoundsExceeded { max_rounds: 7 });
    }

    #[test]
    fn bad_configs_rejected() {
        let err =
            run_simulation(SimConfig { n: 0, t: 0, max_rounds: 1 }, echo_factory, Passive)
                .unwrap_err();
        assert!(matches!(err, SimError::BadConfig { .. }));
        let err =
            run_simulation(SimConfig { n: 3, t: 3, max_rounds: 1 }, echo_factory, Passive)
                .unwrap_err();
        assert!(matches!(err, SimError::BadConfig { .. }));
    }

    #[test]
    fn determinism_same_inputs_same_report() {
        let cfg = SimConfig { n: 6, t: 1, max_rounds: 5 };
        let run = || {
            let adv = CrashAdversary { crashes: vec![(PartyId(5), 1)] };
            run_simulation(cfg, echo_factory, adv).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.rounds_executed, b.rounds_executed);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics.total_messages(), b.metrics.total_messages());
    }
}
