//! The lockstep execution engine.
//!
//! # Performance model
//!
//! Each round has three phases:
//!
//! 1. **Step.** Every party's `step` is a pure function of its state and
//!    inbox, so parties are stepped either sequentially or concurrently
//!    (see [`StepMode`]) with bit-identical results — outboxes are always
//!    collected in party-id order.
//! 2. **Adversary.** The rushing adversary sees all tentative [`Outbox`]es
//!    and acts.
//! 3. **Delivery.** Broadcast payloads are *moved* into one shared
//!    per-round list (`Arc`) that every inbox references — a broadcast
//!    costs one allocation and one `size_bytes` call regardless of `n`.
//!    Unicasts and injections go into per-party direct lists whose
//!    allocations persist across rounds.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use aa_trace::{EventKind, ProtoEvent, Trace};

use crate::adversary::{Adversary, AdversaryCtx};
use crate::fault::FaultPlan;
use crate::mailbox::{Inbox, Outbox, Received};
use crate::message::{Envelope, PartyId, Payload};
use crate::metrics::{Metrics, RoundMetrics};
use crate::party::{Protocol, RoundCtx};

/// Static parameters of a simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of parties.
    pub n: usize,
    /// Corruption budget (`t < n` enforced; protocols typically require
    /// `t < n/3`, which is *their* precondition, not the engine's).
    pub t: usize,
    /// Hard stop: error out if honest parties have not all terminated by
    /// this round.
    pub max_rounds: u32,
}

/// How the engine steps the `n` parties within a round.
///
/// Any mode produces byte-for-byte identical runs: parties within a round
/// never interact, and outboxes are collected in party-id order before
/// the adversary or the delivery phase looks at them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StepMode {
    /// Parallel for large networks on multi-core hosts, sequential
    /// otherwise (the threshold is [`PARALLEL_THRESHOLD`]).
    #[default]
    Auto,
    /// Always one party after another — the reference path.
    Sequential,
    /// Always concurrent on `threads` OS threads (clamped to `1..=n`)
    /// which self-schedule over the party range in grain-sized chunks
    /// claimed from a shared atomic cursor. `threads: 0` means one thread
    /// per available core.
    Parallel {
        /// Worker thread count; `0` = number of available cores.
        threads: usize,
    },
}

/// Network size at which [`StepMode::Auto`] starts stepping in parallel
/// (when more than one core is available).
///
/// Derived from measurement rather than guessed (the previous value, 64,
/// was a guess). On the reference host (`rustc -O`, Linux), a scoped
/// worker pool costs 104 µs to spawn+join 2 threads and 167 µs for 4 —
/// an upper bound, since the 1-core host serializes the spawns. Against
/// that, one round of the *cheapest* conceivable stepping work (every
/// party scans an inbox of n 8-byte broadcasts) measures 12 µs at n=256,
/// 189 µs at n=1024, and 2.9 ms at n=4096 — so a degenerate scan-only
/// protocol only breaks even near n ≈ 2048. But the protocols this
/// engine exists to run sit 10–100× above that floor: the recorded
/// RealAA substrate spends ~440 ms per round at n=256, dwarfing pool
/// cost from roughly n ≥ 128. The threshold is set between the two
/// measured crossovers, biased toward the protocol suite; workloads at
/// either degenerate end can always pin `Sequential` or
/// `Parallel { threads }` explicitly.
pub const PARALLEL_THRESHOLD: usize = 256;

/// Worker-thread count [`StepMode::Auto`] resolves to for `n` parties on
/// a host with `cores` available cores: 1 (sequential) below
/// [`PARALLEL_THRESHOLD`] or on a single core, one thread per core
/// (clamped to `n`) otherwise.
///
/// Exposed as a pure function of `(n, cores)` so the resolution rule is
/// testable independently of the host the tests run on.
pub fn auto_threads(n: usize, cores: usize) -> usize {
    if cores <= 1 || n < PARALLEL_THRESHOLD {
        1
    } else {
        cores.min(n)
    }
}

/// Engine parameters beyond the protocol-visible [`SimConfig`].
///
/// `SimConfig` stays a three-field literal everywhere; tuning knobs that
/// cannot change observable behaviour live here instead. Build one with
/// `EngineConfig::from(sim_config)` and override fields as needed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// The protocol-visible parameters.
    pub sim: SimConfig,
    /// How parties are stepped within a round.
    pub step_mode: StepMode,
}

impl From<SimConfig> for EngineConfig {
    fn from(sim: SimConfig) -> Self {
        EngineConfig {
            sim,
            step_mode: StepMode::Auto,
        }
    }
}

/// Why a simulation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// `n == 0` or `t >= n`.
    BadConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// Some honest party had produced no output by `max_rounds`.
    MaxRoundsExceeded {
        /// The configured bound that was hit.
        max_rounds: u32,
    },
    /// A fault plan was structurally invalid or not expressible in the
    /// lockstep engine (see [`FaultPlan::lockstep_compatible`]).
    BadFaultPlan {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadConfig { reason } => write!(f, "bad simulation config: {reason}"),
            SimError::MaxRoundsExceeded { max_rounds } => {
                write!(
                    f,
                    "honest parties did not terminate within {max_rounds} rounds"
                )
            }
            SimError::BadFaultPlan { reason } => write!(f, "bad fault plan: {reason}"),
        }
    }
}

impl Error for SimError {}

/// The result of a completed run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport<O> {
    /// Per-party outputs; `None` exactly for corrupted parties and
    /// parties that were crashed (by a fault plan) when the run ended.
    pub outputs: Vec<Option<O>>,
    /// Which parties ended the run corrupted.
    pub corrupted: Vec<bool>,
    /// Which parties were down under the fault plan when the run ended
    /// (all `false` on plan-free runs).
    pub crashed: Vec<bool>,
    /// Rounds executed until every honest party had an output.
    pub rounds_executed: u32,
    /// Communication metrics.
    pub metrics: Metrics,
}

impl<O: Clone> RunReport<O> {
    /// Outputs of the honest (and, under a fault plan, running) parties.
    pub fn honest_outputs(&self) -> Vec<O> {
        self.outputs
            .iter()
            .zip(self.corrupted.iter().zip(&self.crashed))
            .filter(|(_, (&c, &d))| !c && !d)
            .map(|(o, _)| o.clone().expect("honest parties have outputs on success"))
            .collect()
    }

    /// The communication round complexity: last round with traffic.
    pub fn communication_rounds(&self) -> u32 {
        self.metrics.communication_rounds()
    }
}

/// Steps every party once, sequentially, collecting outboxes in id order.
/// Parties marked `down` (crashed under a fault plan) are frozen: not
/// stepped, producing an empty outbox and no events. When `tracing`,
/// per-party protocol events are collected alongside (also in id order);
/// otherwise the events vector stays empty and unallocated.
fn step_sequential<P: Protocol>(
    parties: &mut [P],
    inboxes: &[Inbox<P::Msg>],
    round: u32,
    n: usize,
    tracing: bool,
    down: &[bool],
) -> (Vec<Outbox<P::Msg>>, Vec<Vec<ProtoEvent>>) {
    let mut outboxes = Vec::with_capacity(parties.len());
    let mut events = if tracing {
        Vec::with_capacity(parties.len())
    } else {
        Vec::new()
    };
    for (i, party) in parties.iter_mut().enumerate() {
        let mut ctx = if tracing {
            RoundCtx::traced(PartyId(i), n)
        } else {
            RoundCtx::new(PartyId(i), n)
        };
        if !down[i] {
            party.step(round, &inboxes[i], &mut ctx);
        }
        if tracing {
            events.push(ctx.take_events());
        }
        outboxes.push(ctx.into_outbox());
    }
    (outboxes, events)
}

/// What one party produces in one step: its outbox plus any protocol
/// events it emitted while tracing.
type StepOutput<M> = (Outbox<M>, Vec<ProtoEvent>);

/// A raw pointer a scoped worker may carry across its thread boundary.
///
/// Safety rationale for the `Send`/`Sync` impls: the stepping loop hands
/// out party indices through an atomic cursor that yields each index to
/// exactly one worker, so no two threads ever materialise references to
/// the same element behind this pointer, and the owning scope outlives
/// every worker.
struct SendPtr<T>(*mut T);

// Manual impls: the derives would bound on `T: Copy`, but the pointer is
// copyable regardless of what it points to.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// How many grain-sized chunks the party range is split into per worker,
/// on average. More slices = better load balance when step costs are
/// skewed (work-stealing via the shared cursor), fewer = less cursor
/// contention; 8 is comfortably past the point where either effect
/// matters for inbox-scanning protocols.
const GRAIN_SLICES_PER_THREAD: usize = 8;

/// Steps every party once on `threads` scoped OS threads that
/// self-schedule over the party range: workers repeatedly claim the next
/// grain-sized chunk of indices from a shared atomic cursor, so a worker
/// stuck on an expensive party stops claiming and the others absorb the
/// remainder (work stealing without per-thread deques — the shared queue
/// *is* the steal target). Each party writes its outbox into its own
/// pre-assigned slot, so the collected order is the party-id order no
/// matter how chunks land on threads.
fn step_parallel<P>(
    parties: &mut [P],
    inboxes: &[Inbox<P::Msg>],
    round: u32,
    n: usize,
    threads: usize,
    tracing: bool,
    down: &[bool],
) -> (Vec<Outbox<P::Msg>>, Vec<Vec<ProtoEvent>>)
where
    P: Protocol + Send,
    P::Msg: Send + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    let count = parties.len();
    let threads = threads.clamp(1, count);
    if threads == 1 {
        return step_sequential(parties, inboxes, round, n, tracing, down);
    }
    let grain = count.div_ceil(threads * GRAIN_SLICES_PER_THREAD).max(1);
    let mut slots: Vec<Option<StepOutput<P::Msg>>> = (0..count).map(|_| None).collect();
    let cursor = AtomicUsize::new(0);
    let parties_base = SendPtr(parties.as_mut_ptr());
    let slots_base = SendPtr(slots.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let cursor = &cursor;
            scope.spawn(move || {
                // Capture the `SendPtr` wrappers whole: edition-2021
                // disjoint capture would otherwise move just the raw
                // pointer fields, which are not `Send`.
                let (parties_base, slots_base) = (parties_base, slots_base);
                loop {
                    let start = cursor.fetch_add(grain, Ordering::Relaxed);
                    if start >= count {
                        break;
                    }
                    let end = (start + grain).min(count);
                    for i in start..end {
                        // SAFETY: `i` lies in a [start, end) range
                        // obtained from a fetch_add on the shared cursor,
                        // so this worker is the only one to touch index
                        // `i`; both buffers live on the caller's stack
                        // past the scope.
                        let (party, slot) =
                            unsafe { (&mut *parties_base.0.add(i), &mut *slots_base.0.add(i)) };
                        let mut ctx = if tracing {
                            RoundCtx::traced(PartyId(i), n)
                        } else {
                            RoundCtx::new(PartyId(i), n)
                        };
                        if !down[i] {
                            party.step(round, &inboxes[i], &mut ctx);
                        }
                        let events = ctx.take_events();
                        *slot = Some((ctx.into_outbox(), events));
                    }
                }
            });
        }
    });
    // Merge in party-id order, exactly like the sequential path: the slot
    // layout already is the id order regardless of thread scheduling.
    let mut outboxes = Vec::with_capacity(count);
    let mut events = if tracing {
        Vec::with_capacity(count)
    } else {
        Vec::new()
    };
    for slot in slots {
        let (outbox, evs) = slot.expect("the cursor covered every index");
        outboxes.push(outbox);
        if tracing {
            events.push(evs);
        }
    }
    (outboxes, events)
}

/// Runs a protocol instance against an adversary until every honest party
/// outputs, with default engine tuning ([`StepMode::Auto`]).
///
/// `factory(id, n)` builds the party state machine for each id. The
/// adversary is invoked after the parties in every round (rushing) and may
/// adaptively corrupt up to `cfg.t` parties.
///
/// # Errors
///
/// * [`SimError::BadConfig`] if `n == 0` or `t >= n`.
/// * [`SimError::MaxRoundsExceeded`] if some honest party has no output
///   after `cfg.max_rounds` rounds — typically a deadlocked or
///   non-terminating protocol under test.
///
/// # Example
///
/// See the crate-level documentation.
pub fn run_simulation<P, A, F>(
    cfg: SimConfig,
    factory: F,
    adversary: A,
) -> Result<RunReport<P::Output>, SimError>
where
    P: Protocol + Send,
    P::Msg: Send + Sync,
    A: Adversary<P::Msg>,
    F: FnMut(PartyId, usize) -> P,
{
    run_simulation_with(EngineConfig::from(cfg), factory, adversary)
}

/// [`run_simulation`] with explicit engine tuning (step mode).
///
/// The step mode cannot change observable behaviour — reports from any two
/// modes are equal — so choosing it is purely a throughput decision.
///
/// # Errors
///
/// As [`run_simulation`].
pub fn run_simulation_with<P, A, F>(
    cfg: EngineConfig,
    factory: F,
    adversary: A,
) -> Result<RunReport<P::Output>, SimError>
where
    P: Protocol + Send,
    P::Msg: Send + Sync,
    A: Adversary<P::Msg>,
    F: FnMut(PartyId, usize) -> P,
{
    run_inner(cfg, factory, adversary, None, None)
}

/// [`run_simulation_with`] under a [`FaultPlan`]: the engine applies the
/// plan's scheduled crash/recovery windows and partitions on top of
/// whatever the Byzantine adversary does.
///
/// Lockstep fault semantics (the documented choice):
///
/// * **Crash (frozen).** While a party is down it is not stepped — its
///   protocol state is frozen — its sends are suppressed, and inbound
///   traffic is lost, except that traffic sent in the round immediately
///   preceding recovery is delivered (it arrives as the party comes back
///   up). On recovery the party is stepped again with the current
///   *absolute* round number, so fixed-schedule protocols stay aligned.
///   Parties still down when the run ends are reported in
///   [`RunReport::crashed`] with `None` outputs and are excluded from the
///   termination condition.
/// * **Partition.** A message crossing an active cut is dropped (traced as
///   a `fault_drop` event, costing nothing); a broadcast from a sender
///   with severed recipients is delivered as per-recipient unicasts to the
///   reachable side.
///
/// # Errors
///
/// As [`run_simulation`], plus [`SimError::BadFaultPlan`] if the plan is
/// structurally invalid or uses probabilistic link faults (which have no
/// lockstep meaning — run those through `async-net`).
pub fn run_simulation_faulted<P, A, F>(
    cfg: EngineConfig,
    plan: &FaultPlan,
    factory: F,
    adversary: A,
) -> Result<RunReport<P::Output>, SimError>
where
    P: Protocol + Send,
    P::Msg: Send + Sync,
    A: Adversary<P::Msg>,
    F: FnMut(PartyId, usize) -> P,
{
    run_inner(cfg, factory, adversary, None, Some(plan))
}

/// [`run_simulation_faulted`] with the flight recorder on: every fault
/// firing (crash, recovery, partition boundary, dropped message) appears
/// in the trace in a fixed order, so faulted traces remain byte-identical
/// across step modes.
///
/// # Errors
///
/// As [`run_simulation_faulted`]; the partial trace is discarded on error.
pub fn run_simulation_faulted_traced<P, A, F>(
    cfg: EngineConfig,
    plan: &FaultPlan,
    factory: F,
    adversary: A,
) -> Result<(RunReport<P::Output>, Trace), SimError>
where
    P: Protocol + Send,
    P::Msg: Send + Sync,
    A: Adversary<P::Msg>,
    F: FnMut(PartyId, usize) -> P,
{
    let mut trace = Trace::new(cfg.sim.n, cfg.sim.t, "");
    let report = run_inner(cfg, factory, adversary, Some(&mut trace), Some(plan))?;
    Ok((report, trace))
}

/// [`run_simulation_with`] with the flight recorder on: returns the report
/// together with a [`Trace`] of every round boundary, delivered send,
/// adversary action, and protocol-level event.
///
/// The trace is deterministic in the strongest sense: its canonical JSON is
/// **byte-identical** across step modes, because events are appended in a
/// fixed order derived from party ids, never from thread scheduling —
/// round start, protocol events in party-id order, adversary actions,
/// deliveries (broadcasts by sender id, then unicasts by sender id, then
/// injections in injection order), round end.
///
/// # Errors
///
/// As [`run_simulation`]; the partial trace is discarded on error.
pub fn run_simulation_traced<P, A, F>(
    cfg: EngineConfig,
    factory: F,
    adversary: A,
) -> Result<(RunReport<P::Output>, Trace), SimError>
where
    P: Protocol + Send,
    P::Msg: Send + Sync,
    A: Adversary<P::Msg>,
    F: FnMut(PartyId, usize) -> P,
{
    let mut trace = Trace::new(cfg.sim.n, cfg.sim.t, "");
    let report = run_inner(cfg, factory, adversary, Some(&mut trace), None)?;
    Ok((report, trace))
}

fn run_inner<P, A, F>(
    cfg: EngineConfig,
    factory: F,
    mut adversary: A,
    mut trace: Option<&mut Trace>,
    plan: Option<&FaultPlan>,
) -> Result<RunReport<P::Output>, SimError>
where
    P: Protocol + Send,
    P::Msg: Send + Sync,
    A: Adversary<P::Msg>,
    F: FnMut(PartyId, usize) -> P,
{
    let SimConfig { n, t, max_rounds } = cfg.sim;
    if n == 0 {
        return Err(SimError::BadConfig {
            reason: "n must be positive".into(),
        });
    }
    if t >= n {
        return Err(SimError::BadConfig {
            reason: format!("t = {t} must be < n = {n}"),
        });
    }
    if let Some(plan) = plan {
        plan.validate(n).map_err(|e| SimError::BadFaultPlan {
            reason: e.to_string(),
        })?;
        if !plan.lockstep_compatible() {
            return Err(SimError::BadFaultPlan {
                reason: "probabilistic link faults have no lockstep meaning; \
                         run this plan through async-net"
                    .into(),
            });
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let threads = match cfg.step_mode {
        StepMode::Sequential => 1,
        StepMode::Parallel { threads: 0 } => cores,
        StepMode::Parallel { threads } => threads,
        StepMode::Auto => auto_threads(n, cores),
    };

    let mut factory = factory;
    let mut parties: Vec<P> = (0..n).map(|i| factory(PartyId(i), n)).collect();
    let mut corrupted = vec![false; n];
    let mut corrupted_count = 0usize;
    // Per-party inboxes. The `direct` vectors are persistent arenas —
    // cleared, never dropped — and the broadcast list is rebuilt once per
    // round and shared by all n of them.
    let mut inboxes: Vec<Inbox<P::Msg>> = (0..n).map(|_| Inbox::empty()).collect();
    let mut prev_broadcasts = 0usize;
    let mut metrics = Metrics::default();
    // Fault-plan state: which parties are currently down (crashed).
    let mut down = vec![false; n];

    let tracing = trace.is_some();
    for round in 1..=max_rounds {
        // 0. Apply the fault plan's scheduled state for this round.
        let mut newly_crashed: Vec<usize> = Vec::new();
        let mut newly_recovered: Vec<usize> = Vec::new();
        if let Some(plan) = plan {
            for (party, was_down) in down.iter_mut().enumerate() {
                let now_down = plan.crashed_in(party, round);
                if now_down != *was_down {
                    if now_down {
                        newly_crashed.push(party);
                    } else {
                        newly_recovered.push(party);
                    }
                    *was_down = now_down;
                }
            }
        }

        // 1. Step every party (corrupted ones too: their tentative traffic
        //    is shown to the adversary, supporting omission/semi-honest
        //    strategies), collecting tentative outboxes in id order.
        //    Parties down under the fault plan are frozen, not stepped.
        let (tentative, party_events) = if threads > 1 {
            step_parallel(&mut parties, &inboxes, round, n, threads, tracing, &down)
        } else {
            step_sequential(&mut parties, &inboxes, round, n, tracing, &down)
        };
        if let Some(tr) = trace.as_deref_mut() {
            tr.push(round, EventKind::RoundStart);
            if let Some(plan) = plan {
                for (id, p) in plan.partitions.iter().enumerate() {
                    if p.from_round == round {
                        tr.push(round, EventKind::PartitionStart { id });
                    }
                    if p.heal_round == round {
                        tr.push(round, EventKind::PartitionHeal { id });
                    }
                }
            }
            for &party in &newly_crashed {
                tr.push(round, EventKind::FaultCrash { party });
            }
            for &party in &newly_recovered {
                tr.push(round, EventKind::FaultRecover { party });
            }
            for (party, events) in party_events.into_iter().enumerate() {
                for event in events {
                    tr.push(round, EventKind::Proto { party, event });
                }
            }
        }

        // 2. The adversary observes everything and acts (rushing,
        //    adaptive).
        let corrupted_before = if tracing {
            corrupted.clone()
        } else {
            Vec::new()
        };
        let mut injected: Vec<Envelope<P::Msg>> = Vec::new();
        let mut forwarded = vec![false; n];
        {
            let mut actx = AdversaryCtx {
                round,
                n,
                t,
                corrupted: &mut corrupted,
                corrupted_count: &mut corrupted_count,
                tentative: &tentative,
                injected: &mut injected,
                forwarded: &mut forwarded,
            };
            adversary.round(&mut actx);
        }
        if let Some(tr) = trace.as_deref_mut() {
            for i in 0..n {
                if corrupted[i] && !corrupted_before[i] {
                    tr.push(round, EventKind::Corrupt { party: i });
                }
            }
            for (i, &fwd) in forwarded.iter().enumerate() {
                if fwd {
                    tr.push(round, EventKind::Forward { party: i });
                }
            }
        }

        // 3. Deliver: honest tentative traffic verbatim; corrupted
        //    tentative traffic only if forwarded; plus adversary
        //    injections. Delivery order is deterministic: broadcasts by
        //    sender id, then unicasts by sender id, injections last in
        //    injection order. Broadcast payloads are moved into the shared
        //    list exactly once — no per-recipient clone, and `size_bytes`
        //    runs once per broadcast.
        let mut rm = RoundMetrics::default();
        let mut shared: Vec<Received<P::Msg>> = Vec::with_capacity(prev_broadcasts);
        for inbox in &mut inboxes {
            inbox.direct.clear();
        }
        for (i, outbox) in tentative.into_iter().enumerate() {
            let deliver = !corrupted[i] || forwarded[i];
            if !deliver {
                continue;
            }
            let (unicasts, broadcasts) = outbox.into_parts();
            // Under an active partition a sender may not reach everyone:
            // its broadcasts fall back to per-recipient delivery so the
            // reachable side still hears them.
            let cut = plan.is_some_and(|p| (0..n).any(|j| p.severed(round, i, j)));
            for payload in broadcasts {
                let bytes = payload.size_bytes();
                if cut {
                    let plan = plan.expect("cut implies a plan");
                    for (j, inbox) in inboxes.iter_mut().enumerate() {
                        if plan.severed(round, i, j) {
                            if let Some(tr) = trace.as_deref_mut() {
                                tr.push(round, EventKind::FaultDrop { from: i, to: j });
                            }
                            continue;
                        }
                        rm.bytes += bytes;
                        if corrupted[i] {
                            rm.byzantine_messages += 1;
                        } else {
                            rm.honest_messages += 1;
                        }
                        if let Some(tr) = trace.as_deref_mut() {
                            tr.push(
                                round,
                                EventKind::Unicast {
                                    from: i,
                                    to: j,
                                    bytes,
                                    byzantine: corrupted[i],
                                },
                            );
                        }
                        inbox.direct.push(Received {
                            from: PartyId(i),
                            payload: payload.clone(),
                        });
                    }
                    continue;
                }
                rm.bytes += bytes * n;
                if corrupted[i] {
                    rm.byzantine_messages += n;
                } else {
                    rm.honest_messages += n;
                }
                if let Some(tr) = trace.as_deref_mut() {
                    tr.push(
                        round,
                        EventKind::Broadcast {
                            from: i,
                            bytes,
                            byzantine: corrupted[i],
                        },
                    );
                }
                shared.push(Received {
                    from: PartyId(i),
                    payload,
                });
            }
            for env in unicasts {
                if plan.is_some_and(|p| p.severed(round, i, env.to.index())) {
                    if let Some(tr) = trace.as_deref_mut() {
                        tr.push(
                            round,
                            EventKind::FaultDrop {
                                from: i,
                                to: env.to.index(),
                            },
                        );
                    }
                    continue;
                }
                let bytes = env.payload.size_bytes();
                rm.bytes += bytes;
                if corrupted[i] {
                    rm.byzantine_messages += 1;
                } else {
                    rm.honest_messages += 1;
                }
                if let Some(tr) = trace.as_deref_mut() {
                    tr.push(
                        round,
                        EventKind::Unicast {
                            from: i,
                            to: env.to.index(),
                            bytes,
                            byzantine: corrupted[i],
                        },
                    );
                }
                inboxes[env.to.index()].direct.push(Received {
                    from: env.from,
                    payload: env.payload,
                });
            }
        }
        for env in injected {
            debug_assert!(corrupted[env.from.index()]);
            let (from, to) = (env.from.index(), env.to.index());
            // A down sender's hardware is off — injections claiming to be
            // from it are suppressed, as is anything crossing a cut.
            if down[from] || plan.is_some_and(|p| p.severed(round, from, to)) {
                if let Some(tr) = trace.as_deref_mut() {
                    tr.push(round, EventKind::FaultDrop { from, to });
                }
                continue;
            }
            let bytes = env.payload.size_bytes();
            rm.bytes += bytes;
            rm.byzantine_messages += 1;
            if let Some(tr) = trace.as_deref_mut() {
                tr.push(round, EventKind::Inject { from, to, bytes });
            }
            inboxes[env.to.index()].direct.push(Received {
                from: env.from,
                payload: env.payload,
            });
        }
        prev_broadcasts = shared.len();
        let shared = Arc::new(shared);
        for inbox in &mut inboxes {
            inbox.broadcasts = Arc::clone(&shared);
        }
        if let Some(tr) = trace.as_deref_mut() {
            tr.push(
                round,
                EventKind::RoundEnd {
                    honest_messages: rm.honest_messages,
                    byzantine_messages: rm.byzantine_messages,
                    bytes: rm.bytes,
                },
            );
        }
        metrics.per_round.push(rm);

        // 4. Termination check. Parties currently down are excluded: they
        //    cannot make progress, and a never-recovering crash must not
        //    block the others' termination.
        let all_honest_done =
            (0..n).all(|i| corrupted[i] || down[i] || parties[i].output().is_some());
        if all_honest_done {
            let outputs = parties
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    if corrupted[i] || down[i] {
                        None
                    } else {
                        p.output()
                    }
                })
                .collect();
            return Ok(RunReport {
                outputs,
                corrupted,
                crashed: down,
                rounds_executed: round,
                metrics,
            });
        }
    }

    Err(SimError::MaxRoundsExceeded { max_rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{CrashAdversary, Passive, ScriptedAdversary, StaticByzantine};

    /// Round 1: broadcast own id. Round 2: output the multiset of senders
    /// seen.
    struct EchoParty {
        seen: Option<Vec<usize>>,
    }

    impl Protocol for EchoParty {
        type Msg = u64;
        type Output = Vec<usize>;
        fn step(&mut self, round: u32, inbox: &Inbox<u64>, ctx: &mut RoundCtx<u64>) {
            if round == 1 {
                ctx.broadcast(ctx.me().index() as u64);
            } else if self.seen.is_none() {
                let mut s: Vec<usize> = inbox.iter().map(|e| e.from.index()).collect();
                s.sort_unstable();
                self.seen = Some(s);
            }
        }
        fn output(&self) -> Option<Vec<usize>> {
            self.seen.clone()
        }
    }

    fn echo_factory(_id: PartyId, _n: usize) -> EchoParty {
        EchoParty { seen: None }
    }

    #[test]
    fn all_honest_all_delivered() {
        let cfg = SimConfig {
            n: 5,
            t: 0,
            max_rounds: 5,
        };
        let report = run_simulation(cfg, echo_factory, Passive).unwrap();
        assert_eq!(report.rounds_executed, 2);
        for out in report.honest_outputs() {
            assert_eq!(out, vec![0, 1, 2, 3, 4]);
        }
        // 5 broadcasts of 5 messages in round 1.
        assert_eq!(report.metrics.total_messages(), 25);
        assert_eq!(report.communication_rounds(), 1);
    }

    #[test]
    fn crashed_party_is_silent_and_outputless() {
        let cfg = SimConfig {
            n: 4,
            t: 1,
            max_rounds: 5,
        };
        let adv = CrashAdversary {
            crashes: vec![(PartyId(2), 1)],
        };
        let report = run_simulation(cfg, echo_factory, adv).unwrap();
        assert!(report.corrupted[2]);
        assert!(report.outputs[2].is_none());
        for (i, out) in report.outputs.iter().enumerate() {
            if i != 2 {
                assert_eq!(out.as_ref().unwrap(), &vec![0, 1, 3]);
            }
        }
    }

    #[test]
    fn late_crash_after_broadcast_still_counts_round1_traffic() {
        let cfg = SimConfig {
            n: 4,
            t: 1,
            max_rounds: 5,
        };
        let adv = CrashAdversary {
            crashes: vec![(PartyId(2), 2)],
        };
        let report = run_simulation(cfg, echo_factory, adv).unwrap();
        // p2 broadcast in round 1 before crashing in round 2.
        for (i, out) in report.outputs.iter().enumerate() {
            if i != 2 {
                assert_eq!(out.as_ref().unwrap(), &vec![0, 1, 2, 3]);
            }
        }
    }

    #[test]
    fn equivocation_reaches_different_recipients() {
        let cfg = SimConfig {
            n: 4,
            t: 1,
            max_rounds: 5,
        };
        let adv = StaticByzantine {
            parties: vec![PartyId(0)],
            behave: |ctx: &mut AdversaryCtx<'_, u64>| {
                if ctx.round() == 1 {
                    ctx.send(PartyId(0), PartyId(1), 100);
                    ctx.send(PartyId(0), PartyId(2), 200);
                }
            },
        };
        struct Recorder {
            got: Option<Vec<(usize, u64)>>,
        }
        impl Protocol for Recorder {
            type Msg = u64;
            type Output = Vec<(usize, u64)>;
            fn step(&mut self, round: u32, inbox: &Inbox<u64>, _ctx: &mut RoundCtx<u64>) {
                if round == 2 {
                    self.got = Some(inbox.iter().map(|e| (e.from.index(), e.payload)).collect());
                }
            }
            fn output(&self) -> Option<Self::Output> {
                self.got.clone()
            }
        }
        let report = run_simulation(cfg, |_, _| Recorder { got: None }, adv).unwrap();
        assert_eq!(report.outputs[1].as_ref().unwrap(), &vec![(0, 100)]);
        assert_eq!(report.outputs[2].as_ref().unwrap(), &vec![(0, 200)]);
        assert_eq!(report.outputs[3].as_ref().unwrap(), &Vec::new());
    }

    #[test]
    fn forwarding_models_semi_honest_corruption() {
        let cfg = SimConfig {
            n: 3,
            t: 1,
            max_rounds: 5,
        };
        let adv = ScriptedAdversary(|ctx: &mut AdversaryCtx<'_, u64>| {
            if ctx.round() == 1 {
                ctx.corrupt(PartyId(0)).unwrap();
                ctx.forward(PartyId(0)); // behave honestly this round
            }
        });
        let report = run_simulation(cfg, echo_factory, adv).unwrap();
        for (i, out) in report.outputs.iter().enumerate() {
            if i != 0 {
                assert_eq!(out.as_ref().unwrap(), &vec![0, 1, 2]);
            }
        }
    }

    #[test]
    fn nontermination_is_reported() {
        struct Mute;
        impl Protocol for Mute {
            type Msg = u64;
            type Output = ();
            fn step(&mut self, _r: u32, _i: &Inbox<u64>, _c: &mut RoundCtx<u64>) {}
            fn output(&self) -> Option<()> {
                None
            }
        }
        let cfg = SimConfig {
            n: 2,
            t: 0,
            max_rounds: 7,
        };
        let err = run_simulation(cfg, |_, _| Mute, Passive).unwrap_err();
        assert_eq!(err, SimError::MaxRoundsExceeded { max_rounds: 7 });
    }

    #[test]
    fn bad_configs_rejected() {
        let err = run_simulation(
            SimConfig {
                n: 0,
                t: 0,
                max_rounds: 1,
            },
            echo_factory,
            Passive,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::BadConfig { .. }));
        let err = run_simulation(
            SimConfig {
                n: 3,
                t: 3,
                max_rounds: 1,
            },
            echo_factory,
            Passive,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::BadConfig { .. }));
    }

    #[test]
    fn determinism_same_inputs_same_report() {
        let cfg = SimConfig {
            n: 6,
            t: 1,
            max_rounds: 5,
        };
        let run = || {
            let adv = CrashAdversary {
                crashes: vec![(PartyId(5), 1)],
            };
            run_simulation(cfg, echo_factory, adv).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b);
    }

    #[test]
    fn auto_resolves_sequential_below_threshold_parallel_above() {
        // On a multi-core host, Auto switches exactly at the measured
        // threshold…
        assert_eq!(auto_threads(PARALLEL_THRESHOLD - 1, 8), 1);
        assert_eq!(auto_threads(PARALLEL_THRESHOLD, 8), 8);
        assert_eq!(auto_threads(4 * PARALLEL_THRESHOLD, 2), 2);
        // …never runs more workers than parties…
        assert_eq!(
            auto_threads(PARALLEL_THRESHOLD, 2 * PARALLEL_THRESHOLD),
            PARALLEL_THRESHOLD
        );
        // …and stays sequential on a single core at any size, where a
        // worker pool can only add overhead.
        assert_eq!(auto_threads(1, 1), 1);
        assert_eq!(auto_threads(4096, 1), 1);
    }

    #[test]
    fn step_modes_produce_equal_reports() {
        for mode in [
            StepMode::Sequential,
            StepMode::Parallel { threads: 1 },
            StepMode::Parallel { threads: 3 },
            StepMode::Parallel { threads: 0 },
            StepMode::Auto,
        ] {
            let cfg = EngineConfig {
                sim: SimConfig {
                    n: 7,
                    t: 1,
                    max_rounds: 5,
                },
                step_mode: mode,
            };
            let adv = CrashAdversary {
                crashes: vec![(PartyId(6), 1)],
            };
            let report = run_simulation_with(cfg, echo_factory, adv).unwrap();
            let reference = run_simulation_with(
                EngineConfig {
                    sim: cfg.sim,
                    step_mode: StepMode::Sequential,
                },
                echo_factory,
                CrashAdversary {
                    crashes: vec![(PartyId(6), 1)],
                },
            )
            .unwrap();
            assert_eq!(report, reference, "mode {mode:?} diverged");
        }
    }

    #[test]
    fn traced_run_is_mode_invariant_and_reconciles_with_metrics() {
        let sim = SimConfig {
            n: 6,
            t: 1,
            max_rounds: 5,
        };
        let run = |mode| {
            let adv = CrashAdversary {
                crashes: vec![(PartyId(5), 2)],
            };
            run_simulation_traced(
                EngineConfig {
                    sim,
                    step_mode: mode,
                },
                echo_factory,
                adv,
            )
            .unwrap()
        };
        let (report_seq, trace_seq) = run(StepMode::Sequential);
        let (report_par, trace_par) = run(StepMode::Parallel { threads: 3 });
        assert_eq!(report_seq, report_par);
        assert_eq!(
            trace_seq.to_canonical_string(),
            trace_par.to_canonical_string(),
            "trace must be byte-identical across step modes"
        );
        aa_trace::check_round_totals(&trace_seq).unwrap();
        let totals = aa_trace::recomputed_totals(&trace_seq);
        assert_eq!(totals.honest_messages, report_seq.metrics.honest_messages());
        assert_eq!(totals.messages(), report_seq.metrics.total_messages());
        assert_eq!(totals.bytes, report_seq.metrics.total_bytes());
        // The crash shows up as a corruption event in round 2.
        assert!(trace_seq
            .events
            .iter()
            .any(|e| e.round == 2 && e.kind == EventKind::Corrupt { party: 5 }));
    }

    #[test]
    fn traced_and_untraced_runs_agree() {
        let sim = SimConfig {
            n: 4,
            t: 0,
            max_rounds: 5,
        };
        let plain = run_simulation(sim, echo_factory, Passive).unwrap();
        let (traced, trace) =
            run_simulation_traced(EngineConfig::from(sim), echo_factory, Passive).unwrap();
        assert_eq!(plain, traced);
        assert_eq!(trace.n, 4);
        assert_eq!(
            trace
                .events
                .iter()
                .filter(|e| e.kind == EventKind::RoundStart)
                .count() as u32,
            traced.rounds_executed
        );
    }

    /// A payload whose clones are observable: the engine must never clone
    /// a broadcast payload per recipient.
    #[test]
    fn broadcast_costs_no_per_recipient_clones() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        static CLONES: AtomicUsize = AtomicUsize::new(0);

        #[derive(Debug)]
        struct Counted(#[allow(dead_code)] Vec<u8>);
        impl Clone for Counted {
            fn clone(&self) -> Self {
                CLONES.fetch_add(1, Ordering::SeqCst);
                Counted(self.0.clone())
            }
        }
        impl Payload for Counted {}

        struct OneShot {
            done: bool,
        }
        impl Protocol for OneShot {
            type Msg = Counted;
            type Output = ();
            fn step(&mut self, round: u32, _inbox: &Inbox<Counted>, ctx: &mut RoundCtx<Counted>) {
                if round == 1 {
                    ctx.broadcast(Counted(vec![0; 1024]));
                } else {
                    self.done = true;
                }
            }
            fn output(&self) -> Option<()> {
                self.done.then_some(())
            }
        }

        let n = 16;
        let report = run_simulation(
            SimConfig {
                n,
                t: 0,
                max_rounds: 3,
            },
            |_, _| OneShot { done: false },
            Passive,
        )
        .unwrap();
        // n broadcasts were delivered to all n parties…
        assert_eq!(report.metrics.total_messages(), n * n);
        // …and not a single payload clone happened anywhere: every payload
        // was moved from the broadcaster into the shared round list.
        assert_eq!(CLONES.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn broadcast_bytes_count_every_recipient() {
        struct Wide {
            done: bool,
        }
        impl Protocol for Wide {
            type Msg = String;
            type Output = ();
            fn step(&mut self, round: u32, _inbox: &Inbox<String>, ctx: &mut RoundCtx<String>) {
                if round == 1 {
                    ctx.broadcast("xxxxxxxxxx".to_string()); // 10 bytes
                } else {
                    self.done = true;
                }
            }
            fn output(&self) -> Option<()> {
                self.done.then_some(())
            }
        }
        let report = run_simulation(
            SimConfig {
                n: 4,
                t: 0,
                max_rounds: 3,
            },
            |_, _| Wide { done: false },
            Passive,
        )
        .unwrap();
        // 4 broadcasts × 10 bytes × 4 recipients.
        assert_eq!(report.metrics.total_bytes(), 4 * 10 * 4);
    }
}
