//! Communication metrics: message and byte counts per round.

/// Counters for a single round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundMetrics {
    /// Messages delivered out of this round sent by honest parties.
    pub honest_messages: usize,
    /// Messages delivered out of this round authored by the adversary
    /// (including forwarded tentative outboxes of corrupted parties).
    pub byzantine_messages: usize,
    /// Estimated bytes across all delivered messages.
    pub bytes: usize,
}

impl RoundMetrics {
    /// Total delivered messages this round.
    pub fn messages(&self) -> usize {
        self.honest_messages + self.byzantine_messages
    }
}

/// Aggregated communication metrics of a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Per-round counters, index 0 = round 1.
    pub per_round: Vec<RoundMetrics>,
}

impl Metrics {
    /// Total messages delivered over the whole run.
    pub fn total_messages(&self) -> usize {
        self.per_round.iter().map(RoundMetrics::messages).sum()
    }

    /// Total messages sent by honest parties.
    pub fn honest_messages(&self) -> usize {
        self.per_round.iter().map(|r| r.honest_messages).sum()
    }

    /// Total estimated bytes delivered.
    pub fn total_bytes(&self) -> usize {
        self.per_round.iter().map(|r| r.bytes).sum()
    }

    /// Number of rounds in which at least one message was delivered — the
    /// *communication round complexity* of the run, which is what the
    /// paper's theorems count.
    pub fn communication_rounds(&self) -> u32 {
        self.per_round
            .iter()
            .rposition(|r| r.messages() > 0)
            .map(|i| i as u32 + 1)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_rounds() {
        let m = Metrics {
            per_round: vec![
                RoundMetrics {
                    honest_messages: 3,
                    byzantine_messages: 1,
                    bytes: 40,
                },
                RoundMetrics {
                    honest_messages: 2,
                    byzantine_messages: 0,
                    bytes: 16,
                },
            ],
        };
        assert_eq!(m.total_messages(), 6);
        assert_eq!(m.honest_messages(), 5);
        assert_eq!(m.total_bytes(), 56);
        assert_eq!(m.communication_rounds(), 2);
    }

    #[test]
    fn trailing_silent_rounds_do_not_count() {
        let m = Metrics {
            per_round: vec![
                RoundMetrics {
                    honest_messages: 1,
                    byzantine_messages: 0,
                    bytes: 8,
                },
                RoundMetrics::default(),
                RoundMetrics::default(),
            ],
        };
        assert_eq!(m.communication_rounds(), 1);
    }

    #[test]
    fn empty_run_has_zero_rounds() {
        assert_eq!(Metrics::default().communication_rounds(), 0);
        assert_eq!(Metrics::default().total_messages(), 0);
    }
}
