//! A deterministic event-driven **asynchronous** network simulator.
//!
//! The reproduced paper works in the synchronous model, but its headline
//! comparison is against the *asynchronous* state of the art (Nowak &
//! Rybicki's `O(log D)`-round protocol). This crate provides the matching
//! execution substrate: messages are delivered *eventually*, in an order
//! controlled by a delay model rather than in lockstep rounds.
//!
//! # Model
//!
//! * Parties are event handlers ([`AsyncProtocol`]): they act once at
//!   start-up and then upon each delivered message; there are no rounds.
//! * Every sent message is assigned a delivery delay by the
//!   [`DelayModel`]; following the standard convention for measuring
//!   asynchronous *time complexity*, delays are normalized to `(0, 1]` —
//!   so the completion time of a run counts "longest-chain units", the
//!   async analogue of rounds.
//! * Up to `t` statically corrupted parties are driven by an
//!   [`AsyncAdversary`], which reacts to every message delivered to a
//!   corrupted party and may inject arbitrary (per-recipient) messages
//!   from corrupted senders. Channels remain authenticated.
//! * Determinism: a run is a pure function of (config, protocol,
//!   adversary); all randomness comes from the seeded delay model.
//!
//! # Example
//!
//! ```
//! use async_net::{run_async, AsyncConfig, AsyncCtx, AsyncProtocol, DelayModel, PassiveAsync};
//! use sim_net::{Envelope, PartyId};
//!
//! /// Everybody announces its id once; output after hearing from all.
//! struct Census { heard: usize, n: usize }
//! impl AsyncProtocol for Census {
//!     type Msg = u64;
//!     type Output = usize;
//!     fn on_start(&mut self, ctx: &mut AsyncCtx<u64>) {
//!         ctx.broadcast(ctx.me().index() as u64);
//!     }
//!     fn on_message(&mut self, _e: Envelope<u64>, _ctx: &mut AsyncCtx<u64>) {
//!         self.heard += 1;
//!     }
//!     fn output(&self) -> Option<usize> {
//!         (self.heard >= self.n).then_some(self.heard)
//!     }
//! }
//!
//! let cfg = AsyncConfig { n: 4, t: 0, seed: 1, delay: DelayModel::Uniform { min: 0.1 },
//!                         max_events: 10_000 };
//! let report = run_async(cfg, |_, n| Census { heard: 0, n }, PassiveAsync).unwrap();
//! assert!(report.outputs.iter().all(|o| *o == Some(4)));
//! assert!(report.completion_time <= 1.0); // one async "round"
//! ```

#![warn(missing_docs)]
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sim_net::{Envelope, PartyId, Payload};

/// How message delays are drawn. All models produce delays in `(0, 1]`
/// (the async-time normalization).
#[derive(Clone, Debug)]
pub enum DelayModel {
    /// Independent uniform delays in `[min, 1]`.
    Uniform {
        /// Lower bound (must satisfy `0 < min <= 1`).
        min: f64,
    },
    /// Every message takes exactly `1` — degenerates to lockstep rounds,
    /// useful for comparing against the synchronous simulator.
    Lockstep,
    /// Messages *to or from* the listed parties always take the maximal
    /// delay 1, everyone else `min` — the classic "slow honest minority"
    /// schedule that stresses `n − t` waiting rules.
    SlowParties {
        /// The slowed parties.
        slow: Vec<PartyId>,
        /// Fast-path delay (must satisfy `0 < min <= 1`).
        min: f64,
    },
}

impl DelayModel {
    fn sample(&self, env: &Envelope<impl Payload>, rng: &mut ChaCha8Rng) -> f64 {
        match self {
            DelayModel::Uniform { min } => {
                assert!(*min > 0.0 && *min <= 1.0, "min delay must be in (0, 1]");
                rng.gen_range(*min..=1.0)
            }
            DelayModel::Lockstep => 1.0,
            DelayModel::SlowParties { slow, min } => {
                assert!(*min > 0.0 && *min <= 1.0, "min delay must be in (0, 1]");
                if slow.contains(&env.from) || slow.contains(&env.to) {
                    1.0
                } else {
                    *min
                }
            }
        }
    }
}

/// Static parameters of an asynchronous run.
#[derive(Clone, Debug)]
pub struct AsyncConfig {
    /// Number of parties.
    pub n: usize,
    /// Corruption bound (statically corrupted parties are chosen by the
    /// adversary through [`AsyncAdversary::corrupted`]).
    pub t: usize,
    /// Seed for the delay model.
    pub seed: u64,
    /// The delay model.
    pub delay: DelayModel,
    /// Hard stop: error out if honest parties have not all terminated
    /// after this many delivery events.
    pub max_events: usize,
}

/// Per-activation sending context.
#[derive(Debug)]
pub struct AsyncCtx<M> {
    me: PartyId,
    n: usize,
    now: f64,
    outbox: Vec<Envelope<M>>,
}

impl<M: Payload> AsyncCtx<M> {
    /// This party's id.
    pub fn me(&self) -> PartyId {
        self.me
    }

    /// Number of parties.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Sends `msg` to `to` (delivered after a model-chosen delay).
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range.
    pub fn send(&mut self, to: PartyId, msg: M) {
        assert!(to.index() < self.n, "recipient {to} out of range");
        self.outbox.push(Envelope {
            from: self.me,
            to,
            payload: msg,
        });
    }

    /// Sends `msg` to every party (including the sender).
    pub fn broadcast(&mut self, msg: M) {
        for i in 0..self.n {
            self.outbox.push(Envelope {
                from: self.me,
                to: PartyId(i),
                payload: msg.clone(),
            });
        }
    }
}

/// An asynchronous protocol: a per-party event handler.
pub trait AsyncProtocol {
    /// Message type.
    type Msg: Payload;
    /// Output type.
    type Output: Clone;

    /// Called once at time 0.
    fn on_start(&mut self, ctx: &mut AsyncCtx<Self::Msg>);

    /// Called on each delivered message. Implementations should keep
    /// responding even after producing an output — asynchronous peers may
    /// still depend on their cooperation.
    fn on_message(&mut self, env: Envelope<Self::Msg>, ctx: &mut AsyncCtx<Self::Msg>);

    /// The party's output once decided.
    fn output(&self) -> Option<Self::Output>;
}

/// The asynchronous Byzantine adversary: statically corrupts a set and
/// reacts to messages delivered to corrupted parties by injecting
/// arbitrary traffic from corrupted senders.
pub trait AsyncAdversary<M: Payload> {
    /// The statically corrupted set (must have at most `t` members).
    fn corrupted(&self) -> Vec<PartyId>;

    /// Called at time 0; `sends` collects `(from, to, msg)` injections
    /// (`from` must be corrupted).
    fn on_start(&mut self, sends: &mut Vec<(PartyId, PartyId, M)>);

    /// Called whenever `env` is delivered to corrupted party `env.to`.
    fn on_deliver(&mut self, env: &Envelope<M>, sends: &mut Vec<(PartyId, PartyId, M)>);
}

/// The do-nothing adversary (no corruption).
#[derive(Clone, Copy, Debug, Default)]
pub struct PassiveAsync;

impl<M: Payload> AsyncAdversary<M> for PassiveAsync {
    fn corrupted(&self) -> Vec<PartyId> {
        Vec::new()
    }
    fn on_start(&mut self, _sends: &mut Vec<(PartyId, PartyId, M)>) {}
    fn on_deliver(&mut self, _env: &Envelope<M>, _sends: &mut Vec<(PartyId, PartyId, M)>) {}
}

/// Crash-at-start faults: the corrupted parties never send anything.
#[derive(Clone, Debug)]
pub struct SilentAsync {
    /// The crashed set.
    pub parties: Vec<PartyId>,
}

impl<M: Payload> AsyncAdversary<M> for SilentAsync {
    fn corrupted(&self) -> Vec<PartyId> {
        self.parties.clone()
    }
    fn on_start(&mut self, _sends: &mut Vec<(PartyId, PartyId, M)>) {}
    fn on_deliver(&mut self, _env: &Envelope<M>, _sends: &mut Vec<(PartyId, PartyId, M)>) {}
}

/// Why an asynchronous run failed.
#[derive(Clone, Debug, PartialEq)]
pub enum AsyncSimError {
    /// `n == 0`, `t >= n`, or the adversary corrupted more than `t`.
    BadConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// The event queue drained or the event budget ran out before all
    /// honest parties produced outputs — an asynchronous deadlock.
    Stalled {
        /// Events processed before stalling.
        events: usize,
    },
}

impl fmt::Display for AsyncSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsyncSimError::BadConfig { reason } => write!(f, "bad async config: {reason}"),
            AsyncSimError::Stalled { events } => {
                write!(f, "asynchronous deadlock after {events} delivery events")
            }
        }
    }
}

impl Error for AsyncSimError {}

/// The result of a completed asynchronous run.
#[derive(Clone, Debug)]
pub struct AsyncReport<O> {
    /// Per-party outputs; `None` exactly for corrupted parties.
    pub outputs: Vec<Option<O>>,
    /// Which parties were corrupted.
    pub corrupted: Vec<bool>,
    /// Time (in normalized delay units ≤ 1 per hop) at which the last
    /// honest party decided — the asynchronous analogue of round
    /// complexity.
    pub completion_time: f64,
    /// Total messages delivered.
    pub messages_delivered: usize,
}

impl<O: Clone> AsyncReport<O> {
    /// Outputs of the honest parties only.
    pub fn honest_outputs(&self) -> Vec<O> {
        self.outputs
            .iter()
            .zip(&self.corrupted)
            .filter(|(_, &c)| !c)
            .map(|(o, _)| o.clone().expect("honest parties decide on success"))
            .collect()
    }
}

/// An event in the delivery queue, ordered by time then sequence number
/// (for determinism).
struct Event<M> {
    time: f64,
    seq: u64,
    env: Envelope<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time.total_cmp(&other.time) == std::cmp::Ordering::Equal && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Runs an asynchronous protocol instance to completion.
///
/// # Errors
///
/// * [`AsyncSimError::BadConfig`] for invalid `n`/`t` or an oversized
///   corrupted set;
/// * [`AsyncSimError::Stalled`] if honest parties stop making progress
///   (queue drained) or `max_events` is exceeded.
pub fn run_async<P, A, F>(
    cfg: AsyncConfig,
    mut factory: F,
    mut adversary: A,
) -> Result<AsyncReport<P::Output>, AsyncSimError>
where
    P: AsyncProtocol,
    A: AsyncAdversary<P::Msg>,
    F: FnMut(PartyId, usize) -> P,
{
    let n = cfg.n;
    if n == 0 {
        return Err(AsyncSimError::BadConfig {
            reason: "n must be positive".into(),
        });
    }
    if cfg.t >= n {
        return Err(AsyncSimError::BadConfig {
            reason: format!("t = {} must be < n", cfg.t),
        });
    }
    let mut corrupted = vec![false; n];
    let byz = adversary.corrupted();
    if byz.len() > cfg.t {
        return Err(AsyncSimError::BadConfig {
            reason: format!("adversary corrupts {} > t = {}", byz.len(), cfg.t),
        });
    }
    for p in byz {
        if p.index() >= n {
            return Err(AsyncSimError::BadConfig {
                reason: format!("corrupted id {p} out of range"),
            });
        }
        corrupted[p.index()] = true;
    }

    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut parties: Vec<Option<P>> = (0..n)
        .map(|i| {
            if corrupted[i] {
                None
            } else {
                Some(factory(PartyId(i), n))
            }
        })
        .collect();

    let mut heap: BinaryHeap<Reverse<Event<P::Msg>>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |heap: &mut BinaryHeap<Reverse<Event<P::Msg>>>,
                rng: &mut ChaCha8Rng,
                seq: &mut u64,
                now: f64,
                env: Envelope<P::Msg>| {
        let delay = cfg.delay.sample(&env, rng);
        *seq += 1;
        heap.push(Reverse(Event {
            time: now + delay,
            seq: *seq,
            env,
        }));
    };

    // Time 0: honest starts, adversary start injections.
    for (i, party) in parties.iter_mut().enumerate() {
        if let Some(p) = party.as_mut() {
            let mut ctx = AsyncCtx {
                me: PartyId(i),
                n,
                now: 0.0,
                outbox: Vec::new(),
            };
            p.on_start(&mut ctx);
            for env in ctx.outbox {
                push(&mut heap, &mut rng, &mut seq, 0.0, env);
            }
        }
    }
    let mut adv_sends = Vec::new();
    adversary.on_start(&mut adv_sends);
    for (from, to, msg) in adv_sends.drain(..) {
        assert!(
            corrupted[from.index()],
            "adversary must send from corrupted parties"
        );
        push(
            &mut heap,
            &mut rng,
            &mut seq,
            0.0,
            Envelope {
                from,
                to,
                payload: msg,
            },
        );
    }

    let all_done = |parties: &[Option<P>]| {
        parties
            .iter()
            .all(|p| p.as_ref().is_none_or(|p| p.output().is_some()))
    };

    let mut events = 0usize;
    let mut completion_time = 0.0f64;
    if all_done(&parties) {
        return Ok(AsyncReport {
            outputs: parties
                .iter()
                .map(|p| p.as_ref().and_then(P::output))
                .collect(),
            corrupted,
            completion_time,
            messages_delivered: 0,
        });
    }

    while let Some(Reverse(Event { time, env, .. })) = heap.pop() {
        events += 1;
        if events > cfg.max_events {
            return Err(AsyncSimError::Stalled { events });
        }
        let to = env.to.index();
        if corrupted[to] {
            adversary.on_deliver(&env, &mut adv_sends);
            for (from, to, msg) in adv_sends.drain(..) {
                assert!(
                    corrupted[from.index()],
                    "adversary must send from corrupted parties"
                );
                push(
                    &mut heap,
                    &mut rng,
                    &mut seq,
                    time,
                    Envelope {
                        from,
                        to,
                        payload: msg,
                    },
                );
            }
            continue;
        }
        let was_done = parties[to].as_ref().expect("honest").output().is_some();
        {
            let p = parties[to].as_mut().expect("honest");
            let mut ctx = AsyncCtx {
                me: env.to,
                n,
                now: time,
                outbox: Vec::new(),
            };
            p.on_message(env, &mut ctx);
            for out in ctx.outbox {
                push(&mut heap, &mut rng, &mut seq, time, out);
            }
        }
        if !was_done && parties[to].as_ref().expect("honest").output().is_some() {
            completion_time = completion_time.max(time);
            if all_done(&parties) {
                return Ok(AsyncReport {
                    outputs: parties
                        .iter()
                        .map(|p| p.as_ref().and_then(P::output))
                        .collect(),
                    corrupted,
                    completion_time,
                    messages_delivered: events,
                });
            }
        }
    }
    Err(AsyncSimError::Stalled { events })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Census {
        heard: usize,
        need: usize,
    }
    impl AsyncProtocol for Census {
        type Msg = u64;
        type Output = usize;
        fn on_start(&mut self, ctx: &mut AsyncCtx<u64>) {
            ctx.broadcast(1);
        }
        fn on_message(&mut self, _e: Envelope<u64>, _ctx: &mut AsyncCtx<u64>) {
            self.heard += 1;
        }
        fn output(&self) -> Option<usize> {
            (self.heard >= self.need).then_some(self.heard)
        }
    }

    #[test]
    fn waits_only_for_n_minus_t_under_silence() {
        // One silent corrupted party: honest parties wait for n - t = 3.
        let cfg = AsyncConfig {
            n: 4,
            t: 1,
            seed: 9,
            delay: DelayModel::Uniform { min: 0.2 },
            max_events: 10_000,
        };
        let report = run_async(
            cfg,
            |_, _| Census { heard: 0, need: 3 },
            SilentAsync {
                parties: vec![PartyId(3)],
            },
        )
        .unwrap();
        assert!(report.corrupted[3]);
        assert!(report.outputs[3].is_none());
        for i in 0..3 {
            assert!(report.outputs[i].unwrap() >= 3);
        }
    }

    #[test]
    fn waiting_for_everyone_with_a_silent_party_stalls() {
        let cfg = AsyncConfig {
            n: 4,
            t: 1,
            seed: 9,
            delay: DelayModel::Uniform { min: 0.2 },
            max_events: 10_000,
        };
        let err = run_async(
            cfg,
            |_, _| Census { heard: 0, need: 4 },
            SilentAsync {
                parties: vec![PartyId(3)],
            },
        )
        .unwrap_err();
        assert!(matches!(err, AsyncSimError::Stalled { .. }));
    }

    #[test]
    fn lockstep_delays_give_unit_time() {
        let cfg = AsyncConfig {
            n: 5,
            t: 0,
            seed: 1,
            delay: DelayModel::Lockstep,
            max_events: 10_000,
        };
        let report = run_async(cfg, |_, _| Census { heard: 0, need: 5 }, PassiveAsync).unwrap();
        assert!((report.completion_time - 1.0).abs() < 1e-12);
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed| {
            let cfg = AsyncConfig {
                n: 6,
                t: 0,
                seed,
                delay: DelayModel::Uniform { min: 0.1 },
                max_events: 10_000,
            };
            run_async(cfg, |_, _| Census { heard: 0, need: 6 }, PassiveAsync).unwrap()
        };
        let (a, b) = (run(7), run(7));
        assert_eq!(a.completion_time, b.completion_time);
        assert_eq!(a.messages_delivered, b.messages_delivered);
    }

    #[test]
    fn slow_parties_model_slows_their_links() {
        let cfg = AsyncConfig {
            n: 4,
            t: 0,
            seed: 3,
            delay: DelayModel::SlowParties {
                slow: vec![PartyId(0)],
                min: 0.1,
            },
            max_events: 10_000,
        };
        let report = run_async(cfg, |_, _| Census { heard: 0, need: 4 }, PassiveAsync).unwrap();
        // Everyone needs p0's message, which takes time 1.
        assert!(report.completion_time >= 1.0);
    }

    #[test]
    fn bad_configs_rejected() {
        let cfg = AsyncConfig {
            n: 0,
            t: 0,
            seed: 0,
            delay: DelayModel::Lockstep,
            max_events: 10,
        };
        assert!(matches!(
            run_async(cfg, |_, _| Census { heard: 0, need: 1 }, PassiveAsync),
            Err(AsyncSimError::BadConfig { .. })
        ));
        let cfg = AsyncConfig {
            n: 4,
            t: 0,
            seed: 0,
            delay: DelayModel::Lockstep,
            max_events: 10,
        };
        assert!(matches!(
            run_async(
                cfg,
                |_, _| Census { heard: 0, need: 1 },
                SilentAsync {
                    parties: vec![PartyId(0)]
                }
            ),
            Err(AsyncSimError::BadConfig { .. })
        ));
    }
}
