//! A deterministic event-driven **asynchronous** network simulator.
//!
//! The reproduced paper works in the synchronous model, but its headline
//! comparison is against the *asynchronous* state of the art (Nowak &
//! Rybicki's `O(log D)`-round protocol). This crate provides the matching
//! execution substrate: messages are delivered *eventually*, in an order
//! controlled by a delay model rather than in lockstep rounds.
//!
//! # Model
//!
//! * Parties are event handlers ([`AsyncProtocol`]): they act once at
//!   start-up and then upon each delivered message or fired timer; there
//!   are no rounds.
//! * Every sent message is assigned a delivery delay by the
//!   [`DelayModel`]; following the standard convention for measuring
//!   asynchronous *time complexity*, delays are normalized to `(0, 1]` —
//!   so the completion time of a run counts "longest-chain units", the
//!   async analogue of rounds.
//! * Up to `t` statically corrupted parties are driven by an
//!   [`AsyncAdversary`], which reacts to every message delivered to a
//!   corrupted party and may inject arbitrary (per-recipient) messages
//!   from corrupted senders. Channels remain authenticated.
//! * On top of the adversary, a benign [`FaultPlan`] may be injected
//!   ([`run_async_faulted`]): seed-driven per-message drop, duplication
//!   and delay spikes, scheduled partitions, and crash-with-recovery
//!   windows. The [`Reliable`] sublayer (acks + retransmission + dedup)
//!   restores exactly-once delivery over such lossy links.
//! * Determinism: a run is a pure function of (config, protocol,
//!   adversary, fault plan); all randomness comes from the seeded delay
//!   model and the plan's own seed, and none of it depends on the
//!   `max_events` headroom.
//!
//! # Example
//!
//! ```
//! use async_net::{run_async, AsyncConfig, AsyncCtx, AsyncProtocol, DelayModel, PassiveAsync};
//! use sim_net::{Envelope, PartyId};
//!
//! /// Everybody announces its id once; output after hearing from all.
//! struct Census { heard: usize, n: usize }
//! impl AsyncProtocol for Census {
//!     type Msg = u64;
//!     type Output = usize;
//!     fn on_start(&mut self, ctx: &mut AsyncCtx<u64>) {
//!         ctx.broadcast(ctx.me().index() as u64);
//!     }
//!     fn on_message(&mut self, _e: Envelope<u64>, _ctx: &mut AsyncCtx<u64>) {
//!         self.heard += 1;
//!     }
//!     fn output(&self) -> Option<usize> {
//!         (self.heard >= self.n).then_some(self.heard)
//!     }
//! }
//!
//! let cfg = AsyncConfig { n: 4, t: 0, seed: 1, delay: DelayModel::Uniform { min: 0.1 },
//!                         max_events: 10_000 };
//! let report = run_async(cfg, |_, n| Census { heard: 0, n }, PassiveAsync).unwrap();
//! assert!(report.outputs.iter().all(|o| *o == Some(4)));
//! assert!(report.completion_time <= 1.0); // one async "round"
//! ```

#![warn(missing_docs)]
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;
use std::hash::{Hash, Hasher};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sim_net::{Envelope, FaultPlan, PartyId, Payload};

mod reliable;
mod virtual_time;

pub use aa_trace::ProtoEvent;
pub use reliable::{RelMsg, Reliable, ReliableState, RETRANSMIT_BIT};
pub use virtual_time::{link_delay, splitmix64, AsyncRecorder, VKey, VirtualScheduler};

/// How message delays are drawn. All models produce delays in `(0, 1]`
/// (the async-time normalization); [`DelayModel::validate`] checks the
/// parameters up front and every sampled delay is debug-asserted against
/// the bound.
#[derive(Clone, Debug)]
pub enum DelayModel {
    /// Independent uniform delays in `[min, 1]` (so still within the
    /// normalized `(0, 1]` as long as `0 < min <= 1`).
    Uniform {
        /// Lower bound (must satisfy `0 < min <= 1`).
        min: f64,
    },
    /// Every message takes exactly `1` — degenerates to lockstep rounds,
    /// useful for comparing against the synchronous simulator.
    Lockstep,
    /// Messages *to or from* the listed parties always take the maximal
    /// delay 1, everyone else `min` — the classic "slow honest minority"
    /// schedule that stresses `n − t` waiting rules.
    SlowParties {
        /// The slowed parties.
        slow: Vec<PartyId>,
        /// Fast-path delay (must satisfy `0 < min <= 1`).
        min: f64,
    },
}

impl DelayModel {
    /// Checks that the model's parameters keep every sampled delay inside
    /// the documented `(0, 1]` normalization.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            DelayModel::Lockstep => Ok(()),
            DelayModel::Uniform { min } | DelayModel::SlowParties { min, .. } => {
                if *min > 0.0 && *min <= 1.0 {
                    Ok(())
                } else {
                    Err(format!("min delay {min} must be in (0, 1]"))
                }
            }
        }
    }

    fn sample(&self, env: &Envelope<impl Payload>, rng: &mut ChaCha8Rng) -> f64 {
        let delay = match self {
            DelayModel::Uniform { min } => rng.gen_range(*min..=1.0),
            DelayModel::Lockstep => 1.0,
            DelayModel::SlowParties { slow, min } => {
                if slow.contains(&env.from) || slow.contains(&env.to) {
                    1.0
                } else {
                    *min
                }
            }
        };
        debug_assert!(
            delay > 0.0 && delay <= 1.0,
            "sampled delay {delay} violates the (0, 1] normalization"
        );
        delay
    }
}

/// Static parameters of an asynchronous run.
#[derive(Clone, Debug)]
pub struct AsyncConfig {
    /// Number of parties.
    pub n: usize,
    /// Corruption bound (statically corrupted parties are chosen by the
    /// adversary through [`AsyncAdversary::corrupted`]).
    pub t: usize,
    /// Seed for the delay model.
    pub seed: u64,
    /// The delay model.
    pub delay: DelayModel,
    /// Hard stop: error out if honest parties have not all terminated
    /// after this many queue events.
    pub max_events: usize,
}

/// Per-activation sending context.
#[derive(Debug)]
pub struct AsyncCtx<M> {
    me: PartyId,
    n: usize,
    now: f64,
    outbox: Vec<Envelope<M>>,
    timers: Vec<(f64, u64)>,
    retransmits: usize,
    events: Vec<ProtoEvent>,
    tracing: bool,
}

/// Everything an activation produced, for transports that drive
/// [`AsyncProtocol`] handlers outside the in-process run loop (the real
/// TCP nodes in `crates/net`). Obtained via [`AsyncCtx::into_parts`].
#[derive(Debug)]
pub struct CtxParts<M> {
    /// Messages sent during the activation, in send order.
    pub outbox: Vec<Envelope<M>>,
    /// Timers set during the activation, as `(delay, token)`.
    pub timers: Vec<(f64, u64)>,
    /// Protocol events emitted during the activation (empty unless the
    /// context was created with tracing enabled).
    pub events: Vec<ProtoEvent>,
    /// Retransmissions credited via [`AsyncCtx::note_retransmit`].
    pub retransmits: usize,
}

impl<M: Payload> AsyncCtx<M> {
    fn new(me: PartyId, n: usize, now: f64) -> Self {
        AsyncCtx {
            me,
            n,
            now,
            outbox: Vec::new(),
            timers: Vec::new(),
            retransmits: 0,
            events: Vec::new(),
            tracing: false,
        }
    }

    /// A context for driving a protocol handler outside the in-process run
    /// loop — the transport seam used by the real-socket backend. Collect
    /// the resulting sends/timers/events with [`AsyncCtx::into_parts`].
    #[must_use]
    pub fn external(me: PartyId, n: usize, now: f64, tracing: bool) -> Self {
        let mut ctx = AsyncCtx::new(me, n, now);
        ctx.tracing = tracing;
        ctx
    }

    /// Consumes the context into its accumulated effects.
    #[must_use]
    pub fn into_parts(self) -> CtxParts<M> {
        CtxParts {
            outbox: self.outbox,
            timers: self.timers,
            events: self.events,
            retransmits: self.retransmits,
        }
    }

    /// This party's id.
    pub fn me(&self) -> PartyId {
        self.me
    }

    /// Number of parties.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Whether this activation is being recorded. Protocols rarely need
    /// this — [`AsyncCtx::emit_with`] already gates on it — but adapters
    /// that drive an inner synchronous protocol (real-aa's bundled party)
    /// use it to pick a traced inner context up front.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Sends `msg` to `to` (delivered after a model-chosen delay).
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range.
    pub fn send(&mut self, to: PartyId, msg: M) {
        assert!(to.index() < self.n, "recipient {to} out of range");
        self.outbox.push(Envelope {
            from: self.me,
            to,
            payload: msg,
        });
    }

    /// Sends `msg` to every party (including the sender).
    pub fn broadcast(&mut self, msg: M) {
        for i in 0..self.n {
            self.outbox.push(Envelope {
                from: self.me,
                to: PartyId(i),
                payload: msg.clone(),
            });
        }
    }

    /// Schedules [`AsyncProtocol::on_timer`] for this party `delay` time
    /// units from now, carrying `token`. Timers are local: they are exempt
    /// from link faults, though a crashed party's timers are deferred to
    /// its recovery instant.
    pub fn set_timer(&mut self, delay: f64, token: u64) {
        debug_assert!(delay > 0.0, "timer delay must be positive");
        self.timers.push((delay, token));
    }

    /// Records one protocol-level retransmission, surfaced in
    /// [`AsyncMetrics::retransmissions`]. Called by the [`Reliable`]
    /// sublayer; available to any protocol that re-sends.
    pub fn note_retransmit(&mut self) {
        self.retransmits += 1;
    }

    /// Emits a protocol-level trace event. Zero-cost when the run is not
    /// recorded: the closure is only evaluated under an active
    /// [`AsyncRecorder`] (mirroring `sim_net::RoundCtx::emit_with`).
    pub fn emit_with(&mut self, f: impl FnOnce() -> ProtoEvent) {
        if self.tracing {
            self.events.push(f());
        }
    }
}

/// An asynchronous protocol: a per-party event handler.
pub trait AsyncProtocol {
    /// Message type.
    type Msg: Payload;
    /// Output type.
    type Output: Clone;

    /// Called once at time 0.
    fn on_start(&mut self, ctx: &mut AsyncCtx<Self::Msg>);

    /// Called on each delivered message. Implementations should keep
    /// responding even after producing an output — asynchronous peers may
    /// still depend on their cooperation.
    fn on_message(&mut self, env: Envelope<Self::Msg>, ctx: &mut AsyncCtx<Self::Msg>);

    /// Called when a timer set through [`AsyncCtx::set_timer`] fires.
    /// The default implementation ignores timers.
    fn on_timer(&mut self, token: u64, ctx: &mut AsyncCtx<Self::Msg>) {
        let _ = (token, ctx);
    }

    /// The party's output once decided.
    fn output(&self) -> Option<Self::Output>;
}

/// The asynchronous Byzantine adversary: statically corrupts a set and
/// reacts to messages delivered to corrupted parties by injecting
/// arbitrary traffic from corrupted senders.
pub trait AsyncAdversary<M: Payload> {
    /// The statically corrupted set (must have at most `t` members).
    fn corrupted(&self) -> Vec<PartyId>;

    /// Called at time 0; `sends` collects `(from, to, msg)` injections
    /// (`from` must be corrupted).
    fn on_start(&mut self, sends: &mut Vec<(PartyId, PartyId, M)>);

    /// Called whenever `env` is delivered to corrupted party `env.to`.
    fn on_deliver(&mut self, env: &Envelope<M>, sends: &mut Vec<(PartyId, PartyId, M)>);
}

/// The do-nothing adversary (no corruption).
#[derive(Clone, Copy, Debug, Default)]
pub struct PassiveAsync;

impl<M: Payload> AsyncAdversary<M> for PassiveAsync {
    fn corrupted(&self) -> Vec<PartyId> {
        Vec::new()
    }
    fn on_start(&mut self, _sends: &mut Vec<(PartyId, PartyId, M)>) {}
    fn on_deliver(&mut self, _env: &Envelope<M>, _sends: &mut Vec<(PartyId, PartyId, M)>) {}
}

/// Crash-at-start faults: the corrupted parties never send anything.
#[derive(Clone, Debug)]
pub struct SilentAsync {
    /// The crashed set.
    pub parties: Vec<PartyId>,
}

impl<M: Payload> AsyncAdversary<M> for SilentAsync {
    fn corrupted(&self) -> Vec<PartyId> {
        self.parties.clone()
    }
    fn on_start(&mut self, _sends: &mut Vec<(PartyId, PartyId, M)>) {}
    fn on_deliver(&mut self, _env: &Envelope<M>, _sends: &mut Vec<(PartyId, PartyId, M)>) {}
}

/// Why an asynchronous run failed.
#[derive(Clone, Debug, PartialEq)]
pub enum AsyncSimError {
    /// `n == 0`, `t >= n`, an invalid delay model, or the adversary
    /// corrupted more than `t`.
    BadConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// The event queue drained or the event budget ran out before all
    /// honest parties produced outputs — an asynchronous deadlock.
    Stalled {
        /// Events processed before stalling.
        events: usize,
    },
    /// The fault plan is structurally invalid for this network.
    BadFaultPlan {
        /// Human-readable reason.
        reason: String,
    },
    /// The [`Scheduler`] cut the run short via
    /// [`Scheduler::observe_state`] — exploration tooling pruning an
    /// already-covered branch, not a protocol failure.
    Aborted {
        /// Events processed before the abort.
        events: usize,
    },
}

impl fmt::Display for AsyncSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsyncSimError::BadConfig { reason } => write!(f, "bad async config: {reason}"),
            AsyncSimError::Stalled { events } => {
                write!(f, "asynchronous deadlock after {events} delivery events")
            }
            AsyncSimError::BadFaultPlan { reason } => write!(f, "bad fault plan: {reason}"),
            AsyncSimError::Aborted { events } => {
                write!(f, "run aborted by the scheduler after {events} events")
            }
        }
    }
}

impl Error for AsyncSimError {}

/// Counters describing what the substrate (and the fault plan) did during
/// one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AsyncMetrics {
    /// Messages delivered (to honest and corrupted recipients alike).
    pub delivered: usize,
    /// Protocol-level retransmissions (see [`AsyncCtx::note_retransmit`]).
    pub retransmissions: usize,
    /// Messages lost to the fault plan: probabilistic drops, severed
    /// partition links, and deliveries to crashed recipients.
    pub fault_drops: usize,
    /// Extra copies injected by the fault plan's duplication faults.
    pub fault_dups: usize,
    /// Messages whose delay was forced to the maximum by a spike fault.
    pub fault_delay_spikes: usize,
    /// Timer activations delivered to protocols.
    pub timer_fires: usize,
}

/// The result of a completed asynchronous run.
#[derive(Clone, Debug, PartialEq)]
pub struct AsyncReport<O> {
    /// Per-party outputs; `None` exactly for corrupted parties and
    /// permanently crashed (never-recovering) parties.
    pub outputs: Vec<Option<O>>,
    /// Which parties were corrupted.
    pub corrupted: Vec<bool>,
    /// Which honest parties were permanently crashed by the fault plan
    /// (all `false` on plan-free runs).
    pub crashed: Vec<bool>,
    /// Time (in normalized delay units ≤ 1 per hop) at which the last
    /// honest party decided — the asynchronous analogue of round
    /// complexity.
    pub completion_time: f64,
    /// Total messages delivered.
    pub messages_delivered: usize,
    /// Substrate counters (retransmissions, fault firings, timers).
    pub metrics: AsyncMetrics,
}

impl<O: Clone> AsyncReport<O> {
    /// Outputs of the honest (and not permanently crashed) parties only.
    pub fn honest_outputs(&self) -> Vec<O> {
        self.outputs
            .iter()
            .zip(self.corrupted.iter().zip(&self.crashed))
            .filter(|(_, (&c, &d))| !c && !d)
            .map(|(o, _)| o.clone().expect("honest parties decide on success"))
            .collect()
    }
}

/// What a scheduler hands back to the run loop: a message delivery or a
/// local timer firing.
#[derive(Clone, Debug)]
pub enum SchedEvent<M> {
    /// Deliver `env` to `env.to`.
    Deliver(Envelope<M>),
    /// Fire `party`'s timer carrying `token`.
    Timer {
        /// The timer's owner.
        party: PartyId,
        /// The token passed back to [`AsyncProtocol::on_timer`].
        token: u64,
    },
}

/// The pluggable event-selection policy of an asynchronous run.
///
/// The run loop ([`run_async_with`]) is scheduler-agnostic: it pushes
/// every send and timer into the scheduler and activates whatever the
/// scheduler pops next. [`SeededScheduler`] reproduces the classic
/// seeded delay-model semantics ([`run_async`] / [`run_async_faulted`]
/// are thin wrappers over it); exhaustive-exploration tools implement
/// this trait to *enumerate* delivery orders instead of sampling one.
pub trait Scheduler<M: Payload> {
    /// Accepts a message sent at time `now`. The scheduler decides when
    /// (and, for fault-modelling schedulers, whether) it is delivered.
    fn push_send(&mut self, now: f64, env: Envelope<M>);

    /// Accepts a timer set at time `now` to fire `delay` units later.
    fn push_timer(&mut self, now: f64, party: PartyId, token: u64, delay: f64);

    /// Re-queues an event at an absolute time (used by the run loop to
    /// defer a crashed party's timers to its recovery instant).
    fn push_at(&mut self, time: f64, what: SchedEvent<M>);

    /// Pops the next event together with its delivery time, or `None`
    /// when no event remains.
    fn pop(&mut self) -> Option<(f64, SchedEvent<M>)>;

    /// The substrate counters this scheduler accumulates; the run loop
    /// also bumps `timer_fires`, `fault_drops` and `delivered` through
    /// this access.
    fn metrics_mut(&mut self) -> &mut AsyncMetrics;

    /// Whether the run loop should report canonical state digests after
    /// each activation (see [`run_async_explored`]). Defaults to `false`;
    /// sampling schedulers never need them.
    fn wants_observations(&self) -> bool {
        false
    }

    /// Receives a digest of the global protocol state after an
    /// activation. Returning `false` aborts the run with
    /// [`AsyncSimError::Aborted`] — how exploration tools prune visited
    /// branches.
    fn observe_state(&mut self, digest: u64) -> bool {
        let _ = digest;
        true
    }
}

/// An event in the delivery queue, ordered by time then sequence number
/// (for determinism).
struct Event<M> {
    time: f64,
    seq: u64,
    what: SchedEvent<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time.total_cmp(&other.time) == std::cmp::Ordering::Equal && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// The synchronous round a moment of async time belongs to: a message
/// sent at time `s` counts as round `⌊s⌋ + 1` traffic, aligning the
/// fault plan's round-indexed windows with normalized async time (round
/// `r` spans the time interval `[r − 1, r)`).
#[must_use]
pub fn round_of(time: f64) -> u32 {
    let floored = time.max(0.0).floor();
    if floored >= f64::from(u32::MAX - 1) {
        u32::MAX - 1
    } else {
        floored as u32 + 1
    }
}

/// When a party down at `round` will be back up, in time units; `None`
/// if it never recovers.
fn recovery_time(plan: &FaultPlan, party: usize, round: u32) -> Option<f64> {
    plan.crashes
        .iter()
        .filter(|c| c.party == party && c.down(round))
        .map(|c| c.recover_round)
        .max()
        .and_then(|rr| (rr != u32::MAX).then(|| f64::from(rr - 1)))
}

/// The classic seeded scheduler: a time-ordered event queue plus
/// everything needed to push into it — delay sampling, fault-plan
/// application, and the metric counters. This is the [`Scheduler`] that
/// [`run_async`] and [`run_async_faulted`] run on.
pub struct SeededScheduler<'a, M: Payload> {
    heap: BinaryHeap<Reverse<Event<M>>>,
    seq: u64,
    delay: &'a DelayModel,
    rng: ChaCha8Rng,
    plan: Option<&'a FaultPlan>,
    fault_rng: ChaCha8Rng,
    metrics: AsyncMetrics,
}

impl<'a, M: Payload> SeededScheduler<'a, M> {
    /// Builds the scheduler for `cfg` (and optionally a fault plan whose
    /// link faults it applies at push time).
    pub fn new(cfg: &'a AsyncConfig, plan: Option<&'a FaultPlan>) -> Self {
        SeededScheduler {
            heap: BinaryHeap::new(),
            seq: 0,
            delay: &cfg.delay,
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            plan,
            fault_rng: ChaCha8Rng::seed_from_u64(plan.map_or(0, |p| p.seed)),
            metrics: AsyncMetrics::default(),
        }
    }

    fn push_raw(&mut self, time: f64, what: SchedEvent<M>) {
        self.seq += 1;
        self.heap.push(Reverse(Event {
            time,
            seq: self.seq,
            what,
        }));
    }
}

impl<M: Payload> Scheduler<M> for SeededScheduler<'_, M> {
    /// Queues a message sent at `now`, applying link faults. The main
    /// delay stream sees exactly one draw per logical send whether or not
    /// a plan is active, so a plan never perturbs the base schedule.
    fn push_send(&mut self, now: f64, env: Envelope<M>) {
        if let Some(plan) = self.plan {
            if plan.severed(round_of(now), env.from.index(), env.to.index()) {
                self.metrics.fault_drops += 1;
                return;
            }
        }
        let mut delay = self.delay.sample(&env, &mut self.rng);
        let mut duplicate = None;
        if let Some(plan) = self.plan {
            if !plan.lockstep_compatible() {
                // Fixed draw order per send: drop, duplicate, spike.
                let drop_roll = self.fault_rng.gen_range(0..1000u32);
                let dup_roll = self.fault_rng.gen_range(0..1000u32);
                let spike_roll = self.fault_rng.gen_range(0..1000u32);
                if drop_roll < plan.drop_permille {
                    self.metrics.fault_drops += 1;
                    return;
                }
                if spike_roll < plan.delay_spike_permille {
                    self.metrics.fault_delay_spikes += 1;
                    delay = 1.0;
                }
                if dup_roll < plan.dup_permille {
                    self.metrics.fault_dups += 1;
                    duplicate = Some(self.delay.sample(&env, &mut self.fault_rng));
                }
            }
        }
        if let Some(dup_delay) = duplicate {
            self.push_raw(now + dup_delay, SchedEvent::Deliver(env.clone()));
        }
        self.push_raw(now + delay, SchedEvent::Deliver(env));
    }

    fn push_timer(&mut self, now: f64, party: PartyId, token: u64, delay: f64) {
        self.push_raw(now + delay, SchedEvent::Timer { party, token });
    }

    fn push_at(&mut self, time: f64, what: SchedEvent<M>) {
        self.push_raw(time, what);
    }

    fn pop(&mut self) -> Option<(f64, SchedEvent<M>)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.what))
    }

    fn metrics_mut(&mut self) -> &mut AsyncMetrics {
        &mut self.metrics
    }
}

/// Runs an asynchronous protocol instance to completion (no fault plan).
///
/// # Errors
///
/// * [`AsyncSimError::BadConfig`] for invalid `n`/`t`, an invalid delay
///   model, or an oversized corrupted set;
/// * [`AsyncSimError::Stalled`] if honest parties stop making progress
///   (queue drained) or `max_events` is exceeded.
pub fn run_async<P, A, F>(
    cfg: AsyncConfig,
    factory: F,
    adversary: A,
) -> Result<AsyncReport<P::Output>, AsyncSimError>
where
    P: AsyncProtocol,
    A: AsyncAdversary<P::Msg>,
    F: FnMut(PartyId, usize) -> P,
{
    let mut sched = SeededScheduler::new(&cfg, None);
    run_loop(&cfg, None, factory, adversary, &mut sched, None, None)
}

/// [`run_async`] under a [`FaultPlan`]: probabilistic drop, duplication
/// and delay-spike faults per message, plus scheduled partitions and
/// crash/recovery windows mapped onto async time (round `r` spans the
/// time interval `[r − 1, r)`).
///
/// Async fault semantics (the documented choice):
///
/// * drop/duplicate/spike decisions are drawn from a dedicated RNG seeded
///   by `plan.seed`, in delivery order — independent of `max_events`
///   headroom and never perturbing the base delay schedule;
/// * a message is dropped if its link is severed at *send* time, or by a
///   probabilistic drop, or if its recipient is down at *delivery* time;
/// * a crashed party is frozen: it processes nothing while down, and its
///   timers due during the outage fire at the recovery instant instead
///   (timers of never-recovering parties are discarded);
/// * permanently crashed parties are excluded from termination, reported
///   in [`AsyncReport::crashed`] with `None` outputs.
///
/// Bare protocols generally stall under lossy plans — wrap them in
/// [`Reliable`] to restore guaranteed delivery on eventually-connected
/// links.
///
/// # Errors
///
/// As [`run_async`], plus [`AsyncSimError::BadFaultPlan`] for a
/// structurally invalid plan.
pub fn run_async_faulted<P, A, F>(
    cfg: AsyncConfig,
    plan: &FaultPlan,
    factory: F,
    adversary: A,
) -> Result<AsyncReport<P::Output>, AsyncSimError>
where
    P: AsyncProtocol,
    A: AsyncAdversary<P::Msg>,
    F: FnMut(PartyId, usize) -> P,
{
    let mut sched = SeededScheduler::new(&cfg, Some(plan));
    run_loop(&cfg, Some(plan), factory, adversary, &mut sched, None, None)
}

/// Runs an asynchronous protocol on a caller-supplied [`Scheduler`] —
/// the substrate-level entry point behind [`run_async`] and
/// [`run_async_faulted`]. `plan` drives the run loop's crash handling
/// (deferred timers, dropped deliveries to crashed recipients); link
/// faults are the scheduler's own business.
///
/// # Errors
///
/// As [`run_async_faulted`], plus [`AsyncSimError::Aborted`] if the
/// scheduler cuts the run short.
pub fn run_async_with<P, A, F, S>(
    cfg: &AsyncConfig,
    plan: Option<&FaultPlan>,
    factory: F,
    adversary: A,
    sched: &mut S,
) -> Result<AsyncReport<P::Output>, AsyncSimError>
where
    P: AsyncProtocol,
    A: AsyncAdversary<P::Msg>,
    F: FnMut(PartyId, usize) -> P,
    S: Scheduler<P::Msg>,
{
    run_loop(cfg, plan, factory, adversary, sched, None, None)
}

/// [`run_async_with`] plus flight recording: protocol events emitted via
/// [`AsyncCtx::emit_with`] are captured into `recorder`, stamped with
/// their virtual time and per-party emission ordinal. Pair with a
/// [`VirtualScheduler`] to produce the in-process reference trace the
/// real-socket differential gate compares against.
///
/// # Errors
///
/// As [`run_async_with`].
pub fn run_async_recorded<P, A, F, S>(
    cfg: &AsyncConfig,
    factory: F,
    adversary: A,
    sched: &mut S,
    recorder: &mut AsyncRecorder,
) -> Result<AsyncReport<P::Output>, AsyncSimError>
where
    P: AsyncProtocol,
    A: AsyncAdversary<P::Msg>,
    F: FnMut(PartyId, usize) -> P,
    S: Scheduler<P::Msg>,
{
    run_loop(cfg, None, factory, adversary, sched, None, Some(recorder))
}

/// [`run_async_with`] for exploration: after every activation a
/// canonical digest of the global protocol state (a deterministic hash
/// of each party's `Debug` rendering) is reported to the scheduler via
/// [`Scheduler::observe_state`], which may prune the run. Digests are
/// only computed while [`Scheduler::wants_observations`] returns `true`.
///
/// # Errors
///
/// As [`run_async_with`].
pub fn run_async_explored<P, A, F, S>(
    cfg: &AsyncConfig,
    plan: Option<&FaultPlan>,
    factory: F,
    adversary: A,
    sched: &mut S,
) -> Result<AsyncReport<P::Output>, AsyncSimError>
where
    P: AsyncProtocol + fmt::Debug,
    A: AsyncAdversary<P::Msg>,
    F: FnMut(PartyId, usize) -> P,
    S: Scheduler<P::Msg>,
{
    run_loop(
        cfg,
        plan,
        factory,
        adversary,
        sched,
        Some(state_digest::<P>),
        None,
    )
}

/// A deterministic (fixed-key) digest of every party's `Debug` state —
/// stable across runs and processes, so exploration reports reproduce
/// bit-for-bit.
fn state_digest<P: AsyncProtocol + fmt::Debug>(parties: &[Option<P>]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for p in parties {
        match p {
            Some(p) => format!("{p:?}").hash(&mut h),
            None => 0u8.hash(&mut h),
        }
    }
    h.finish()
}

/// Drains an activation context into the scheduler: sends, timers,
/// retransmission credit, and (when recording) emitted protocol events.
fn flush_ctx<M: Payload, S: Scheduler<M>>(
    sched: &mut S,
    ctx: AsyncCtx<M>,
    recorder: Option<&mut AsyncRecorder>,
) {
    let AsyncCtx {
        me,
        now,
        outbox,
        timers,
        retransmits,
        events,
        ..
    } = ctx;
    if let Some(rec) = recorder {
        for event in events {
            rec.record_proto(now, me.index(), event);
        }
    }
    sched.metrics_mut().retransmissions += retransmits;
    for env in outbox {
        sched.push_send(now, env);
    }
    for (delay, token) in timers {
        sched.push_timer(now, me, token, delay);
    }
}

/// The optional state-digest hook of [`run_async_explored`]: a pure
/// function of every party's current state (crashed slots are `None`).
type DigestFn<P> = fn(&[Option<P>]) -> u64;

fn run_loop<P, A, F, S>(
    cfg: &AsyncConfig,
    plan: Option<&FaultPlan>,
    mut factory: F,
    mut adversary: A,
    sched: &mut S,
    digest: Option<DigestFn<P>>,
    mut recorder: Option<&mut AsyncRecorder>,
) -> Result<AsyncReport<P::Output>, AsyncSimError>
where
    P: AsyncProtocol,
    A: AsyncAdversary<P::Msg>,
    F: FnMut(PartyId, usize) -> P,
    S: Scheduler<P::Msg>,
{
    let n = cfg.n;
    if n == 0 {
        return Err(AsyncSimError::BadConfig {
            reason: "n must be positive".into(),
        });
    }
    if cfg.t >= n {
        return Err(AsyncSimError::BadConfig {
            reason: format!("t = {} must be < n", cfg.t),
        });
    }
    cfg.delay
        .validate()
        .map_err(|reason| AsyncSimError::BadConfig { reason })?;
    if let Some(plan) = plan {
        plan.validate(n).map_err(|e| AsyncSimError::BadFaultPlan {
            reason: e.to_string(),
        })?;
    }
    let mut corrupted = vec![false; n];
    let byz = adversary.corrupted();
    if byz.len() > cfg.t {
        return Err(AsyncSimError::BadConfig {
            reason: format!("adversary corrupts {} > t = {}", byz.len(), cfg.t),
        });
    }
    for p in byz {
        if p.index() >= n {
            return Err(AsyncSimError::BadConfig {
                reason: format!("corrupted id {p} out of range"),
            });
        }
        corrupted[p.index()] = true;
    }
    let mut perm_crashed = vec![false; n];
    if let Some(plan) = plan {
        for party in plan.permanently_crashed() {
            perm_crashed[party] = true;
        }
    }

    let mut parties: Vec<Option<P>> = (0..n)
        .map(|i| {
            if corrupted[i] {
                None
            } else {
                Some(factory(PartyId(i), n))
            }
        })
        .collect();

    // Time 0: honest starts, adversary start injections.
    let tracing = recorder.is_some();
    for (i, party) in parties.iter_mut().enumerate() {
        if let Some(p) = party.as_mut() {
            let mut ctx = AsyncCtx::new(PartyId(i), n, 0.0);
            ctx.tracing = tracing;
            p.on_start(&mut ctx);
            flush_ctx(sched, ctx, recorder.as_deref_mut());
        }
    }
    let mut adv_sends = Vec::new();
    adversary.on_start(&mut adv_sends);
    for (from, to, msg) in adv_sends.drain(..) {
        assert!(
            corrupted[from.index()],
            "adversary must send from corrupted parties"
        );
        sched.push_send(
            0.0,
            Envelope {
                from,
                to,
                payload: msg,
            },
        );
    }

    let all_done = |parties: &[Option<P>], perm_crashed: &[bool]| {
        parties.iter().enumerate().all(|(i, p)| {
            p.as_ref()
                .is_none_or(|p| perm_crashed[i] || p.output().is_some())
        })
    };
    let make_report = |parties: &[Option<P>],
                       corrupted: Vec<bool>,
                       perm_crashed: Vec<bool>,
                       completion_time: f64,
                       delivered: usize,
                       metrics: AsyncMetrics| AsyncReport {
        outputs: parties
            .iter()
            .enumerate()
            .map(|(i, p)| {
                if perm_crashed[i] {
                    None
                } else {
                    p.as_ref().and_then(P::output)
                }
            })
            .collect(),
        corrupted,
        crashed: perm_crashed,
        completion_time,
        messages_delivered: delivered,
        metrics,
    };

    let mut events = 0usize;
    let mut delivered = 0usize;
    let mut completion_time = 0.0f64;
    if all_done(&parties, &perm_crashed) {
        return Ok(make_report(
            &parties,
            corrupted,
            perm_crashed,
            completion_time,
            0,
            *sched.metrics_mut(),
        ));
    }

    while let Some((time, what)) = sched.pop() {
        events += 1;
        if events > cfg.max_events {
            return Err(AsyncSimError::Stalled { events });
        }
        let (party, activation) = match what {
            SchedEvent::Timer { party, token } => {
                let i = party.index();
                if corrupted[i] {
                    continue;
                }
                if let Some(plan) = plan {
                    let round = round_of(time);
                    if plan.crashed_in(i, round) {
                        // Defer the timer to the recovery instant; a
                        // never-recovering party's timers die with it.
                        if let Some(rt) = recovery_time(plan, i, round) {
                            sched.push_at(rt, SchedEvent::Timer { party, token });
                        }
                        continue;
                    }
                }
                sched.metrics_mut().timer_fires += 1;
                (party, Activation::Timer(token))
            }
            SchedEvent::Deliver(env) => {
                let to = env.to;
                if plan.is_some_and(|p| p.crashed_in(to.index(), round_of(time))) {
                    sched.metrics_mut().fault_drops += 1;
                    continue;
                }
                if corrupted[to.index()] {
                    delivered += 1;
                    adversary.on_deliver(&env, &mut adv_sends);
                    for (from, to, msg) in adv_sends.drain(..) {
                        assert!(
                            corrupted[from.index()],
                            "adversary must send from corrupted parties"
                        );
                        sched.push_send(
                            time,
                            Envelope {
                                from,
                                to,
                                payload: msg,
                            },
                        );
                    }
                    continue;
                }
                delivered += 1;
                (to, Activation::Message(env))
            }
        };

        let i = party.index();
        let was_done = parties[i].as_ref().expect("honest").output().is_some();
        {
            let p = parties[i].as_mut().expect("honest");
            let mut ctx = AsyncCtx::new(party, n, time);
            ctx.tracing = tracing;
            match activation {
                Activation::Message(env) => p.on_message(env, &mut ctx),
                Activation::Timer(token) => p.on_timer(token, &mut ctx),
            }
            flush_ctx(sched, ctx, recorder.as_deref_mut());
        }
        if let Some(dg) = digest {
            if sched.wants_observations() && !sched.observe_state(dg(&parties)) {
                return Err(AsyncSimError::Aborted { events });
            }
        }
        if !was_done && parties[i].as_ref().expect("honest").output().is_some() {
            completion_time = completion_time.max(time);
            if all_done(&parties, &perm_crashed) {
                sched.metrics_mut().delivered = delivered;
                return Ok(make_report(
                    &parties,
                    corrupted,
                    perm_crashed,
                    completion_time,
                    delivered,
                    *sched.metrics_mut(),
                ));
            }
        }
    }
    Err(AsyncSimError::Stalled { events })
}

/// What a popped queue event asks a party to do.
enum Activation<M> {
    Message(Envelope<M>),
    Timer(u64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_net::CrashFault;

    struct Census {
        heard: usize,
        need: usize,
    }
    impl AsyncProtocol for Census {
        type Msg = u64;
        type Output = usize;
        fn on_start(&mut self, ctx: &mut AsyncCtx<u64>) {
            ctx.broadcast(1);
        }
        fn on_message(&mut self, _e: Envelope<u64>, _ctx: &mut AsyncCtx<u64>) {
            self.heard += 1;
        }
        fn output(&self) -> Option<usize> {
            (self.heard >= self.need).then_some(self.heard)
        }
    }

    #[test]
    fn waits_only_for_n_minus_t_under_silence() {
        // One silent corrupted party: honest parties wait for n - t = 3.
        let cfg = AsyncConfig {
            n: 4,
            t: 1,
            seed: 9,
            delay: DelayModel::Uniform { min: 0.2 },
            max_events: 10_000,
        };
        let report = run_async(
            cfg,
            |_, _| Census { heard: 0, need: 3 },
            SilentAsync {
                parties: vec![PartyId(3)],
            },
        )
        .unwrap();
        assert!(report.corrupted[3]);
        assert!(report.outputs[3].is_none());
        for i in 0..3 {
            assert!(report.outputs[i].unwrap() >= 3);
        }
    }

    #[test]
    fn waiting_for_everyone_with_a_silent_party_stalls() {
        let cfg = AsyncConfig {
            n: 4,
            t: 1,
            seed: 9,
            delay: DelayModel::Uniform { min: 0.2 },
            max_events: 10_000,
        };
        let err = run_async(
            cfg,
            |_, _| Census { heard: 0, need: 4 },
            SilentAsync {
                parties: vec![PartyId(3)],
            },
        )
        .unwrap_err();
        assert!(matches!(err, AsyncSimError::Stalled { .. }));
    }

    #[test]
    fn lockstep_delays_give_unit_time() {
        let cfg = AsyncConfig {
            n: 5,
            t: 0,
            seed: 1,
            delay: DelayModel::Lockstep,
            max_events: 10_000,
        };
        let report = run_async(cfg, |_, _| Census { heard: 0, need: 5 }, PassiveAsync).unwrap();
        assert!((report.completion_time - 1.0).abs() < 1e-12);
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed| {
            let cfg = AsyncConfig {
                n: 6,
                t: 0,
                seed,
                delay: DelayModel::Uniform { min: 0.1 },
                max_events: 10_000,
            };
            run_async(cfg, |_, _| Census { heard: 0, need: 6 }, PassiveAsync).unwrap()
        };
        let (a, b) = (run(7), run(7));
        assert_eq!(a, b);
    }

    #[test]
    fn slow_parties_model_slows_their_links() {
        let cfg = AsyncConfig {
            n: 4,
            t: 0,
            seed: 3,
            delay: DelayModel::SlowParties {
                slow: vec![PartyId(0)],
                min: 0.1,
            },
            max_events: 10_000,
        };
        let report = run_async(cfg, |_, _| Census { heard: 0, need: 4 }, PassiveAsync).unwrap();
        // Everyone needs p0's message, which takes time 1.
        assert!(report.completion_time >= 1.0);
    }

    #[test]
    fn bad_configs_rejected() {
        let cfg = AsyncConfig {
            n: 0,
            t: 0,
            seed: 0,
            delay: DelayModel::Lockstep,
            max_events: 10,
        };
        assert!(matches!(
            run_async(cfg, |_, _| Census { heard: 0, need: 1 }, PassiveAsync),
            Err(AsyncSimError::BadConfig { .. })
        ));
        let cfg = AsyncConfig {
            n: 4,
            t: 0,
            seed: 0,
            delay: DelayModel::Lockstep,
            max_events: 10,
        };
        assert!(matches!(
            run_async(
                cfg,
                |_, _| Census { heard: 0, need: 1 },
                SilentAsync {
                    parties: vec![PartyId(0)]
                }
            ),
            Err(AsyncSimError::BadConfig { .. })
        ));
    }

    #[test]
    fn delay_models_respect_the_unit_normalization() {
        // Satellite: every model's sampled delays stay in (0, 1].
        let env = Envelope {
            from: PartyId(0),
            to: PartyId(1),
            payload: 0u64,
        };
        let models = [
            DelayModel::Uniform { min: 0.001 },
            DelayModel::Uniform { min: 1.0 },
            DelayModel::Lockstep,
            DelayModel::SlowParties {
                slow: vec![PartyId(0)],
                min: 0.5,
            },
            DelayModel::SlowParties {
                slow: vec![],
                min: 0.25,
            },
        ];
        for model in &models {
            model.validate().unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            for _ in 0..500 {
                let d = model.sample(&env, &mut rng);
                assert!(d > 0.0 && d <= 1.0, "{model:?} sampled {d}");
            }
        }
    }

    #[test]
    fn invalid_delay_models_are_a_clean_config_error() {
        for bad_min in [0.0, -0.5, 1.5, f64::NAN] {
            let cfg = AsyncConfig {
                n: 3,
                t: 0,
                seed: 0,
                delay: DelayModel::Uniform { min: bad_min },
                max_events: 10,
            };
            let err =
                run_async(cfg, |_, _| Census { heard: 0, need: 1 }, PassiveAsync).unwrap_err();
            assert!(
                matches!(err, AsyncSimError::BadConfig { .. }),
                "min = {bad_min}: {err}"
            );
        }
    }

    /// Fires a timer chain: decides after 3 timer hops, no messages.
    struct TimerChain {
        hops: u64,
    }
    impl AsyncProtocol for TimerChain {
        type Msg = u64;
        type Output = u64;
        fn on_start(&mut self, ctx: &mut AsyncCtx<u64>) {
            ctx.set_timer(0.5, 0);
        }
        fn on_message(&mut self, _e: Envelope<u64>, _ctx: &mut AsyncCtx<u64>) {}
        fn on_timer(&mut self, token: u64, ctx: &mut AsyncCtx<u64>) {
            self.hops = token + 1;
            if self.hops < 3 {
                ctx.set_timer(0.5, self.hops);
            }
        }
        fn output(&self) -> Option<u64> {
            (self.hops >= 3).then_some(self.hops)
        }
    }

    #[test]
    fn timers_fire_in_order_and_count_in_metrics() {
        let cfg = AsyncConfig {
            n: 2,
            t: 0,
            seed: 5,
            delay: DelayModel::Lockstep,
            max_events: 1_000,
        };
        let report = run_async(cfg, |_, _| TimerChain { hops: 0 }, PassiveAsync).unwrap();
        assert_eq!(report.outputs, vec![Some(3), Some(3)]);
        assert_eq!(report.metrics.timer_fires, 6);
        assert!((report.completion_time - 1.5).abs() < 1e-12);
    }

    #[test]
    fn crashed_recipients_lose_messages_and_timers_defer() {
        // Party 1 is down for rounds 2..4 (time [1, 3)).
        let plan = FaultPlan {
            crashes: vec![CrashFault {
                party: 1,
                crash_round: 2,
                recover_round: 4,
            }],
            ..FaultPlan::none()
        };
        // Timer set at 0 with delay 1.5 fires at 1.5 (down) -> defers to 3.
        struct Stamp {
            fired_at: Option<f64>,
        }
        impl AsyncProtocol for Stamp {
            type Msg = u64;
            type Output = u64;
            fn on_start(&mut self, ctx: &mut AsyncCtx<u64>) {
                ctx.set_timer(1.5, 7);
            }
            fn on_message(&mut self, _e: Envelope<u64>, _ctx: &mut AsyncCtx<u64>) {}
            fn on_timer(&mut self, token: u64, ctx: &mut AsyncCtx<u64>) {
                assert_eq!(token, 7);
                self.fired_at = Some(ctx.now());
            }
            fn output(&self) -> Option<u64> {
                self.fired_at.map(|t| t as u64)
            }
        }
        let cfg = AsyncConfig {
            n: 2,
            t: 0,
            seed: 5,
            delay: DelayModel::Lockstep,
            max_events: 1_000,
        };
        let report =
            run_async_faulted(cfg, &plan, |_, _| Stamp { fired_at: None }, PassiveAsync).unwrap();
        // Party 0's timer fires on time at 1.5; party 1's defers to 3.0.
        assert_eq!(report.outputs, vec![Some(1), Some(3)]);
        assert!(report.metrics.fault_drops > 0 || report.metrics.timer_fires == 2);
    }

    #[test]
    fn faulted_runs_are_deterministic_and_headroom_invariant() {
        let plan = FaultPlan {
            seed: 77,
            drop_permille: 150,
            dup_permille: 100,
            delay_spike_permille: 200,
            ..FaultPlan::none()
        };
        let run = |max_events| {
            let cfg = AsyncConfig {
                n: 5,
                t: 0,
                seed: 21,
                delay: DelayModel::Uniform { min: 0.1 },
                max_events,
            };
            run_async_faulted(
                cfg,
                &plan,
                |_, _| Reliable::new(Census { heard: 0, need: 5 }, 5),
                PassiveAsync,
            )
            .unwrap()
        };
        let a = run(100_000);
        let b = run(100_000);
        assert_eq!(a, b, "same seed + plan must reproduce bit-for-bit");
        // Headroom that does not truncate the run must not change it.
        let c = run(250_000);
        assert_eq!(a, c, "max_events headroom leaked into the run");
        assert!(a.metrics.retransmissions > 0 || a.metrics.fault_drops == 0);
    }

    /// A minimal custom [`Scheduler`]: FIFO message delivery, timers only
    /// at quiescence — smoke-tests the pluggable run loop.
    #[derive(Default)]
    struct Fifo {
        msgs: std::collections::VecDeque<Envelope<u64>>,
        timers: std::collections::VecDeque<(f64, PartyId, u64)>,
        now: f64,
        metrics: AsyncMetrics,
        observations: usize,
        abort_after: Option<usize>,
    }

    impl Scheduler<u64> for Fifo {
        fn push_send(&mut self, _now: f64, env: Envelope<u64>) {
            self.msgs.push_back(env);
        }
        fn push_timer(&mut self, now: f64, party: PartyId, token: u64, delay: f64) {
            self.timers.push_back((now + delay, party, token));
        }
        fn push_at(&mut self, time: f64, what: SchedEvent<u64>) {
            match what {
                SchedEvent::Deliver(env) => self.msgs.push_back(env),
                SchedEvent::Timer { party, token } => self.timers.push_back((time, party, token)),
            }
        }
        fn pop(&mut self) -> Option<(f64, SchedEvent<u64>)> {
            self.now += 1e-6;
            if let Some(env) = self.msgs.pop_front() {
                return Some((self.now, SchedEvent::Deliver(env)));
            }
            self.timers.pop_front().map(|(due, party, token)| {
                self.now = self.now.max(due);
                (self.now, SchedEvent::Timer { party, token })
            })
        }
        fn metrics_mut(&mut self) -> &mut AsyncMetrics {
            &mut self.metrics
        }
        fn wants_observations(&self) -> bool {
            self.abort_after.is_some()
        }
        fn observe_state(&mut self, _digest: u64) -> bool {
            self.observations += 1;
            Some(self.observations) != self.abort_after
        }
    }

    #[test]
    fn custom_fifo_scheduler_drives_the_run_loop() {
        let cfg = AsyncConfig {
            n: 4,
            t: 0,
            seed: 0,
            delay: DelayModel::Lockstep, // unused by Fifo
            max_events: 10_000,
        };
        let mut sched = Fifo::default();
        let report = run_async_with(
            &cfg,
            None,
            |_, _| Census { heard: 0, need: 4 },
            PassiveAsync,
            &mut sched,
        )
        .unwrap();
        assert_eq!(report.outputs, vec![Some(4); 4]);
        assert_eq!(report.messages_delivered, 16);
    }

    impl fmt::Debug for Census {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Census({}/{})", self.heard, self.need)
        }
    }

    #[test]
    fn observing_scheduler_can_abort_the_run() {
        let cfg = AsyncConfig {
            n: 4,
            t: 0,
            seed: 0,
            delay: DelayModel::Lockstep,
            max_events: 10_000,
        };
        let mut sched = Fifo {
            abort_after: Some(3),
            ..Fifo::default()
        };
        let err = run_async_explored(
            &cfg,
            None,
            |_, _| Census { heard: 0, need: 4 },
            PassiveAsync,
            &mut sched,
        )
        .unwrap_err();
        assert_eq!(err, AsyncSimError::Aborted { events: 3 });
        assert_eq!(sched.observations, 3);
    }

    #[test]
    fn invalid_fault_plans_are_rejected() {
        let plan = FaultPlan {
            drop_permille: 2000,
            ..FaultPlan::none()
        };
        let cfg = AsyncConfig {
            n: 3,
            t: 0,
            seed: 0,
            delay: DelayModel::Lockstep,
            max_events: 10,
        };
        let err = run_async_faulted(
            cfg,
            &plan,
            |_, _| Census { heard: 0, need: 1 },
            PassiveAsync,
        )
        .unwrap_err();
        assert!(matches!(err, AsyncSimError::BadFaultPlan { .. }), "{err}");
    }
}
