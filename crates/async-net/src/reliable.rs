//! A reliable-delivery sublayer for asynchronous protocols.
//!
//! [`Reliable<P>`] wraps any [`AsyncProtocol`] and restores exactly-once
//! delivery over the lossy links of a [`FaultPlan`](sim_net::FaultPlan):
//!
//! * every payload is framed as [`RelMsg::Data`] with a per-sender
//!   sequence number and acknowledged by the recipient with
//!   [`RelMsg::Ack`];
//! * unacknowledged messages are retransmitted on a timer with capped
//!   exponential backoff (retransmissions are counted in
//!   [`AsyncMetrics::retransmissions`](crate::AsyncMetrics));
//! * duplicate deliveries (link duplication faults, or retransmissions
//!   whose ack was lost) are filtered by a per-sender seen-set before they
//!   reach the inner protocol.
//!
//! On eventually-connected links (all partitions heal, all crashes
//! recover) every message is eventually delivered exactly once, so an
//! inner protocol that terminates under reliable channels terminates under
//! any such plan. Acks are authenticated the same way all envelopes are:
//! an ack is only honoured if it comes from the party the data was
//! addressed to, so a Byzantine party cannot cancel traffic between two
//! honest parties.

use std::collections::{BTreeMap, BTreeSet};

use sim_net::{Envelope, PartyId, Payload};

use crate::{AsyncCtx, AsyncProtocol};

/// Timer tokens with this bit set belong to the reliability layer; inner
/// protocols must keep their own tokens below it. Sequence numbers wrap
/// around below this bit, so a retransmission token can never collide
/// with the namespace of inner-protocol tokens.
pub const RETRANSMIT_BIT: u64 = 1 << 63;

/// First retransmission timeout, in normalized delay units (a round trip
/// costs at most 2).
const BASE_RTO: f64 = 2.5;

/// Backoff cap.
const MAX_RTO: f64 = 16.0;

/// The wire frame of the reliable sublayer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelMsg<M> {
    /// An application payload with the sender's sequence number.
    Data {
        /// Per-sender, per-message sequence number.
        seq: u64,
        /// The wrapped application message.
        inner: M,
    },
    /// Acknowledges receipt of the sender's `Data { seq, .. }`.
    Ack {
        /// The acknowledged sequence number.
        seq: u64,
    },
}

impl<M: Payload> Payload for RelMsg<M> {
    fn size_bytes(&self) -> usize {
        match self {
            // seq header + payload.
            RelMsg::Data { inner, .. } => 8 + inner.size_bytes(),
            RelMsg::Ack { .. } => 8,
        }
    }
}

/// An in-flight message awaiting acknowledgement.
#[derive(Debug)]
struct InFlight<M> {
    to: PartyId,
    payload: M,
    attempt: u32,
}

/// A snapshot of the reliability sublayer's mutable state, detached from
/// the wrapped protocol. Produced by [`Reliable::export_state`] and
/// consumed by [`Reliable::restore_state`]; durable transports persist it
/// (alongside the inner protocol's own recovery story) so a restarted
/// node resumes retransmission duty for exactly the frames that were
/// unacknowledged when it went down.
#[derive(Clone, Debug, PartialEq)]
pub struct ReliableState<M> {
    /// The sequence number the next outgoing `Data` frame will carry.
    pub next_seq: u64,
    /// Unacknowledged in-flight frames as `(seq, to, attempt, payload)`.
    pub unacked: Vec<(u64, usize, u32, M)>,
    /// Per-sender sequence numbers already delivered to the inner
    /// protocol.
    pub seen: Vec<Vec<u64>>,
}

/// Wraps an [`AsyncProtocol`] with acks, retransmission, and duplicate
/// suppression. Wire type becomes [`RelMsg<P::Msg>`]; everything else —
/// including the inner protocol's own timers — is passed through.
#[derive(Debug)]
pub struct Reliable<P: AsyncProtocol> {
    inner: P,
    n: usize,
    next_seq: u64,
    unacked: BTreeMap<u64, InFlight<P::Msg>>,
    /// Per-sender sequence numbers already delivered to the inner protocol.
    seen: Vec<BTreeSet<u64>>,
}

impl<P: AsyncProtocol> Reliable<P> {
    /// Wraps `inner` for an `n`-party network.
    pub fn new(inner: P, n: usize) -> Self {
        Reliable {
            inner,
            n,
            next_seq: 0,
            unacked: BTreeMap::new(),
            seen: vec![BTreeSet::new(); n],
        }
    }

    /// Like [`Reliable::new`], but starts the sender-side sequence counter
    /// at `first_seq` instead of 0. Exists so tests (and the exhaustive
    /// checker) can exercise the wraparound of the 63-bit sequence space
    /// without sending 2⁶³ messages first.
    pub fn with_initial_seq(inner: P, n: usize, first_seq: u64) -> Self {
        let mut r = Reliable::new(inner, n);
        r.next_seq = first_seq & !RETRANSMIT_BIT;
        r
    }

    /// Read access to the wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The sequence number the next outgoing `Data` frame will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Snapshots the sublayer's mutable state (sequence counter,
    /// unacknowledged frames, per-sender seen-sets).
    pub fn export_state(&self) -> ReliableState<P::Msg> {
        ReliableState {
            next_seq: self.next_seq,
            unacked: self
                .unacked
                .iter()
                .map(|(&seq, m)| (seq, m.to.index(), m.attempt, m.payload.clone()))
                .collect(),
            seen: self
                .seen
                .iter()
                .map(|s| s.iter().copied().collect())
                .collect(),
        }
    }

    /// Restores a snapshot taken by [`Reliable::export_state`]. The
    /// wrapped protocol's state is untouched — callers recover it
    /// separately (e.g. by deterministic event replay) and then restore
    /// the sublayer on top.
    pub fn restore_state(&mut self, state: ReliableState<P::Msg>) {
        self.next_seq = state.next_seq & !RETRANSMIT_BIT;
        self.unacked = state
            .unacked
            .into_iter()
            .map(|(seq, to, attempt, payload)| {
                (
                    seq,
                    InFlight {
                        to: PartyId(to),
                        payload,
                        attempt,
                    },
                )
            })
            .collect();
        self.seen = state
            .seen
            .into_iter()
            .map(|s| s.into_iter().collect())
            .collect();
        if self.seen.len() != self.n {
            self.seen.resize_with(self.n, BTreeSet::new);
        }
    }

    /// A structural FNV-1a fingerprint of the sublayer state: the
    /// sequence counter, every `(seq, to, attempt)` in flight, and the
    /// contents of the seen-sets. Payload bytes are not hashed, so the
    /// fingerprint needs no message codec; two states with equal
    /// fingerprints arose from the same deterministic send/ack history.
    #[must_use]
    pub fn state_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.next_seq);
        mix(self.unacked.len() as u64);
        for (&seq, m) in &self.unacked {
            mix(seq);
            mix(m.to.index() as u64);
            mix(u64::from(m.attempt));
        }
        for s in &self.seen {
            mix(s.len() as u64);
            for &seq in s {
                mix(seq);
            }
        }
        h
    }

    fn backoff(attempt: u32) -> f64 {
        (BASE_RTO * f64::from(1u32 << attempt.min(10))).min(MAX_RTO)
    }

    /// Runs `f` against the inner protocol with an inner-typed context,
    /// then frames the resulting sends and forwards the resulting timers.
    fn activate_inner(
        &mut self,
        ctx: &mut AsyncCtx<RelMsg<P::Msg>>,
        f: impl FnOnce(&mut P, &mut AsyncCtx<P::Msg>),
    ) {
        let mut inner_ctx = AsyncCtx::new(ctx.me, ctx.n, ctx.now);
        inner_ctx.tracing = ctx.tracing;
        f(&mut self.inner, &mut inner_ctx);
        ctx.retransmits += inner_ctx.retransmits;
        ctx.events.append(&mut inner_ctx.events);
        for (delay, token) in inner_ctx.timers {
            debug_assert!(
                token & RETRANSMIT_BIT == 0,
                "inner timer token {token} collides with the reliability layer"
            );
            ctx.set_timer(delay, token);
        }
        for env in inner_ctx.outbox {
            let seq = self.next_seq;
            // Sequence numbers live in the 63-bit space below
            // RETRANSMIT_BIT so that `RETRANSMIT_BIT | seq` round-trips;
            // after 2⁶³ sends the counter wraps and relies on the
            // receivers' seen-sets having long forgotten the reused seqs.
            self.next_seq = (self.next_seq + 1) & !RETRANSMIT_BIT;
            ctx.send(
                env.to,
                RelMsg::Data {
                    seq,
                    inner: env.payload.clone(),
                },
            );
            self.unacked.insert(
                seq,
                InFlight {
                    to: env.to,
                    payload: env.payload,
                    attempt: 0,
                },
            );
            ctx.set_timer(BASE_RTO, RETRANSMIT_BIT | seq);
        }
    }
}

impl<P: AsyncProtocol> AsyncProtocol for Reliable<P> {
    type Msg = RelMsg<P::Msg>;
    type Output = P::Output;

    fn on_start(&mut self, ctx: &mut AsyncCtx<Self::Msg>) {
        self.activate_inner(ctx, |p, inner_ctx| p.on_start(inner_ctx));
    }

    fn on_message(&mut self, env: Envelope<Self::Msg>, ctx: &mut AsyncCtx<Self::Msg>) {
        match env.payload {
            RelMsg::Data { seq, inner } => {
                // Always (re-)ack: the previous ack may have been lost.
                ctx.send(env.from, RelMsg::Ack { seq });
                let sender = env.from.index();
                debug_assert!(sender < self.n, "sender out of range");
                if self.seen[sender].insert(seq) {
                    let unwrapped = Envelope {
                        from: env.from,
                        to: env.to,
                        payload: inner,
                    };
                    self.activate_inner(ctx, |p, inner_ctx| p.on_message(unwrapped, inner_ctx));
                }
            }
            RelMsg::Ack { seq } => {
                // Only the addressed recipient can acknowledge.
                if self.unacked.get(&seq).is_some_and(|m| m.to == env.from) {
                    self.unacked.remove(&seq);
                }
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut AsyncCtx<Self::Msg>) {
        if token & RETRANSMIT_BIT == 0 {
            self.activate_inner(ctx, |p, inner_ctx| p.on_timer(token, inner_ctx));
            return;
        }
        let seq = token & !RETRANSMIT_BIT;
        if let Some(m) = self.unacked.get_mut(&seq) {
            m.attempt += 1;
            let (to, payload, attempt) = (m.to, m.payload.clone(), m.attempt);
            ctx.note_retransmit();
            ctx.send(
                to,
                RelMsg::Data {
                    seq,
                    inner: payload,
                },
            );
            ctx.set_timer(Self::backoff(attempt), token);
        }
    }

    fn output(&self) -> Option<Self::Output> {
        self.inner.output()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_async, run_async_faulted, AsyncConfig, DelayModel, PassiveAsync};
    use sim_net::{CrashFault, FaultPlan, Partition};

    /// Broadcasts once; outputs after hearing from everyone — the protocol
    /// that stalls forever on a single lost message.
    struct NeedAll {
        heard: BTreeSet<usize>,
        n: usize,
    }
    impl AsyncProtocol for NeedAll {
        type Msg = u64;
        type Output = usize;
        fn on_start(&mut self, ctx: &mut AsyncCtx<u64>) {
            ctx.broadcast(ctx.me().index() as u64);
        }
        fn on_message(&mut self, env: Envelope<u64>, _ctx: &mut AsyncCtx<u64>) {
            self.heard.insert(env.from.index());
        }
        fn output(&self) -> Option<usize> {
            (self.heard.len() >= self.n).then_some(self.heard.len())
        }
    }

    fn need_all(n: usize) -> impl FnMut(PartyId, usize) -> Reliable<NeedAll> {
        move |_, _| {
            Reliable::new(
                NeedAll {
                    heard: BTreeSet::new(),
                    n,
                },
                n,
            )
        }
    }

    #[test]
    fn transparent_on_clean_links() {
        let cfg = AsyncConfig {
            n: 4,
            t: 0,
            seed: 3,
            delay: DelayModel::Uniform { min: 0.2 },
            max_events: 50_000,
        };
        let report = run_async(cfg, need_all(4), PassiveAsync).unwrap();
        assert_eq!(report.outputs, vec![Some(4); 4]);
        assert_eq!(report.metrics.retransmissions, 0);
    }

    #[test]
    fn recovers_every_message_under_heavy_loss() {
        // 40% drop + 20% duplication: NeedAll would stall bare, but the
        // sublayer retransmits and dedups until everyone has everything.
        let plan = FaultPlan {
            seed: 13,
            drop_permille: 400,
            dup_permille: 200,
            delay_spike_permille: 100,
            ..FaultPlan::none()
        };
        let cfg = AsyncConfig {
            n: 5,
            t: 0,
            seed: 8,
            delay: DelayModel::Uniform { min: 0.1 },
            max_events: 200_000,
        };
        let report = run_async_faulted(cfg, &plan, need_all(5), PassiveAsync).unwrap();
        assert_eq!(report.outputs, vec![Some(5); 5]);
        assert!(report.metrics.fault_drops > 0, "plan did fire");
        assert!(
            report.metrics.retransmissions > 0,
            "losses were recovered by retransmission"
        );
    }

    #[test]
    fn survives_a_healing_partition_and_a_recovering_crash() {
        let plan = FaultPlan {
            partitions: vec![Partition {
                side: vec![0, 1],
                from_round: 1,
                heal_round: 4,
            }],
            crashes: vec![CrashFault {
                party: 4,
                crash_round: 2,
                recover_round: 6,
            }],
            ..FaultPlan::none()
        };
        assert!(plan.eventually_connected());
        let cfg = AsyncConfig {
            n: 5,
            t: 0,
            seed: 4,
            delay: DelayModel::Uniform { min: 0.3 },
            max_events: 200_000,
        };
        let report = run_async_faulted(cfg, &plan, need_all(5), PassiveAsync).unwrap();
        assert_eq!(report.outputs, vec![Some(5); 5]);
        assert!(report.metrics.retransmissions > 0);
        // Termination time extends past the last fault window.
        assert!(report.completion_time >= 3.0);
    }

    #[test]
    fn duplication_faults_do_not_double_deliver() {
        struct CountAll {
            deliveries: usize,
        }
        impl AsyncProtocol for CountAll {
            type Msg = u64;
            type Output = usize;
            fn on_start(&mut self, ctx: &mut AsyncCtx<u64>) {
                ctx.broadcast(1);
            }
            fn on_message(&mut self, _env: Envelope<u64>, _ctx: &mut AsyncCtx<u64>) {
                self.deliveries += 1;
            }
            fn output(&self) -> Option<usize> {
                (self.deliveries >= 4).then_some(self.deliveries)
            }
        }
        let plan = FaultPlan {
            seed: 99,
            dup_permille: 1000, // every message duplicated
            ..FaultPlan::none()
        };
        let cfg = AsyncConfig {
            n: 4,
            t: 0,
            seed: 12,
            delay: DelayModel::Uniform { min: 0.2 },
            max_events: 100_000,
        };
        let report = run_async_faulted(
            cfg,
            &plan,
            |_, _| Reliable::new(CountAll { deliveries: 0 }, 4),
            PassiveAsync,
        )
        .unwrap();
        assert!(report.metrics.fault_dups > 0);
        // Each party saw exactly n distinct messages despite 100% dup.
        assert_eq!(report.outputs, vec![Some(4); 4]);
    }

    fn ctx(me: usize, n: usize) -> AsyncCtx<RelMsg<u64>> {
        AsyncCtx::new(PartyId(me), n, 0.0)
    }

    fn fresh(n: usize) -> NeedAll {
        NeedAll {
            heard: BTreeSet::new(),
            n,
        }
    }

    fn ack(from: usize, to: usize, seq: u64) -> Envelope<RelMsg<u64>> {
        Envelope {
            from: PartyId(from),
            to: PartyId(to),
            payload: RelMsg::Ack { seq },
        }
    }

    #[test]
    fn duplicate_acks_are_idempotent_and_authenticated() {
        let mut r = Reliable::new(fresh(3), 3);
        let mut c = ctx(0, 3);
        r.on_start(&mut c); // broadcast: seqs 0, 1, 2 to parties 0, 1, 2
        assert_eq!(r.unacked.len(), 3);

        // An ack from a party the data was not addressed to is ignored.
        r.on_message(ack(2, 0, 1), &mut ctx(0, 3));
        assert_eq!(r.unacked.len(), 3, "forged ack must not cancel traffic");

        // The addressed recipient's ack clears the slot...
        r.on_message(ack(1, 0, 1), &mut ctx(0, 3));
        assert_eq!(r.unacked.len(), 2);
        // ...and re-delivering the same ack (or acking an unknown seq) is
        // a harmless no-op.
        r.on_message(ack(1, 0, 1), &mut ctx(0, 3));
        r.on_message(ack(1, 0, 777), &mut ctx(0, 3));
        assert_eq!(r.unacked.len(), 2);

        // A retransmit timer for the acked seq finds nothing to resend.
        let mut c = ctx(0, 3);
        r.on_timer(RETRANSMIT_BIT | 1, &mut c);
        assert!(c.outbox.is_empty(), "acked messages are not retransmitted");
    }

    #[test]
    fn sequence_numbers_wrap_below_the_retransmit_bit() {
        let mut r = Reliable::with_initial_seq(fresh(3), 3, RETRANSMIT_BIT - 2);
        let mut c = ctx(0, 3);
        r.on_start(&mut c); // 3 sends: seqs 2⁶³−2, 2⁶³−1, then wrap to 0
        let seqs: Vec<u64> = c
            .outbox
            .iter()
            .map(|e| match e.payload {
                RelMsg::Data { seq, .. } => seq,
                RelMsg::Ack { .. } => panic!("no acks expected"),
            })
            .collect();
        assert_eq!(seqs, vec![RETRANSMIT_BIT - 2, RETRANSMIT_BIT - 1, 0]);
        assert_eq!(r.next_seq(), 1, "counter wrapped below the timer bit");
        // Every retransmit token keeps the namespace bit and round-trips
        // back to its seq.
        for (_, token) in &c.timers {
            assert_ne!(token & RETRANSMIT_BIT, 0);
            assert!(seqs.contains(&(token & !RETRANSMIT_BIT)));
        }
        // The retransmission path still works for a wrapped (seq 0) frame.
        let mut c = ctx(0, 3);
        r.on_timer(RETRANSMIT_BIT, &mut c); // token for seq 0
        assert_eq!(c.outbox.len(), 1);
        assert!(matches!(c.outbox[0].payload, RelMsg::Data { seq: 0, .. }));
    }

    #[test]
    fn duplicate_data_is_reacked_but_delivered_once() {
        let mut r = Reliable::new(fresh(3), 3);
        let data = Envelope {
            from: PartyId(1),
            to: PartyId(0),
            payload: RelMsg::Data {
                seq: RETRANSMIT_BIT - 1, // near-wraparound seq on the receive path
                inner: 42u64,
            },
        };
        for round in 0..2 {
            let mut c = ctx(0, 3);
            r.on_message(data.clone(), &mut c);
            let acks = c
                .outbox
                .iter()
                .filter(|e| matches!(e.payload, RelMsg::Ack { seq } if seq == RETRANSMIT_BIT - 1))
                .count();
            assert_eq!(acks, 1, "every copy is re-acked (round {round})");
        }
        assert_eq!(
            r.inner().heard.len(),
            1,
            "inner protocol saw the payload exactly once"
        );
    }

    #[test]
    fn state_roundtrips_through_export_and_restore() {
        let mut r = Reliable::new(fresh(3), 3);
        let mut c = ctx(0, 3);
        r.on_start(&mut c); // three unacked frames
        r.on_message(ack(1, 0, 1), &mut ctx(0, 3)); // one acked
        r.on_message(
            Envelope {
                from: PartyId(2),
                to: PartyId(0),
                payload: RelMsg::Data { seq: 7, inner: 9 },
            },
            &mut ctx(0, 3),
        );
        let snapshot = r.export_state();
        let fp = r.state_fingerprint();

        let mut restored = Reliable::new(fresh(3), 3);
        assert_ne!(restored.state_fingerprint(), fp, "fresh state differs");
        restored.restore_state(snapshot.clone());
        assert_eq!(restored.state_fingerprint(), fp);
        assert_eq!(restored.export_state(), snapshot);
        assert_eq!(restored.next_seq(), r.next_seq());

        // The restored layer still retransmits the surviving frames and
        // still filters the seen duplicate.
        let mut c = ctx(0, 3);
        restored.on_timer(RETRANSMIT_BIT | 2, &mut c);
        assert_eq!(c.outbox.len(), 1, "unacked frame is retransmitted");
        let before = restored.inner().heard.len();
        restored.on_message(
            Envelope {
                from: PartyId(2),
                to: PartyId(0),
                payload: RelMsg::Data { seq: 7, inner: 9 },
            },
            &mut ctx(0, 3),
        );
        assert_eq!(
            restored.inner().heard.len(),
            before,
            "restored seen-set keeps filtering duplicates"
        );
    }

    #[test]
    fn fingerprint_tracks_every_structural_field() {
        let mut r = Reliable::new(fresh(3), 3);
        let mut c = ctx(0, 3);
        r.on_start(&mut c);
        let base = r.state_fingerprint();
        // Acking a frame changes the fingerprint.
        r.on_message(ack(1, 0, 1), &mut ctx(0, 3));
        let after_ack = r.state_fingerprint();
        assert_ne!(base, after_ack);
        // A retransmission bumps `attempt` — also visible.
        r.on_timer(RETRANSMIT_BIT | 2, &mut ctx(0, 3));
        assert_ne!(after_ack, r.state_fingerprint());
    }

    #[test]
    fn backoff_is_capped() {
        assert!((Reliable::<NeedAll>::backoff(0) - BASE_RTO).abs() < 1e-12);
        assert!((Reliable::<NeedAll>::backoff(1) - 2.0 * BASE_RTO).abs() < 1e-12);
        assert!((Reliable::<NeedAll>::backoff(30) - MAX_RTO).abs() < 1e-12);
        // Monotone nondecreasing.
        let mut last = 0.0;
        for a in 0..12 {
            let b = Reliable::<NeedAll>::backoff(a);
            assert!(b >= last);
            last = b;
        }
    }
}
