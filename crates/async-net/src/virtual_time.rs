//! Distributable virtual time: the deterministic schedule shared by the
//! in-process simulator and the real TCP transport (`crates/net`).
//!
//! [`SeededScheduler`](crate::SeededScheduler) draws delays from one
//! global RNG in pop order, which cannot be reproduced by n independent
//! processes. This module replaces that with **content-keyed** delays: the
//! delay of the `k`-th message on the directed link `from → to` is a pure
//! function of `(seed, from, to, k)`. Any process that knows the seed can
//! compute the delivery time of any message locally, so a networked
//! cluster and an in-process run replay the *same* virtual schedule.
//!
//! Two further ingredients make the order total and distributable:
//!
//! * [`VKey`] — the global tie-break order on events `(time, class,
//!   a, b, c)`. The in-process [`VirtualScheduler`] pops in exactly this
//!   order; each networked node applies the same comparator to its local
//!   pending heap, and since a party's activations are a projection of the
//!   global order, the two agree.
//! * strictly positive lookahead — [`link_delay`] returns delays
//!   **strictly** greater than `min`, so a conservative
//!   (Chandy–Misra–Bryant-style) node that has seen watermark `w` on a
//!   link knows no future delivery on it can occur at or before
//!   `w + min`.
//!
//! [`AsyncRecorder`] captures protocol-level [`ProtoEvent`]s during a run,
//! stamping each with its virtual time and a per-party emission counter so
//! per-process traces can be merged and compared event-for-event
//! (`aa_trace::reconcile_proto`).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use aa_trace::{EventKind, ProtoEvent, Trace};
use sim_net::{Envelope, PartyId, Payload};

use crate::{round_of, AsyncMetrics, SchedEvent, Scheduler};

/// The splitmix64 mixing step — the same finalizer the fuzzer and the
/// batched gradecast wire use for cheap seeded hashing.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The delay of the `lseq`-th message on the directed link `from → to`
/// under `seed`: deterministic, content-keyed, and **strictly** inside
/// `(min, 1]`.
///
/// Strictness is load-bearing: it gives the conservative transport a
/// positive lookahead of `min` per link (a message sent at or after a
/// promise `w` is delivered strictly after `w + min`), so processing all
/// pending events at times `≤ watermark + min` can never deliver out of
/// order.
#[must_use]
pub fn link_delay(seed: u64, from: usize, to: usize, lseq: u64, min: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&min), "min delay {min} not in [0, 1)");
    let mut h = splitmix64(seed ^ 0xa076_1d64_78bd_642f);
    h = splitmix64(h ^ (from as u64));
    h = splitmix64(h ^ (to as u64));
    h = splitmix64(h ^ lseq);
    // 53 uniform bits mapped to (0, 1]: the `+ 1` excludes 0 exactly.
    let unit = ((h >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    min + (1.0 - min) * unit
}

/// The global total order on virtual-time events. Messages (`class 0`)
/// are keyed by `(from, to, lseq)`, timers (`class 1`) by `(party,
/// timer_seq, token)` — every event a run produces has a distinct key, so
/// ties in `time` are broken identically by every process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VKey {
    /// Virtual delivery/firing time.
    pub time: f64,
    /// 0 = message delivery, 1 = timer firing.
    pub class: u8,
    /// Message: sender index. Timer: owner index.
    pub a: u64,
    /// Message: recipient index. Timer: the owner's timer ordinal.
    pub b: u64,
    /// Message: link ordinal `lseq`. Timer: token.
    pub c: u64,
}

impl Eq for VKey {}

impl PartialOrd for VKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for VKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.class.cmp(&other.class))
            .then(self.a.cmp(&other.a))
            .then(self.b.cmp(&other.b))
            .then(self.c.cmp(&other.c))
    }
}

struct VEvent<M> {
    key: VKey,
    what: SchedEvent<M>,
}

impl<M> PartialEq for VEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<M> Eq for VEvent<M> {}
impl<M> PartialOrd for VEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for VEvent<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// The in-process reference [`Scheduler`] for virtual-time runs: delays
/// come from [`link_delay`], pops follow the [`VKey`] order. A networked
/// cluster with the same `(n, seed, min_delay)` replays the identical
/// schedule, which is what the differential gate in `crates/net` checks.
pub struct VirtualScheduler<M> {
    seed: u64,
    min_delay: f64,
    heap: BinaryHeap<Reverse<VEvent<M>>>,
    link_seq: BTreeMap<(usize, usize), u64>,
    timer_seq: Vec<u64>,
    metrics: AsyncMetrics,
}

impl<M> VirtualScheduler<M> {
    /// Builds the scheduler for an `n`-party run keyed by `seed` with
    /// per-link lookahead `min_delay` (must be in `[0, 1)`; the
    /// transport's default is 0.5).
    #[must_use]
    pub fn new(n: usize, seed: u64, min_delay: f64) -> Self {
        VirtualScheduler {
            seed,
            min_delay,
            heap: BinaryHeap::new(),
            link_seq: BTreeMap::new(),
            timer_seq: vec![0; n],
            metrics: AsyncMetrics::default(),
        }
    }

    /// The next link ordinal for `from → to` (0-based, then bumped).
    fn next_lseq(&mut self, from: usize, to: usize) -> u64 {
        let c = self.link_seq.entry((from, to)).or_insert(0);
        let v = *c;
        *c += 1;
        v
    }
}

impl<M: Payload> Scheduler<M> for VirtualScheduler<M> {
    fn push_send(&mut self, now: f64, env: Envelope<M>) {
        let (from, to) = (env.from.index(), env.to.index());
        let lseq = self.next_lseq(from, to);
        let delay = link_delay(self.seed, from, to, lseq, self.min_delay);
        self.heap.push(Reverse(VEvent {
            key: VKey {
                time: now + delay,
                class: 0,
                a: from as u64,
                b: to as u64,
                c: lseq,
            },
            what: SchedEvent::Deliver(env),
        }));
    }

    fn push_timer(&mut self, now: f64, party: PartyId, token: u64, delay: f64) {
        let i = party.index();
        let ts = self.timer_seq[i];
        self.timer_seq[i] += 1;
        self.heap.push(Reverse(VEvent {
            key: VKey {
                time: now + delay,
                class: 1,
                a: i as u64,
                b: ts,
                c: token,
            },
            what: SchedEvent::Timer { party, token },
        }));
    }

    fn push_at(&mut self, time: f64, what: SchedEvent<M>) {
        // Only the run loop's crash-deferral path lands here; virtual-time
        // runs carry no fault plan, but keep the semantics total anyway.
        let key = match &what {
            SchedEvent::Deliver(env) => {
                let (from, to) = (env.from.index(), env.to.index());
                let lseq = self.next_lseq(from, to);
                VKey {
                    time,
                    class: 0,
                    a: from as u64,
                    b: to as u64,
                    c: lseq,
                }
            }
            SchedEvent::Timer { party, token } => {
                let i = party.index();
                let ts = self.timer_seq[i];
                self.timer_seq[i] += 1;
                VKey {
                    time,
                    class: 1,
                    a: i as u64,
                    b: ts,
                    c: *token,
                }
            }
        };
        self.heap.push(Reverse(VEvent { key, what }));
    }

    fn pop(&mut self) -> Option<(f64, SchedEvent<M>)> {
        self.heap.pop().map(|Reverse(e)| (e.key.time, e.what))
    }

    fn metrics_mut(&mut self) -> &mut AsyncMetrics {
        &mut self.metrics
    }
}

/// Collects protocol events during a virtual-time run, stamping each with
/// the virtual time (`vt`) it was emitted at and a per-party emission
/// ordinal (`pseq`). Sorting the stamped events by `(vt, party, pseq)`
/// yields a canonical projection that is identical between an in-process
/// run and a merged per-process networked run of the same schedule.
#[derive(Clone, Debug)]
pub struct AsyncRecorder {
    trace: Trace,
    pseq: Vec<u64>,
}

impl AsyncRecorder {
    /// A fresh recorder for an `n`-party, corruption-bound-`t` run.
    #[must_use]
    pub fn new(n: usize, t: usize, label: &str) -> Self {
        AsyncRecorder {
            trace: Trace::new(n, t, label),
            pseq: vec![0; n],
        }
    }

    /// Records `event` emitted by `party` at virtual time `vt`, appending
    /// the `vt`/`pseq` stamps the reconciliation order is built on.
    pub fn record_proto(&mut self, vt: f64, party: usize, event: ProtoEvent) {
        let pseq = self.pseq[party];
        self.pseq[party] += 1;
        let stamped = event.f64("vt", vt).u64("pseq", pseq);
        self.trace.push(
            round_of(vt),
            EventKind::Proto {
                party,
                event: stamped,
            },
        );
    }

    /// Records a transport-level rejection (tampered MAC, replay, garbage
    /// frame) as a `fault_drop` on `from → to` at virtual time `vt`.
    pub fn record_drop(&mut self, vt: f64, from: usize, to: usize) {
        self.trace
            .push(round_of(vt), EventKind::FaultDrop { from, to });
    }

    /// Records a transport-level state transition (reconnect attempt,
    /// dead-peer declaration, backoff exhaustion, WAL recovery) at
    /// virtual time `vt`. These are non-proto events: the differential
    /// gate's proto projection ignores them, so forensics gain the
    /// transport timeline without perturbing reconciliation.
    pub fn record_net(&mut self, vt: f64, kind: EventKind) {
        self.trace.push(round_of(vt), kind);
    }

    /// Read access to the trace recorded so far.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the recorder, yielding the recorded trace.
    #[must_use]
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        run_async_recorded, AsyncConfig, AsyncCtx, AsyncProtocol, DelayModel, PassiveAsync,
    };

    #[test]
    fn link_delay_is_strict_and_deterministic() {
        for seed in [0u64, 1, 42, u64::MAX] {
            for min in [0.0, 0.25, 0.5, 0.9] {
                for lseq in 0..200 {
                    let d = link_delay(seed, 1, 3, lseq, min);
                    assert!(d > min && d <= 1.0, "delay {d} outside ({min}, 1]");
                    assert_eq!(d, link_delay(seed, 1, 3, lseq, min));
                }
            }
        }
        // Distinct keys give distinct delays (no accidental collapse).
        assert_ne!(link_delay(7, 0, 1, 0, 0.5), link_delay(7, 1, 0, 0, 0.5));
        assert_ne!(link_delay(7, 0, 1, 0, 0.5), link_delay(7, 0, 1, 1, 0.5));
        assert_ne!(link_delay(7, 0, 1, 0, 0.5), link_delay(8, 0, 1, 0, 0.5));
    }

    #[test]
    fn vkey_order_is_total_and_matches_fields() {
        let m = |t: f64, a: u64, b: u64, c: u64| VKey {
            time: t,
            class: 0,
            a,
            b,
            c,
        };
        let k = |t: f64| VKey {
            time: t,
            class: 1,
            a: 0,
            b: 0,
            c: 0,
        };
        assert!(m(1.0, 9, 9, 9) < m(2.0, 0, 0, 0), "time dominates");
        assert!(m(1.0, 0, 0, 0) < k(1.0), "messages before timers on ties");
        assert!(m(1.0, 0, 0, 0) < m(1.0, 0, 0, 1), "lseq breaks final ties");
        assert_eq!(m(1.0, 2, 3, 4), m(1.0, 2, 3, 4));
    }

    /// Everybody broadcasts its id; outputs (and emits one proto event)
    /// after hearing from all.
    struct Chatty {
        heard: usize,
        n: usize,
        done: bool,
    }
    impl AsyncProtocol for Chatty {
        type Msg = u64;
        type Output = usize;
        fn on_start(&mut self, ctx: &mut AsyncCtx<u64>) {
            ctx.broadcast(ctx.me().index() as u64);
        }
        fn on_message(&mut self, _e: Envelope<u64>, ctx: &mut AsyncCtx<u64>) {
            self.heard += 1;
            if self.heard >= self.n && !self.done {
                self.done = true;
                let heard = self.heard;
                ctx.emit_with(|| ProtoEvent::new("census.done").u64("heard", heard as u64));
            }
        }
        fn output(&self) -> Option<usize> {
            self.done.then_some(self.heard)
        }
    }

    #[test]
    fn recorded_virtual_runs_reproduce_bit_for_bit() {
        let run = || {
            let cfg = AsyncConfig {
                n: 4,
                t: 0,
                seed: 11,
                delay: DelayModel::Uniform { min: 0.5 },
                max_events: 100_000,
            };
            let mut sched = VirtualScheduler::new(4, 11, 0.5);
            let mut rec = AsyncRecorder::new(4, 0, "vt-test");
            let report = run_async_recorded(
                &cfg,
                |_, n| Chatty {
                    heard: 0,
                    n,
                    done: false,
                },
                PassiveAsync,
                &mut sched,
                &mut rec,
            )
            .unwrap();
            (report, rec.into_trace().to_canonical_string())
        };
        let (ra, ta) = run();
        let (rb, tb) = run();
        assert_eq!(ra, rb);
        assert_eq!(ta, tb, "recorded traces must be byte-identical");
        assert_eq!(ra.outputs, vec![Some(4); 4]);
        // One proto event per party, each stamped with vt + pseq.
        let trace = aa_trace::Trace::parse(&ta).unwrap();
        let protos: Vec<_> = trace
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Proto { party, event } => Some((*party, event)),
                _ => None,
            })
            .collect();
        assert_eq!(protos.len(), 4);
        for (_, ev) in &protos {
            assert!(ev.field("vt").is_some());
            assert!(ev.field("pseq").is_some());
        }
    }
}
