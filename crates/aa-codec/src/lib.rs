//! Canonical serialization shared across the workspace: a minimal JSON
//! value type whose rendering is byte-stable, plus FNV-1a fingerprinting.
//!
//! Promoted out of `aa-fuzz` so that fuzz-corpus repro files, flight-recorder
//! traces (`aa-trace`), and bench output all speak exactly one codec — a
//! value that renders to the same bytes everywhere is what makes trace
//! determinism checks and case fingerprints meaningful.

#![warn(missing_docs)]

mod json;

pub use json::Json;

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of a byte string.
///
/// Used for fuzz-case fingerprints and trace digests; stable across
/// platforms and releases by construction.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET_BASIS;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_is_order_sensitive() {
        assert_ne!(fnv1a_64(b"ab"), fnv1a_64(b"ba"));
    }
}
