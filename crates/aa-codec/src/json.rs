//! A minimal, dependency-free JSON value with a writer and a
//! recursive-descent parser — just enough for the fuzz-corpus repro format
//! and flight-recorder traces (objects, arrays, strings, numbers, bools).
//!
//! Objects preserve insertion order so serialization is canonical: the
//! same [`Json`] value always renders to the same bytes, which is what
//! makes case fingerprints, trace-determinism checks, and `--seed` reruns
//! bit-stable.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (the corpus only uses integers, stored exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an integer number.
    pub fn int(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\t' => f.write_str("\\t")?,
                        '\r' => f.write_str("\\r")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}: {v}", Json::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b" \t\r\n".contains(b))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(&b))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("seed".into(), Json::int(42)),
            ("name".into(), Json::Str("broom \"x\"\n".into())),
            (
                "atoms".into(),
                Json::Arr(vec![
                    Json::Obj(vec![("kind".into(), Json::Str("crash".into()))]),
                    Json::Bool(true),
                    Json::Null,
                ]),
            ),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn rendering_is_canonical() {
        let doc = Json::Obj(vec![
            ("b".into(), Json::int(1)),
            ("a".into(), Json::Arr(vec![Json::int(2), Json::int(3)])),
        ]);
        assert_eq!(doc.to_string(), r#"{"b": 1, "a": [2, 3]}"#);
        assert_eq!(
            doc.to_string(),
            Json::parse(&doc.to_string()).unwrap().to_string()
        );
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , \"a\\u0041\\n\" , false ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap()[1].as_str().unwrap(),
            "aA\n"
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"abc").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn integer_accessors() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
    }
}
