//! Criterion benches for the auxiliary protocols: gradecast batches,
//! phase-king BA, and the asynchronous safe-area protocol.

use std::sync::Arc;

use async_aa::{AsyncTreeAaConfig, AsyncTreeAaParty};
use async_net::{run_async, AsyncConfig, DelayModel, PassiveAsync};
use bench::spaced_inputs;
use byz_agreement::{PhaseKingConfig, PhaseKingParty};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gradecast::GradecastProtocol;
use sim_net::{run_simulation, Passive, SimConfig};
use tree_model::generate;

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocols");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));

    for &(n, t) in &[(7usize, 2usize), (13, 4)] {
        g.bench_with_input(BenchmarkId::new("gradecast_batch", n), &n, |b, _| {
            b.iter(|| {
                run_simulation(
                    SimConfig {
                        n,
                        t,
                        max_rounds: 8,
                    },
                    |id, nn| GradecastProtocol::new(id, nn, t, id.index() as u64),
                    Passive,
                )
                .unwrap()
            })
        });

        g.bench_with_input(BenchmarkId::new("phase_king", n), &n, |b, _| {
            let cfg = PhaseKingConfig::new(n, t).unwrap();
            b.iter(|| {
                run_simulation(
                    SimConfig {
                        n,
                        t,
                        max_rounds: cfg.rounds() + 5,
                    },
                    |id, _| PhaseKingParty::new(id, cfg, id.index() as u64),
                    Passive,
                )
                .unwrap()
            })
        });
    }

    for &size in &[64usize, 512] {
        let tree = Arc::new(generate::path(size));
        let (n, t) = (7usize, 2usize);
        let inputs = spaced_inputs(&tree, n, size / n + 1);
        let cfg = AsyncTreeAaConfig::new(n, t, &tree).unwrap();
        g.bench_with_input(BenchmarkId::new("async_tree_aa", size), &size, |b, _| {
            b.iter(|| {
                run_async(
                    AsyncConfig {
                        n,
                        t,
                        seed: 7,
                        delay: DelayModel::Uniform { min: 0.2 },
                        max_events: 10_000_000,
                    },
                    |id, _| {
                        AsyncTreeAaParty::new(cfg.clone(), Arc::clone(&tree), inputs[id.index()])
                    },
                    PassiveAsync,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
