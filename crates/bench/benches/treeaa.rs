//! Criterion benches for the tree protocols: full simulated executions of
//! TreeAA (both engines) and the Nowak–Rybicki baseline across tree sizes.

use std::sync::Arc;

use bench::spaced_inputs;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sim_net::{run_simulation, Passive, SimConfig};
use tree_aa::{EngineKind, NowakRybickiConfig, NowakRybickiParty, TreeAaConfig, TreeAaParty};
use tree_model::generate;

fn bench_treeaa(c: &mut Criterion) {
    let mut g = c.benchmark_group("treeaa");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let (n, t) = (7usize, 2usize);
    for &size in &[64usize, 512, 4096] {
        let tree = Arc::new(generate::caterpillar(size / 3, 2));
        let inputs = spaced_inputs(&tree, n, size / n + 1);

        for engine in [EngineKind::Gradecast, EngineKind::Halving] {
            let cfg = TreeAaConfig::new(n, t, engine, &tree).unwrap();
            g.bench_with_input(
                BenchmarkId::new(format!("tree_aa_{engine:?}"), size),
                &size,
                |b, _| {
                    b.iter(|| {
                        run_simulation(
                            SimConfig {
                                n,
                                t,
                                max_rounds: cfg.total_rounds() + 5,
                            },
                            |id, _| {
                                TreeAaParty::new(
                                    id,
                                    cfg.clone(),
                                    Arc::clone(&tree),
                                    inputs[id.index()],
                                )
                            },
                            Passive,
                        )
                        .unwrap()
                    })
                },
            );
        }

        let cfg = NowakRybickiConfig::new(n, t, &tree).unwrap();
        g.bench_with_input(BenchmarkId::new("nowak_rybicki", size), &size, |b, _| {
            b.iter(|| {
                run_simulation(
                    SimConfig {
                        n,
                        t,
                        max_rounds: cfg.rounds() + 5,
                    },
                    |id, _| {
                        NowakRybickiParty::new(
                            id,
                            cfg.clone(),
                            Arc::clone(&tree),
                            inputs[id.index()],
                        )
                    },
                    Passive,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_treeaa);
criterion_main!(benches);
