//! Criterion benches for the real-valued AA engines: wall-clock cost of a
//! full simulated execution (protocol logic + engine overhead), honest and
//! adversarial.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use real_aa::adversary::{equal_split_schedule, BudgetSplitEquivocator};
use real_aa::{IteratedAaConfig, IteratedAaParty, RealAaConfig, RealAaParty};
use sim_net::{run_simulation, PartyId, Passive, SimConfig};

fn bench_realaa(c: &mut Criterion) {
    let mut g = c.benchmark_group("realaa");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for &(n, t) in &[(7usize, 2usize), (13, 4)] {
        let d = 1024.0;
        let inputs: Vec<f64> = (0..n).map(|i| d * i as f64 / (n - 1) as f64).collect();

        g.bench_with_input(BenchmarkId::new("gradecast_honest", n), &n, |b, _| {
            let cfg = RealAaConfig::new(n, t, 1.0, d).unwrap();
            b.iter(|| {
                run_simulation(
                    SimConfig {
                        n,
                        t,
                        max_rounds: cfg.rounds() + 5,
                    },
                    |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
                    Passive,
                )
                .unwrap()
            })
        });

        g.bench_with_input(BenchmarkId::new("gradecast_adversarial", n), &n, |b, _| {
            let cfg = RealAaConfig::new(n, t, 1.0, d).unwrap();
            b.iter(|| {
                let byz: Vec<PartyId> = (0..t).map(PartyId).collect();
                let adv = BudgetSplitEquivocator::new(
                    n,
                    byz,
                    equal_split_schedule(t, cfg.iterations() as usize),
                );
                run_simulation(
                    SimConfig {
                        n,
                        t,
                        max_rounds: cfg.rounds() + 5,
                    },
                    |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
                    adv,
                )
                .unwrap()
            })
        });

        g.bench_with_input(BenchmarkId::new("halving_honest", n), &n, |b, _| {
            let cfg = IteratedAaConfig::new(n, t, 1.0, d).unwrap();
            b.iter(|| {
                run_simulation(
                    SimConfig {
                        n,
                        t,
                        max_rounds: cfg.rounds() + 5,
                    },
                    |id, _| IteratedAaParty::new(id, cfg, inputs[id.index()]),
                    Passive,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_realaa);
criterion_main!(benches);
