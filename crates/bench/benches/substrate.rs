//! Criterion benches for the combinatorial substrate: the local
//! computations every party performs (ListConstruction, hulls, LCA,
//! projections) at experiment scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gradecast::GradecastProtocol;
use real_aa::{RealAaConfig, RealAaParty};
use sim_net::{run_simulation, Inbox, Passive, Payload, Protocol, RoundCtx, SimConfig};
use tree_model::{generate, list_construction, LcaTable, ProjectionTable};

/// A broadcast payload with a real heap body, sized like a protocol
/// message carrying a value vector (64 words ≈ a batched state digest).
#[derive(Clone, Debug, PartialEq, Eq)]
struct Blob(Vec<u64>);

impl Payload for Blob {
    fn size_bytes(&self) -> usize {
        8 * self.0.len()
    }
}

/// Each party broadcasts a fresh blob every round for `ROUNDS` rounds and
/// then outputs how many messages it saw — pure engine fan-out, no
/// protocol logic to speak of.
struct Flooder {
    rounds: u32,
    seen: usize,
    done: bool,
}

const FLOOD_ROUNDS: u32 = 3;

impl Protocol for Flooder {
    type Msg = Blob;
    type Output = usize;

    fn step(&mut self, round: u32, inbox: &Inbox<Blob>, ctx: &mut RoundCtx<Blob>) {
        self.seen += inbox.len();
        if round <= self.rounds {
            ctx.broadcast(Blob(vec![round as u64; 64]));
        } else {
            self.done = true;
        }
    }

    fn output(&self) -> Option<usize> {
        self.done.then_some(self.seen)
    }
}

/// The engine substrate under protocol-shaped load: broadcast fan-out,
/// a full parallel-gradecast batch, and one `RealAA` iteration, across
/// the experiment scale the message-complexity scenarios use.
fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[16usize, 64, 256] {
        let t = (n - 1) / 3;

        g.bench_with_input(BenchmarkId::new("broadcast_fanout", n), &n, |b, &n| {
            b.iter(|| {
                run_simulation(
                    SimConfig {
                        n,
                        t: 0,
                        max_rounds: FLOOD_ROUNDS + 2,
                    },
                    |_, _| Flooder {
                        rounds: FLOOD_ROUNDS,
                        seen: 0,
                        done: false,
                    },
                    Passive,
                )
                .unwrap()
            })
        });

        g.bench_with_input(BenchmarkId::new("gradecast_batch", n), &n, |b, &n| {
            b.iter(|| {
                run_simulation(
                    SimConfig {
                        n,
                        t,
                        max_rounds: 8,
                    },
                    |id, nn| GradecastProtocol::new(id, nn, t, id.index() as u64),
                    Passive,
                )
                .unwrap()
            })
        });

        g.bench_with_input(BenchmarkId::new("realaa_iteration", n), &n, |b, &n| {
            // d = 2, eps = 1: exactly one gradecast-based iteration.
            let cfg = RealAaConfig::new(n, t, 1.0, 2.0).unwrap();
            let inputs: Vec<f64> = (0..n).map(|i| 2.0 * i as f64 / (n - 1) as f64).collect();
            b.iter(|| {
                run_simulation(
                    SimConfig {
                        n,
                        t,
                        max_rounds: cfg.rounds() + 5,
                    },
                    |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
                    Passive,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for &size in &[1024usize, 16384] {
        let path = generate::path(size);
        let cat = generate::caterpillar(size / 3, 2);

        g.bench_with_input(
            BenchmarkId::new("list_construction", size),
            &size,
            |b, _| b.iter(|| list_construction(&cat)),
        );

        g.bench_with_input(BenchmarkId::new("convex_hull", size), &size, |b, _| {
            let s: Vec<_> = cat.vertices().step_by(97).collect();
            b.iter(|| cat.convex_hull(&s))
        });

        g.bench_with_input(BenchmarkId::new("lca_table_build", size), &size, |b, _| {
            b.iter(|| LcaTable::new(&cat))
        });

        g.bench_with_input(BenchmarkId::new("projection_table", size), &size, |b, _| {
            let dia = path.diameter_info().path;
            b.iter(|| ProjectionTable::new(&path, &dia))
        });

        g.bench_with_input(BenchmarkId::new("diameter", size), &size, |b, _| {
            b.iter(|| cat.diameter_info())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_substrate, bench_engine);
criterion_main!(benches);
