//! Criterion benches for the combinatorial substrate: the local
//! computations every party performs (ListConstruction, hulls, LCA,
//! projections) at experiment scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tree_model::{generate, list_construction, LcaTable, ProjectionTable};

fn bench_substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for &size in &[1024usize, 16384] {
        let path = generate::path(size);
        let cat = generate::caterpillar(size / 3, 2);

        g.bench_with_input(BenchmarkId::new("list_construction", size), &size, |b, _| {
            b.iter(|| list_construction(&cat))
        });

        g.bench_with_input(BenchmarkId::new("convex_hull", size), &size, |b, _| {
            let s: Vec<_> = cat.vertices().step_by(97).collect();
            b.iter(|| cat.convex_hull(&s))
        });

        g.bench_with_input(BenchmarkId::new("lca_table_build", size), &size, |b, _| {
            b.iter(|| LcaTable::new(&cat))
        });

        g.bench_with_input(BenchmarkId::new("projection_table", size), &size, |b, _| {
            let dia = path.diameter_info().path;
            b.iter(|| ProjectionTable::new(&path, &dia))
        });

        g.bench_with_input(BenchmarkId::new("diameter", size), &size, |b, _| {
            b.iter(|| cat.diameter_info())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
