//! Criterion benches for the combinatorial substrate: the local
//! computations every party performs (ListConstruction, hulls, LCA,
//! projections) at experiment scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gradecast::{BatchGradecastProtocol, GradecastProtocol};
use real_aa::{RealAaBatchParty, RealAaConfig, RealAaParty};
use sim_net::{
    run_simulation, run_simulation_with, EngineConfig, Inbox, Passive, Payload, Protocol, RoundCtx,
    SimConfig, StepMode,
};
use tree_model::{generate, list_construction, LcaTable, ProjectionTable};

/// Upper bound on engine bench sizes, settable via `BENCH_MAX_N` — CI's
/// bench-smoke job runs with `BENCH_MAX_N=64`, the nightly bench with
/// `BENCH_MAX_N=1024`, and full-scale recording sessions with `4096`.
/// Defaults to 256, the historical ceiling.
fn bench_max_n() -> usize {
    std::env::var("BENCH_MAX_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

/// The unbatched gradecast wire is O(n³) delivered bytes, so a single run
/// at n = 1024 takes minutes. Legacy protocols are benched up to this cap
/// by default; set `BENCH_LEGACY_LARGE=1` to lift it when recording
/// before/after comparisons for `BENCH_engine.json`.
const UNBATCHED_CAP: usize = 256;

fn legacy_large() -> bool {
    std::env::var("BENCH_LEGACY_LARGE").as_deref() == Ok("1")
}

/// A broadcast payload with a real heap body, sized like a protocol
/// message carrying a value vector (64 words ≈ a batched state digest).
#[derive(Clone, Debug, PartialEq, Eq)]
struct Blob(Vec<u64>);

impl Payload for Blob {
    fn size_bytes(&self) -> usize {
        8 * self.0.len()
    }
}

/// Each party broadcasts a fresh blob every round for `ROUNDS` rounds and
/// then outputs how many messages it saw — pure engine fan-out, no
/// protocol logic to speak of.
struct Flooder {
    rounds: u32,
    seen: usize,
    done: bool,
}

const FLOOD_ROUNDS: u32 = 3;

impl Protocol for Flooder {
    type Msg = Blob;
    type Output = usize;

    fn step(&mut self, round: u32, inbox: &Inbox<Blob>, ctx: &mut RoundCtx<Blob>) {
        self.seen += inbox.len();
        if round <= self.rounds {
            ctx.broadcast(Blob(vec![round as u64; 64]));
        } else {
            self.done = true;
        }
    }

    fn output(&self) -> Option<usize> {
        self.done.then_some(self.seen)
    }
}

/// The engine substrate under protocol-shaped load: broadcast fan-out,
/// a full parallel-gradecast batch, and one `RealAA` iteration, across
/// the experiment scale the message-complexity scenarios use.
fn bench_engine(c: &mut Criterion) {
    let max_n = bench_max_n();
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    // Step modes timed side by side: the sequential baseline and the
    // work-stealing path at a fixed thread count, so recording sessions
    // capture the parallel speedup (or, on few-core hosts, its absence)
    // with everything else held constant.
    let modes: [(&str, StepMode); 2] = [
        ("", StepMode::Sequential),
        ("_par4", StepMode::Parallel { threads: 4 }),
    ];
    for &n in [16usize, 64, 256, 1024, 4096]
        .iter()
        .filter(|&&n| n <= max_n)
    {
        let t = (n - 1) / 3;

        for &(suffix, mode) in &modes {
            let cfg = |n, t, max_rounds| EngineConfig {
                sim: SimConfig { n, t, max_rounds },
                step_mode: mode,
            };

            g.bench_with_input(
                BenchmarkId::new(format!("broadcast_fanout{suffix}"), n),
                &n,
                |b, &n| {
                    b.iter(|| {
                        run_simulation_with(
                            cfg(n, 0, FLOOD_ROUNDS + 2),
                            |_, _| Flooder {
                                rounds: FLOOD_ROUNDS,
                                seen: 0,
                                done: false,
                            },
                            Passive,
                        )
                        .unwrap()
                    })
                },
            );

            g.bench_with_input(
                BenchmarkId::new(format!("gradecast_batch_soa{suffix}"), n),
                &n,
                |b, &n| {
                    b.iter(|| {
                        run_simulation_with(
                            cfg(n, t, 8),
                            |id, nn| BatchGradecastProtocol::new(id, nn, t, id.index() as u64),
                            Passive,
                        )
                        .unwrap()
                    })
                },
            );

            g.bench_with_input(
                BenchmarkId::new(format!("realaa_batch_iteration{suffix}"), n),
                &n,
                |b, &n| {
                    // d = 2, eps = 1: exactly one gradecast-based iteration.
                    let pcfg = RealAaConfig::new(n, t, 1.0, 2.0).unwrap();
                    let inputs: Vec<f64> =
                        (0..n).map(|i| 2.0 * i as f64 / (n - 1) as f64).collect();
                    b.iter(|| {
                        run_simulation_with(
                            cfg(n, t, pcfg.rounds() + 5),
                            |id, _| RealAaBatchParty::new(id, pcfg, inputs[id.index()]),
                            Passive,
                        )
                        .unwrap()
                    })
                },
            );
        }

        // Legacy unbatched protocols: the before side of the
        // before/after record. O(n³) delivered bytes — gated above the
        // cap so routine runs stay fast.
        if n > UNBATCHED_CAP && !legacy_large() {
            continue;
        }

        g.bench_with_input(BenchmarkId::new("gradecast_batch", n), &n, |b, &n| {
            b.iter(|| {
                run_simulation(
                    SimConfig {
                        n,
                        t,
                        max_rounds: 8,
                    },
                    |id, nn| GradecastProtocol::new(id, nn, t, id.index() as u64),
                    Passive,
                )
                .unwrap()
            })
        });

        g.bench_with_input(BenchmarkId::new("realaa_iteration", n), &n, |b, &n| {
            // d = 2, eps = 1: exactly one gradecast-based iteration.
            let cfg = RealAaConfig::new(n, t, 1.0, 2.0).unwrap();
            let inputs: Vec<f64> = (0..n).map(|i| 2.0 * i as f64 / (n - 1) as f64).collect();
            b.iter(|| {
                run_simulation(
                    SimConfig {
                        n,
                        t,
                        max_rounds: cfg.rounds() + 5,
                    },
                    |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
                    Passive,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

/// The kernels in isolation: scalar reference vs dispatching entry point
/// at the sizes the trimmed-mean and hull scans actually see.
fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(1));
    g.warm_up_time(std::time::Duration::from_millis(200));
    for &len in [64usize, 256, 1024, 4096]
        .iter()
        .filter(|&&l| l <= bench_max_n())
    {
        let xs: Vec<f64> = (0..len).map(|i| (i as f64).sin()).collect();
        let us: Vec<usize> = (0..len).map(|i| i.wrapping_mul(0x9E37) % 7919).collect();
        g.bench_with_input(BenchmarkId::new("sum_f64_ref", len), &len, |b, _| {
            b.iter(|| aa_kernels::sum_f64_ref(&xs))
        });
        g.bench_with_input(BenchmarkId::new("sum_f64", len), &len, |b, _| {
            b.iter(|| aa_kernels::sum_f64(&xs))
        });
        g.bench_with_input(BenchmarkId::new("min_max_f64_ref", len), &len, |b, _| {
            b.iter(|| aa_kernels::min_max_f64_ref(&xs))
        });
        g.bench_with_input(BenchmarkId::new("min_max_f64", len), &len, |b, _| {
            b.iter(|| aa_kernels::min_max_f64(&xs))
        });
        g.bench_with_input(BenchmarkId::new("min_max_usize", len), &len, |b, _| {
            b.iter(|| aa_kernels::min_max_usize(&us))
        });
    }
    g.finish();
}

fn bench_substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for &size in &[1024usize, 16384] {
        let path = generate::path(size);
        let cat = generate::caterpillar(size / 3, 2);

        g.bench_with_input(
            BenchmarkId::new("list_construction", size),
            &size,
            |b, _| b.iter(|| list_construction(&cat)),
        );

        g.bench_with_input(BenchmarkId::new("convex_hull", size), &size, |b, _| {
            let s: Vec<_> = cat.vertices().step_by(97).collect();
            b.iter(|| cat.convex_hull(&s))
        });

        g.bench_with_input(BenchmarkId::new("lca_table_build", size), &size, |b, _| {
            b.iter(|| LcaTable::new(&cat))
        });

        g.bench_with_input(BenchmarkId::new("projection_table", size), &size, |b, _| {
            let dia = path.diameter_info().path;
            b.iter(|| ProjectionTable::new(&path, &dia))
        });

        g.bench_with_input(BenchmarkId::new("diameter", size), &size, |b, _| {
            b.iter(|| cat.diameter_info())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_substrate, bench_engine, bench_kernels);
criterion_main!(benches);
