//! Shared plumbing for the experiment binaries (`src/bin/e*.rs`) and the
//! Criterion benches: scenario runners, spread helpers, and markdown
//! table rendering matching the formats recorded in `EXPERIMENTS.md`.

#![warn(missing_docs)]
use std::sync::Arc;

use sim_net::{run_simulation, Adversary, PartyId, Passive, Protocol, SimConfig};
use tree_aa::{EngineKind, TreeAaConfig, TreeAaParty};
use tree_model::{LcaTable, Tree, VertexId};

/// max − min of a value slice.
pub fn spread(outs: &[f64]) -> f64 {
    let lo = outs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = outs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    hi - lo
}

/// Maximum pairwise tree distance of a vertex slice.
///
/// Builds one binary-lifting [`LcaTable`] up front and answers each of the
/// `k·(k−1)/2` pairs in `O(log |V|)`, instead of one BFS walk per pair.
pub fn vertex_spread(tree: &Tree, outs: &[VertexId]) -> usize {
    if outs.len() < 2 {
        return 0;
    }
    let lca = LcaTable::new(tree);
    let mut best = 0;
    for (i, &a) in outs.iter().enumerate() {
        for &b in &outs[i + 1..] {
            best = best.max(lca.distance(a, b));
        }
    }
    best
}

/// Picks `n` spread-out input vertices deterministically.
pub fn spaced_inputs(tree: &Tree, n: usize, stride: usize) -> Vec<VertexId> {
    let m = tree.vertex_count();
    (0..n)
        .map(|i| tree.vertices().nth((i * stride) % m).expect("in range"))
        .collect()
}

/// Runs `TreeAA` honestly and returns (honest outputs, communication
/// rounds).
///
/// # Panics
///
/// Panics if the simulation fails (harness-level error, not a protocol
/// outcome).
pub fn run_tree_aa_honest(
    tree: &Arc<Tree>,
    n: usize,
    t: usize,
    engine: EngineKind,
    inputs: &[VertexId],
) -> (Vec<VertexId>, u32) {
    let cfg = TreeAaConfig::new(n, t, engine, tree).expect("valid parameters");
    let report = run_simulation(
        SimConfig {
            n,
            t,
            max_rounds: cfg.total_rounds() + 5,
        },
        |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(tree), inputs[id.index()]),
        Passive,
    )
    .expect("simulation completes");
    (report.honest_outputs(), report.communication_rounds())
}

/// Runs any protocol and returns the report (thin convenience wrapper
/// keeping the binaries terse).
///
/// # Panics
///
/// Panics if the simulation fails.
pub fn run<P, A, F>(
    n: usize,
    t: usize,
    max_rounds: u32,
    factory: F,
    adversary: A,
) -> sim_net::RunReport<P::Output>
where
    P: Protocol + Send,
    P::Msg: Send + Sync,
    A: Adversary<P::Msg>,
    F: FnMut(PartyId, usize) -> P,
{
    run_simulation(SimConfig { n, t, max_rounds }, factory, adversary)
        .expect("simulation completes")
}

/// A minimal markdown table printer (the experiment outputs are recorded
/// verbatim in `EXPERIMENTS.md`).
#[derive(Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as github-flavored markdown.
    pub fn render(&self) -> String {
        let mut width: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!(" {:w$} |", c, w = width[i]));
            }
            s
        };
        let mut out = line(&self.headers);
        out.push('\n');
        out.push('|');
        for w in &width {
            out.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        for row in &self.rows {
            out.push('\n');
            out.push_str(&line(row));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tree_model::generate;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let r = t.render();
        assert!(r.starts_with("| a | bb |"));
        assert!(r.contains("|---|----|"));
        assert!(r.ends_with("| 1 | 2  |"));
    }

    #[test]
    fn spread_helpers() {
        assert_eq!(spread(&[1.0, 4.0, 2.0]), 3.0);
        let tree = generate::path(6);
        let vs: Vec<VertexId> = tree.vertices().collect();
        assert_eq!(vertex_spread(&tree, &[vs[0], vs[3], vs[1]]), 3);
    }

    #[test]
    fn spaced_inputs_are_in_range() {
        let tree = generate::star(9);
        let ins = spaced_inputs(&tree, 7, 3);
        assert_eq!(ins.len(), 7);
        assert!(ins.iter().all(|v| v.index() < 9));
    }
}
