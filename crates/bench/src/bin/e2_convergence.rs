//! **E2 — Lemma 5 / Claim 12: the per-iteration convergence envelope.**
//!
//! Runs `RealAA` for exactly `R` iterations (override) against the
//! budget-split equivocator with schedule `equal_split(t, R)` and compares
//! the measured final honest spread with
//!
//! * the protocol envelope `D · Π tᵢ / (n − 2t)^R` (Lemma 5), and
//! * Fekete's model-level bound `K(R, D)` with denominator `(n + t)^R`
//!   (Theorem 1) — which every protocol, ours included, must exceed in
//!   some execution when `K > 1`... i.e. measured spread may sit between
//!   the two but can never beat `K` to below 1 while claiming fewer
//!   rounds.
//!
//! Expected shape: measured / envelope within a small constant; both decay
//! super-exponentially in `R` once the per-iteration budget `t/R` drops.

use bench::{spread, Table};
use lower_bound::fekete_k;
use real_aa::adversary::{equal_split_schedule, BudgetSplitEquivocator};
use real_aa::{RealAaConfig, RealAaParty};
use sim_net::{run_simulation, PartyId, SimConfig};

fn run_case(n: usize, t: usize, d: f64, r: u32) -> (f64, f64, f64) {
    let schedule = equal_split_schedule(t, r as usize);
    let cfg = RealAaConfig::new(n, t, 1e-12, d)
        .expect("valid")
        .with_fixed_iterations(r);
    let byz: Vec<PartyId> = (0..t).map(PartyId).collect();
    let adv = BudgetSplitEquivocator::new(n, byz, schedule.clone());
    let inputs: Vec<f64> = (0..n).map(|i| d * i as f64 / (n - 1) as f64).collect();
    let report = run_simulation(
        SimConfig {
            n,
            t,
            max_rounds: cfg.rounds() + 5,
        },
        |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
        adv,
    )
    .expect("simulation completes");
    let measured = spread(&report.honest_outputs());
    let envelope: f64 = schedule
        .iter()
        .map(|&ti| ti as f64 / (n - 2 * t) as f64)
        .product::<f64>()
        * d;
    (measured, envelope, fekete_k(3 * r, d, n, t))
}

fn main() {
    for (n, t) in [(10usize, 3usize), (22, 7)] {
        let d = 1000.0;
        println!("\n## E2: convergence after R iterations (n = {n}, t = {t}, D = {d})\n");
        let mut table = Table::new(&[
            "R",
            "schedule",
            "measured spread",
            "envelope D*prod(t_i)/(n-2t)^R",
            "measured/envelope",
            "Fekete K(3R, D)",
        ]);
        for r in 1..=t.min(6) as u32 {
            let (measured, envelope, k) = run_case(n, t, d, r);
            assert!(
                measured <= envelope + 1e-9,
                "measured spread exceeded the protocol envelope at R = {r}"
            );
            table.row(vec![
                r.to_string(),
                format!("{:?}", equal_split_schedule(t, r as usize)),
                format!("{measured:.6}"),
                format!("{envelope:.6}"),
                format!("{:.3}", measured / envelope),
                format!("{k:.6}"),
            ]);
        }
        table.print();
    }
}
