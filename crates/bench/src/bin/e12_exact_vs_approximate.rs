//! **E12 — Section 6's motivation: exact vs approximate path agreement.**
//!
//! The paper observes that finding a common path exactly "comes down to
//! solving Byzantine Agreement", costing `t + 1 = O(n)` rounds, and builds
//! `PathsFinder` to get 1-close paths in `O(log|V|/log log|V|)` rounds
//! instead. This experiment measures both sides: phase-king BA rounds
//! (which grow linearly in `t`) against `PathsFinder` rounds (which do not
//! grow with `n` at all, only — slowly — with `|V|`).

use std::sync::Arc;

use bench::Table;
use byz_agreement::{PhaseKingConfig, PhaseKingParty};
use sim_net::{run_simulation, Passive, SimConfig};
use tree_aa::{EngineKind, PathsFinderConfig, PathsFinderParty};
use tree_model::{generate, list_construction};

fn main() {
    let tree = Arc::new(generate::caterpillar(342, 2)); // |V| = 1026
    let list = list_construction(&tree);
    println!(
        "## E12: exact BA vs PathsFinder on |V| = {} (list length {})\n",
        tree.vertex_count(),
        list.len()
    );
    let mut table = Table::new(&[
        "n",
        "t",
        "phase-king BA rounds (measured)",
        "3(t+1)",
        "PathsFinder rounds (measured)",
    ]);
    for t in [1usize, 2, 4, 8, 16] {
        let n = 3 * t + 1;
        // BA on Euler indices (exact agreement; unanimity validity only).
        let ba = PhaseKingConfig::new(n, t).expect("valid");
        let inputs: Vec<u64> = (0..n).map(|i| (i * 97 % list.len()) as u64).collect();
        let report = run_simulation(
            SimConfig {
                n,
                t,
                max_rounds: ba.rounds() + 5,
            },
            |id, _| PhaseKingParty::new(id, ba, inputs[id.index()]),
            Passive,
        )
        .expect("simulation completes");
        let ba_rounds = report.communication_rounds();

        // PathsFinder on the same tree.
        let pf = PathsFinderConfig::new(n, t, EngineKind::Gradecast, &tree).expect("valid");
        let vins: Vec<_> = (0..n)
            .map(|i| {
                tree.vertices()
                    .nth((i * 97) % tree.vertex_count())
                    .expect("ok")
            })
            .collect();
        let report = run_simulation(
            SimConfig {
                n,
                t,
                max_rounds: pf.rounds() + 5,
            },
            |id, _| PathsFinderParty::new(id, pf.clone(), Arc::clone(&tree), vins[id.index()]),
            Passive,
        )
        .expect("simulation completes");
        let pf_rounds = report.communication_rounds();

        table.row(vec![
            n.to_string(),
            t.to_string(),
            ba_rounds.to_string(),
            (3 * (t as u32 + 1)).to_string(),
            pf_rounds.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nReading: exact agreement pays Θ(t) rounds and keeps growing with the \
         system size, while PathsFinder is flat in n — and BA's unanimity \
         validity would not even give convex validity on the tree (see the \
         byz-agreement crate docs). Both observations together are Section 6's \
         rationale for agreeing on paths only approximately."
    );
}
