//! **E10 — Ablations: which design choices carry the round-optimality.**
//!
//! `RealAA`'s envelope `Π tᵢ/(n−2t)` rests on two mechanisms that are easy
//! to get wrong (DESIGN.md §5):
//!
//! 1. **Fixed-size multisets** (public fill constant for grade-0 slots).
//!    Ablated, a planted extreme value shifts the trim window and one
//!    replacement can move the mean by up to half the honest range.
//! 2. **Muting** (permanently silencing any leader whose grade split).
//!    Ablated, a single Byzantine leader disturbs *every* iteration and
//!    the convergence degrades toward plain halving.
//!
//! Each ablation is run against an adversary that models the ablated
//! update rule, for exactly `R` iterations; the full protocol is run
//! against its own optimal adversary for comparison.

use bench::{spread, Table};
use real_aa::adversary::{equal_split_schedule, BudgetSplitEquivocator};
use real_aa::{RealAaConfig, RealAaParty};
use sim_net::{run_simulation, PartyId, SimConfig};

struct Variant {
    ablate_fill: bool,
    ablate_muting: bool,
}

fn run_variant(v: &Variant, n: usize, t: usize, d: f64, r: u32) -> f64 {
    let mut cfg = RealAaConfig::new(n, t, 1e-12, d)
        .expect("valid")
        .with_fixed_iterations(r);
    if v.ablate_fill {
        cfg = cfg.with_ablated_fill_rule();
    }
    if v.ablate_muting {
        cfg = cfg.with_ablated_muting();
    }
    let byz: Vec<PartyId> = (0..t).map(PartyId).collect();
    // Budget: with muting ablated the same leaders re-attack each
    // iteration; otherwise spend the budget across iterations.
    let mut adv = if v.ablate_muting {
        BudgetSplitEquivocator::new_reusing(n, byz, vec![t.min(2); r as usize])
    } else {
        BudgetSplitEquivocator::new(n, byz, equal_split_schedule(t, r as usize))
    };
    if v.ablate_fill {
        adv = adv.modeling_variable_multisets();
    }
    let inputs: Vec<f64> = (0..n).map(|i| d * i as f64 / (n - 1) as f64).collect();
    let report = run_simulation(
        SimConfig {
            n,
            t,
            max_rounds: cfg.rounds() + 5,
        },
        |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
        adv,
    )
    .expect("simulation completes");
    spread(&report.honest_outputs())
}

fn main() {
    let (n, t) = (10usize, 3usize);
    let d = 1000.0;
    println!("## E10: design-choice ablations (n = {n}, t = {t}, D = {d})\n");
    println!("Final honest spread after exactly R iterations, strongest adversary per variant:\n");

    // Column order matches the table header below.
    let variants = [
        Variant {
            ablate_fill: false,
            ablate_muting: false,
        },
        Variant {
            ablate_fill: true,
            ablate_muting: false,
        },
        Variant {
            ablate_fill: false,
            ablate_muting: true,
        },
        Variant {
            ablate_fill: true,
            ablate_muting: true,
        },
    ];

    let rs: Vec<u32> = vec![1, 2, 3, 5, 8];
    let mut table = Table::new(&[
        "R",
        "envelope",
        "full protocol",
        "no fill rule",
        "no muting",
        "neither",
    ]);
    for &r in &rs {
        let envelope: f64 = equal_split_schedule(t, r as usize)
            .iter()
            .map(|&ti| ti as f64 / (n - 2 * t) as f64)
            .product::<f64>()
            * d;
        let mut cells = vec![r.to_string(), format!("{envelope:.4}")];
        for v in &variants {
            cells.push(format!("{:.4}", run_variant(v, n, t, d, r)));
        }
        table.row(cells);
    }
    table.print();
    println!(
        "\nReading: the full protocol stays within the envelope and collapses to 0 \
         once the budget is spread thinner than one leader per iteration. Without \
         muting the same leaders re-attack every iteration and the spread decays \
         only geometrically (factor ~1/2 per iteration) — round optimality is \
         gone; this is the load-bearing mechanism. The fill-rule ablation's \
         cumulative spread looks comparable here, but its *per-iteration* \
         contraction can exceed t_i/(n-2t) (the trim-window shift; see \
         DESIGN.md §5), which is what breaks the envelope proof — the fill rule \
         is what makes the Lemma 5 accounting sound."
    );
}
