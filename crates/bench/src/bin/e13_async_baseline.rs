//! **E13 — The asynchronous state of the art, measured.**
//!
//! The paper's round-complexity claim is synchronous; the asynchronous
//! `O(log D)` protocol of Nowak & Rybicki remains the state of the art in
//! that model (Section 1.2). This experiment runs our implementation of it
//! (Bracha RBC + witness technique, crate `async-aa`) and reports its
//! asynchronous time (normalized max-delay units — the async analogue of
//! rounds) and message complexity across diameters and delay models,
//! next to the synchronous protocols on the same trees.

use std::sync::Arc;

use async_aa::{AsyncTreeAaConfig, AsyncTreeAaParty};
use async_net::{run_async, AsyncConfig, DelayModel, SilentAsync};
use bench::{spaced_inputs, Table};
use sim_net::{Outcome, PartyId};
use tree_aa::{check_tree_aa, EngineKind, NowakRybickiConfig, TreeAaConfig};
use tree_model::generate;

fn main() {
    let (n, t) = (7usize, 2usize);
    println!(
        "## E13: async tree AA (RBC + witnesses) vs synchronous protocols (n = {n}, t = {t})\n"
    );
    let mut table = Table::new(&[
        "|V| (path)",
        "iterations",
        "async time (uniform)",
        "async time (lockstep)",
        "async msgs",
        "sync TreeAA rounds",
        "sync baseline rounds",
    ]);
    for exp in [3u32, 5, 7, 9, 11] {
        let size = (1usize << exp) + 1;
        let tree = Arc::new(generate::path(size));
        let inputs = spaced_inputs(&tree, n, size / n + 1);
        let cfg = AsyncTreeAaConfig::new(n, t, &tree).expect("valid");

        let mut times = Vec::new();
        let mut msgs = 0usize;
        for (delay, seed) in [
            (DelayModel::Uniform { min: 0.05 }, 11u64),
            (DelayModel::Lockstep, 12),
        ] {
            let report = run_async(
                AsyncConfig {
                    n,
                    t,
                    seed,
                    delay,
                    max_events: 20_000_000,
                },
                |id, _| AsyncTreeAaParty::new(cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
                SilentAsync {
                    parties: vec![PartyId(2), PartyId(5)],
                },
            )
            .expect("async run completes");
            let honest_inputs: Vec<_> = (0..n)
                .filter(|&i| i != 2 && i != 5)
                .map(|i| inputs[i])
                .collect();
            let outputs: Vec<_> = report
                .honest_outputs()
                .into_iter()
                .map(Outcome::into_value)
                .collect();
            check_tree_aa(&tree, &honest_inputs, &outputs).expect("definition 2 holds");
            times.push(report.completion_time);
            msgs = report.messages_delivered;
        }

        let sync_cfg = TreeAaConfig::new(n, t, EngineKind::Gradecast, &tree).expect("valid");
        let nr = NowakRybickiConfig::new(n, t, &tree).expect("valid");
        table.row(vec![
            size.to_string(),
            cfg.iterations.to_string(),
            format!("{:.1}", times[0]),
            format!("{:.1}", times[1]),
            msgs.to_string(),
            sync_cfg.total_rounds().to_string(),
            nr.rounds().to_string(),
        ]);
    }
    table.print();
    println!(
        "\nReading: the async protocol needs a constant number of causal hops per \
         iteration (RBC depth 3 + report), so its normalized time grows with \
         log2(D) exactly like the synchronous baseline's rounds — the O(log D) \
         state of the art the paper's synchronous TreeAA improves on \
         asymptotically. Silent-Byzantine runs confirm it only ever waits for \
         n - t parties."
    );
}
