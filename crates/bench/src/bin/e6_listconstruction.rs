//! **E6 — Figures 3 and 4: `ListConstruction` and the
//! valid-subtree-but-invalid-vertex phenomenon.**
//!
//! First reproduces the paper's Euler list for the Figure 3 tree
//! verbatim. Then reproduces the Section 6 discussion around Figure 4:
//! with honest inputs `{v3, v6, v5}` (hull `{v5, v2, v3, v6}`), a
//! Byzantine party that runs `PathsFinder` *honestly but with a planted
//! input* can steer the agreed list index into `L(v4) ∪ L(v8)` — vertices
//! **outside** the honest hull — yet every resulting root path still
//! intersects the hull (Lemma 3), which is all `TreeAA` needs.

use std::sync::Arc;

use bench::Table;
use sim_net::{run_simulation, Passive, SimConfig};
use tree_aa::{EngineKind, PathsFinderConfig, PathsFinderParty};
use tree_model::{list_construction, Tree, VertexId};

fn figure3() -> Tree {
    Tree::from_labeled_edges(
        ["v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8"],
        [
            ("v1", "v2"),
            ("v2", "v3"),
            ("v3", "v6"),
            ("v3", "v7"),
            ("v2", "v4"),
            ("v4", "v8"),
            ("v2", "v5"),
        ],
    )
    .expect("valid tree")
}

fn main() {
    let tree = Arc::new(figure3());
    let list = list_construction(&tree);
    let labels: Vec<&str> = list
        .entries()
        .iter()
        .map(|&v| tree.label(v).as_str())
        .collect();
    println!("## E6a: ListConstruction on the Figure 3 tree\n");
    println!("L = [{}]", labels.join(", "));
    let expected = [
        "v1", "v2", "v3", "v6", "v3", "v7", "v3", "v2", "v4", "v8", "v4", "v2", "v5", "v2", "v1",
    ];
    assert_eq!(labels, expected, "Euler list mismatch with the paper");
    println!(
        "matches the paper's list: yes (|L| = {} = 2|V| - 1)\n",
        list.len()
    );

    println!("## E6b: steering PathsFinder outside the honest hull (Figure 4)\n");
    let honest_inputs: Vec<VertexId> = ["v3", "v6", "v5"]
        .iter()
        .map(|l| tree.vertex(l).expect("present"))
        .collect();
    let hull = tree.convex_hull(&honest_inputs);
    let (n, t) = (4usize, 1usize);
    let cfg = PathsFinderConfig::new(n, t, EngineKind::Gradecast, &tree).expect("valid");

    let mut table = Table::new(&[
        "byz planted input",
        "honest path endpoints",
        "endpoint in honest hull?",
        "path intersects hull (Lemma 3)?",
    ]);
    let mut escapes = 0usize;
    for planted in tree.vertices() {
        // The Byzantine party (id 3) runs the protocol honestly with a
        // planted input — the cheapest steering strategy.
        let inputs = [
            honest_inputs[0],
            honest_inputs[1],
            honest_inputs[2],
            planted,
        ];
        let report = run_simulation(
            SimConfig {
                n,
                t,
                max_rounds: cfg.rounds() + 5,
            },
            |id, _| PathsFinderParty::new(id, cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
            Passive,
        )
        .expect("simulation completes");
        // Party 3 is "byzantine by input": evaluate only honest parties.
        let paths: Vec<_> = (0..3)
            .map(|i| report.outputs[i].clone().expect("output"))
            .collect();
        let mut endpoints: Vec<String> = Vec::new();
        let mut all_valid = true;
        let mut all_intersect = true;
        for p in &paths {
            let (_, end) = p.endpoints();
            if !endpoints.contains(&tree.label(end).to_string()) {
                endpoints.push(tree.label(end).to_string());
            }
            all_valid &= hull.contains(end);
            all_intersect &= p.vertices().iter().any(|&v| hull.contains(v));
        }
        assert!(all_intersect, "Lemma 3 violated");
        if !all_valid {
            escapes += 1;
        }
        table.row(vec![
            tree.label(planted).to_string(),
            endpoints.join("/"),
            all_valid.to_string(),
            all_intersect.to_string(),
        ]);
    }
    table.print();
    println!(
        "\n{escapes} planted inputs steered the agreed vertex outside the honest hull \
         (into the subtree of a valid vertex), and every path still intersected the \
         hull — exactly the Figure 4 phenomenon and why TreeAA's second phase exists."
    );
    assert!(
        escapes > 0,
        "expected at least one hull escape to demonstrate Figure 4"
    );
}
