//! **E3 — Theorem 4: `TreeAA` round complexity across tree families.**
//!
//! Sweeps |V(T)| for several tree families and reports the measured
//! communication rounds of `TreeAA` (gradecast engine), `TreeAA` over the
//! halving engine, and the Nowak–Rybicki `O(log D)` baseline, plus the
//! paper's asymptotic target `log|V| / log log|V|`.
//!
//! Expected shape: on high-diameter families (paths, caterpillars) the
//! gradecast `TreeAA` needs asymptotically fewer rounds than the
//! `O(log D)` baseline; on low-diameter families (stars, balanced trees)
//! the baseline's `log D` is tiny and wins — exactly the regime split
//! discussed in the paper's conclusions (optimality holds for
//! `D(T) ∈ |V|^Θ(1)`).

use std::sync::Arc;

use bench::{run_tree_aa_honest, spaced_inputs, vertex_spread, Table};
use tree_aa::{check_tree_aa, EngineKind, NowakRybickiConfig};
use tree_model::{generate, Tree};

fn families(size: usize) -> Vec<(&'static str, Tree)> {
    vec![
        ("path", generate::path(size)),
        ("caterpillar", generate::caterpillar(size.div_ceil(3), 2)),
        ("spider8", generate::spider(8, size.div_ceil(8).max(1))),
        (
            "binary",
            generate::balanced_kary(2, (size.max(2) as f64).log2().floor() as u32),
        ),
        ("star", generate::star(size)),
    ]
}

fn main() {
    let (n, t) = (7usize, 2usize);
    println!("## E3: TreeAA rounds vs |V(T)| (n = {n}, t = {t})\n");
    let mut table = Table::new(&[
        "family",
        "|V|",
        "D(T)",
        "TreeAA rounds",
        "TreeAA (halving engine)",
        "Nowak-Rybicki rounds",
        "log|V|/loglog|V|",
        "output spread",
    ]);
    for size in [8usize, 32, 128, 512, 2048, 8192] {
        for (name, tree) in families(size) {
            let tree = Arc::new(tree);
            let v = tree.vertex_count();
            let d = tree.diameter();
            let inputs = spaced_inputs(&tree, n, v / n + 1);
            let (outs_g, rounds_g) =
                run_tree_aa_honest(&tree, n, t, EngineKind::Gradecast, &inputs);
            check_tree_aa(&tree, &inputs, &outs_g).expect("definition 2 holds");
            let (outs_h, rounds_h) = run_tree_aa_honest(&tree, n, t, EngineKind::Halving, &inputs);
            check_tree_aa(&tree, &inputs, &outs_h).expect("definition 2 holds");
            let nr = NowakRybickiConfig::new(n, t, &tree)
                .expect("valid")
                .rounds();
            let lv = (v as f64).log2();
            let target = if lv.log2() > 0.0 { lv / lv.log2() } else { 1.0 };
            table.row(vec![
                name.to_string(),
                v.to_string(),
                d.to_string(),
                rounds_g.to_string(),
                rounds_h.to_string(),
                nr.to_string(),
                format!("{target:.1}"),
                vertex_spread(&tree, &outs_g).to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "\nNote: TreeAA rounds are deterministic (fixed-round engines); the spread \
         column confirms 1-agreement on every run."
    );
}
