//! **E9 — Message and communication complexity accounting.**
//!
//! The related-work discussion credits the `RealAA` building block with
//! `O(R · n³)` messages (n parallel gradecasts, each echo/vote phase all-
//! to-all). This experiment measures total messages and estimated bytes
//! per protocol and checks the cubic scaling in `n` empirically.

use std::sync::Arc;

use bench::{spaced_inputs, Table};
use real_aa::{RealAaConfig, RealAaParty};
use sim_net::{run_simulation, Passive, SimConfig};
use tree_aa::{EngineKind, NowakRybickiConfig, NowakRybickiParty, TreeAaConfig, TreeAaParty};
use tree_model::generate;

fn main() {
    println!("## E9a: RealAA message complexity vs n (delta = 2^10, eps = 1)\n");
    let mut table = Table::new(&[
        "n",
        "t",
        "rounds",
        "messages",
        "messages / (R_iter * n^3)",
        "bytes",
    ]);
    for t in [1usize, 2, 4, 8] {
        let n = 3 * t + 1;
        let d = 1024.0;
        let cfg = RealAaConfig::new(n, t, 1.0, d).expect("valid");
        let inputs: Vec<f64> = (0..n).map(|i| d * i as f64 / (n - 1) as f64).collect();
        let report = run_simulation(
            SimConfig {
                n,
                t,
                max_rounds: cfg.rounds() + 5,
            },
            |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
            Passive,
        )
        .expect("simulation completes");
        let msgs = report.metrics.total_messages();
        let norm = msgs as f64 / (cfg.iterations() as f64 * (n as f64).powi(3));
        table.row(vec![
            n.to_string(),
            t.to_string(),
            report.communication_rounds().to_string(),
            msgs.to_string(),
            format!("{norm:.2}"),
            report.metrics.total_bytes().to_string(),
        ]);
    }
    table.print();
    println!(
        "\nThe normalized column converging to a constant (~2) confirms the \
         O(R * n^3) message complexity of the gradecast-based engine.\n"
    );

    println!("## E9b: protocol comparison on one tree (caterpillar, |V| = 513, n = 7, t = 2)\n");
    let tree = Arc::new(generate::caterpillar(171, 2));
    let (n, t) = (7usize, 2usize);
    let inputs = spaced_inputs(&tree, n, 83);
    let mut table = Table::new(&["protocol", "rounds", "messages", "bytes"]);

    for engine in [EngineKind::Gradecast, EngineKind::Halving] {
        let cfg = TreeAaConfig::new(n, t, engine, &tree).expect("valid");
        let report = run_simulation(
            SimConfig {
                n,
                t,
                max_rounds: cfg.total_rounds() + 5,
            },
            |id, _| TreeAaParty::new(id, cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
            Passive,
        )
        .expect("simulation completes");
        table.row(vec![
            format!("TreeAA ({engine:?})"),
            report.communication_rounds().to_string(),
            report.metrics.total_messages().to_string(),
            report.metrics.total_bytes().to_string(),
        ]);
    }
    let cfg = NowakRybickiConfig::new(n, t, &tree).expect("valid");
    let report = run_simulation(
        SimConfig {
            n,
            t,
            max_rounds: cfg.rounds() + 5,
        },
        |id, _| NowakRybickiParty::new(id, cfg.clone(), Arc::clone(&tree), inputs[id.index()]),
        Passive,
    )
    .expect("simulation completes");
    table.row(vec![
        "Nowak-Rybicki".to_string(),
        report.communication_rounds().to_string(),
        report.metrics.total_messages().to_string(),
        report.metrics.total_bytes().to_string(),
    ]);
    table.print();
}
