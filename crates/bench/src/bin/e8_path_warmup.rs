//! **E8 — Section 4 warm-up: AA on path input spaces.**
//!
//! Runs `PathAA` on growing path graphs with both engines, verifying
//! Definition 2 each time and reporting rounds: the warm-up's cost is a
//! single engine run, i.e. exactly half of `TreeAA`'s two-phase cost on
//! the same path.

use std::sync::Arc;

use bench::{spaced_inputs, vertex_spread, Table};
use sim_net::{run_simulation, Passive, SimConfig};
use tree_aa::{check_tree_aa, EngineKind, PathAaConfig, PathAaParty, TreeAaConfig};
use tree_model::generate;

fn main() {
    let (n, t) = (7usize, 2usize);
    println!("## E8: warm-up PathAA on path graphs (n = {n}, t = {t})\n");
    let mut table = Table::new(&[
        "|V| = D+1",
        "PathAA rounds (gradecast)",
        "PathAA rounds (halving)",
        "TreeAA rounds (same path)",
        "output spread",
    ]);
    for size in [8usize, 32, 128, 512, 2048, 8192] {
        let tree = Arc::new(generate::path(size));
        let inputs = spaced_inputs(&tree, n, size / n + 1);
        let mut rounds = Vec::new();
        let mut last_spread = 0;
        for engine in [EngineKind::Gradecast, EngineKind::Halving] {
            let cfg = PathAaConfig::new(n, t, engine, &tree).expect("valid");
            let report = run_simulation(
                SimConfig {
                    n,
                    t,
                    max_rounds: cfg.rounds() + 5,
                },
                |id, _| PathAaParty::new(id, cfg.clone(), inputs[id.index()]),
                Passive,
            )
            .expect("simulation completes");
            let outs = report.honest_outputs();
            check_tree_aa(&tree, &inputs, &outs).expect("definition 2 holds");
            rounds.push(report.communication_rounds());
            last_spread = vertex_spread(&tree, &outs);
        }
        let tree_aa = TreeAaConfig::new(n, t, EngineKind::Gradecast, &tree)
            .expect("valid")
            .total_rounds();
        table.row(vec![
            size.to_string(),
            rounds[0].to_string(),
            rounds[1].to_string(),
            tree_aa.to_string(),
            last_spread.to_string(),
        ]);
    }
    table.print();
}
