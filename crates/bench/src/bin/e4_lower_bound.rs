//! **E4 — Theorem 2: lower bound vs achieved rounds (optimality gap).**
//!
//! On path input spaces (`D(T) = |V| − 1`, the `D ∈ |V|^Θ(1)` regime) with
//! `t = Θ(n)`, compares the exact Fekete round lower bound and the
//! Theorem 2 closed form against the rounds `TreeAA` actually uses. The
//! ratio achieved/lower-bound should stay bounded by a constant as the
//! tree grows — that is what "asymptotically optimal" means here.

use std::sync::Arc;

use bench::{run_tree_aa_honest, spaced_inputs, Table};
use lower_bound::{round_lower_bound, theorem2_formula};
use tree_aa::{check_tree_aa, EngineKind};
use tree_model::generate;

fn main() {
    let (n, t) = (16usize, 5usize);
    println!("## E4: lower bound vs TreeAA rounds on paths (n = {n}, t = {t})\n");
    let mut table = Table::new(&[
        "|V|",
        "D(T)",
        "exact lower bound",
        "Theorem 2 formula",
        "TreeAA rounds",
        "achieved/exact-LB",
    ]);
    for exp in [4u32, 6, 8, 10, 12, 14] {
        let size = 1usize << exp;
        let tree = Arc::new(generate::path(size));
        let d = tree.diameter();
        let inputs = spaced_inputs(&tree, n, size / n + 1);
        let (outs, rounds) = run_tree_aa_honest(&tree, n, t, EngineKind::Gradecast, &inputs);
        check_tree_aa(&tree, &inputs, &outs).expect("definition 2 holds");
        let exact = round_lower_bound(d as f64, n, t);
        let formula = theorem2_formula(d as f64, n, t);
        table.row(vec![
            size.to_string(),
            d.to_string(),
            exact.to_string(),
            format!("{formula:.2}"),
            rounds.to_string(),
            format!("{:.2}", rounds as f64 / exact as f64),
        ]);
    }
    table.print();
    println!(
        "\nThe ratio column should stay O(1) as |V| grows: TreeAA is \
         asymptotically round-optimal for D(T) ∈ |V|^Θ(1), t ∈ Θ(n)."
    );
}
