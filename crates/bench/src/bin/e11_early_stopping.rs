//! **E11 — Early stopping ablation: adaptive vs fixed-round termination.**
//!
//! The paper notes `RealAA` lets parties terminate once they observe their
//! values are ε-close (possibly in consecutive iterations), while the
//! composition inside `TreeAA` runs to the fixed public round bound. This
//! experiment quantifies the gap: rounds to termination for the
//! fixed-round protocol vs. the sound early-stopping variant, as a
//! function of how adversarial the execution actually is. The public
//! promise is always D = 1024 (so the fixed bound is identical across
//! rows); what varies is the *actual* input spread and the adversary.

use bench::{spread, Table};
use real_aa::adversary::{equal_split_schedule, BudgetSplitEquivocator, RealAaChaos};
use real_aa::{RealAaConfig, RealAaParty};
use sim_net::{run_simulation, Adversary, PartyId, RunReport, SimConfig};

fn run_one<A: Adversary<real_aa::RealAaMsg>>(
    cfg: RealAaConfig,
    inputs: &[f64],
    adv: A,
) -> RunReport<f64> {
    run_simulation(
        SimConfig {
            n: cfg.n,
            t: cfg.t,
            max_rounds: cfg.rounds() + 5,
        },
        |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
        adv,
    )
    .expect("simulation completes")
}

fn main() {
    let (n, t) = (10usize, 3usize);
    let d_public = 1024.0;
    let fixed = RealAaConfig::new(n, t, 1.0, d_public).expect("valid");
    let early = fixed.with_early_stopping();
    println!(
        "## E11: early stopping vs fixed rounds (n = {n}, t = {t}, public D = {d_public}, \
         fixed bound = {} rounds)\n",
        fixed.rounds()
    );

    let mut table = Table::new(&[
        "scenario",
        "actual spread",
        "fixed rounds",
        "early-stop rounds",
        "saved",
        "final spread (early)",
    ]);

    let scenarios: Vec<(&str, f64)> = vec![
        ("clean, tight inputs", 2.0),
        ("clean, half-range inputs", 512.0),
        ("clean, full-range inputs", 1024.0),
    ];
    for (name, actual) in scenarios {
        let inputs: Vec<f64> = (0..n).map(|i| actual * i as f64 / (n - 1) as f64).collect();
        let rf = run_one(fixed, &inputs, sim_net::Passive);
        let re = run_one(early, &inputs, sim_net::Passive);
        let s = spread(&re.honest_outputs());
        assert!(s <= 1.0);
        table.row(vec![
            name.to_string(),
            format!("{actual}"),
            rf.communication_rounds().to_string(),
            re.communication_rounds().to_string(),
            format!("{}", rf.communication_rounds() - re.communication_rounds()),
            format!("{s:.3}"),
        ]);
    }

    // Adversarial rows: the budget-split equivocator delays the observable
    // collapse; chaos does not (its noise never reaches grade >= 1).
    let inputs: Vec<f64> = (0..n)
        .map(|i| d_public * i as f64 / (n - 1) as f64)
        .collect();
    let byz: Vec<PartyId> = (0..t).map(PartyId).collect();

    let rf = run_one(
        fixed,
        &inputs,
        BudgetSplitEquivocator::new(n, byz.clone(), equal_split_schedule(t, 3)),
    );
    let re = run_one(
        early,
        &inputs,
        BudgetSplitEquivocator::new(n, byz.clone(), equal_split_schedule(t, 3)),
    );
    let s = spread(&re.honest_outputs());
    assert!(s <= 1.0);
    table.row(vec![
        "budget-split [1,1,1]".to_string(),
        format!("{d_public}"),
        rf.communication_rounds().to_string(),
        re.communication_rounds().to_string(),
        format!("{}", rf.communication_rounds() - re.communication_rounds()),
        format!("{s:.3}"),
    ]);

    let rf = run_one(
        fixed,
        &inputs,
        RealAaChaos::new(byz.clone(), 5, (0.0, d_public)),
    );
    let re = run_one(early, &inputs, RealAaChaos::new(byz, 5, (0.0, d_public)));
    let s = spread(&re.honest_outputs());
    assert!(s <= 1.0);
    table.row(vec![
        "chaos spam".to_string(),
        format!("{d_public}"),
        rf.communication_rounds().to_string(),
        re.communication_rounds().to_string(),
        format!("{}", rf.communication_rounds() - re.communication_rounds()),
        format!("{s:.3}"),
    ]);

    table.print();
    println!(
        "\nReading: without real interference the adaptive variant stops after two \
         iterations (one to collapse, one to observe the collapse) regardless of \
         the public bound; sustained equivocation postpones the observable \
         collapse by roughly its schedule length. TreeAA still needs the fixed \
         variant: its two engine runs must start simultaneously at a public \
         round boundary."
    );
}
