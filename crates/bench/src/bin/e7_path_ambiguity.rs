//! **E7 — Figure 5: the one-edge path ambiguity and the `v_k` fallback.**
//!
//! `PathsFinder` only guarantees paths equal up to one trailing edge; a
//! party holding the shorter path can receive `closestInt(j) = k + 1` from
//! the second engine run and cannot know which neighbor extends its path —
//! so `TreeAA` outputs its own last vertex `v_k` instead.
//!
//! Divergent engine outputs require an adversary that keeps honest values
//! split through the *final* iteration. Against the gradecast engine that
//! costs one fresh Byzantine leader per attacked iteration (it is silenced
//! immediately); against the **halving engine** a single equivocator can
//! split every iteration for free — so this experiment runs `TreeAA` over
//! the halving engine with a persistent high/low equivocator, which is the
//! easiest way to drive the honest `j`s exactly one apart. It counts: runs
//! with diverged paths, runs where the `v_k` fallback fired, and safety
//! violations (which must be zero — the fallback is exactly what makes
//! Definition 2 hold in this case).

use std::sync::Arc;

use bench::Table;
use real_aa::PlainValueMsg;
use sim_net::{step_standalone, Inbox, Outbox, PartyId, Protocol, Received, RoundCtx};
use tree_aa::{check_tree_aa, EngineKind, InnerMsg, TreeAaConfig, TreeAaParty, TreeMsg};
use tree_model::{generate, VertexId};

fn main() {
    // A spider gives the root-path structure of Figure 5: several branches
    // below a shared root, so the "one past the end" position is genuinely
    // ambiguous for the shorter-path holder.
    let tree = Arc::new(generate::spider(3, 8));
    let (n, t) = (4usize, 1usize);
    let byz = 3usize;
    let cfg = TreeAaConfig::new(n, t, EngineKind::Halving, &tree).expect("valid");
    let r1 = cfg.phase1_rounds();
    let m = tree.vertex_count();

    let mut runs = 0usize;
    let mut diverged_paths = 0usize;
    let mut fallback_fired = 0usize;
    let mut violations = 0usize;

    for case in 0..m * 3 {
        // Honest inputs clustered on adjacent vertices (deep positions
        // included): the deepest holder's projection then sits at the very
        // end of its path, putting the agreed position right at the
        // boundary where the ambiguity bites.
        let inputs: Vec<VertexId> = (0..n)
            .map(|i| tree.vertices().nth((case / 3 + i.min(2)) % m).expect("ok"))
            .collect();

        // Manual drive so party state (found paths) stays inspectable.
        let mut parties: Vec<TreeAaParty> = (0..n)
            .map(|i| TreeAaParty::new(PartyId(i), cfg.clone(), Arc::clone(&tree), inputs[i]))
            .collect();
        let mut inboxes: Vec<Inbox<TreeMsg>> = vec![Inbox::empty(); n];
        for round in 1..=cfg.total_rounds() + 1 {
            let mut tentative: Vec<Outbox<TreeMsg>> = Vec::with_capacity(n);
            for (i, p) in parties.iter_mut().enumerate() {
                let inbox = std::mem::take(&mut inboxes[i]);
                tentative.push(step_standalone(p, PartyId(i), n, round, &inbox));
            }
            // Party 3 is Byzantine: replace its traffic with per-recipient
            // extreme equivocation (high to even ids, low to odd ids),
            // correctly tagged for the current phase and local iteration.
            let (phase, local) = if round <= r1 {
                (1u8, round)
            } else {
                (2u8, round - r1)
            };
            let mut byz_ctx: RoundCtx<TreeMsg> = RoundCtx::new(PartyId(byz), n);
            for to in 0..n {
                let value = if to % 2 == 0 { 1e9 } else { -1e9 };
                byz_ctx.send(
                    PartyId(to),
                    TreeMsg {
                        phase,
                        inner: InnerMsg::Plain(PlainValueMsg {
                            iter: local - 1,
                            value,
                        }),
                    },
                );
            }
            tentative[byz] = byz_ctx.into_outbox();
            let mut next: Vec<Vec<Received<TreeMsg>>> = vec![Vec::new(); n];
            for outbox in tentative {
                for env in outbox.envelopes() {
                    next[env.to.index()].push(Received {
                        from: env.from,
                        payload: env.payload,
                    });
                }
            }
            inboxes = next.into_iter().map(Inbox::from_messages).collect();
        }
        runs += 1;

        let honest: Vec<usize> = (0..n).filter(|&i| i != byz).collect();
        let paths: Vec<_> = honest
            .iter()
            .map(|&i| parties[i].found_path().expect("path set").clone())
            .collect();
        let lens: Vec<usize> = paths.iter().map(|p| p.len()).collect();
        let min_len = *lens.iter().min().expect("non-empty");
        let max_len = *lens.iter().max().expect("non-empty");
        if max_len > min_len {
            diverged_paths += 1;
        }
        let outputs: Vec<VertexId> = honest
            .iter()
            .map(|&i| parties[i].output().expect("terminated"))
            .collect();
        // Fallback detection: some shorter-path party output its own last
        // vertex while a longer-path party output beyond it.
        if max_len > min_len {
            let mut short_at_end = false;
            let mut long_beyond = false;
            for (k, p) in paths.iter().enumerate() {
                let (_, last) = p.endpoints();
                if p.len() == min_len && outputs[k] == last {
                    short_at_end = true;
                }
                if p.len() == max_len && p.position(outputs[k]) == Some(max_len - 1) {
                    long_beyond = true;
                }
            }
            if short_at_end && long_beyond {
                fallback_fired += 1;
            }
        }
        let honest_inputs: Vec<VertexId> = honest.iter().map(|&i| inputs[i]).collect();
        if check_tree_aa(&tree, &honest_inputs, &outputs).is_err() {
            violations += 1;
        }
    }

    println!("## E7: Figure 5 path ambiguity under persistent equivocation\n");
    let mut table = Table::new(&[
        "runs",
        "paths diverged",
        "v_k fallback pattern",
        "safety violations",
    ]);
    table.row(vec![
        runs.to_string(),
        diverged_paths.to_string(),
        fallback_fired.to_string(),
        violations.to_string(),
    ]);
    table.print();
    assert_eq!(violations, 0, "Definition 2 must hold in every run");
    assert!(
        diverged_paths > 0,
        "expected some path divergence to exercise Figure 5"
    );
}
