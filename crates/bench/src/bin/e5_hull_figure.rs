//! **E5 — Figure 1: convex hulls on trees.**
//!
//! Reproduces the Figure 1 example (the hull of `{u1, u2, u3}` is
//! `{u1, …, u5}`) and then cross-validates the `O(|V|)` hull algorithm
//! against the definitional characterization (`w ∈ ⟨S⟩` iff `w` lies on a
//! path between two members of `S`) over randomized trees.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tree_model::{generate, Tree, VertexId};

fn main() {
    // The exact Figure 1 scenario.
    let tree = Tree::from_labeled_edges(
        ["u1", "u2", "u3", "u4", "u5", "w1", "w2"],
        [
            ("u1", "u4"),
            ("u4", "u5"),
            ("u5", "u2"),
            ("u4", "u3"),
            ("w1", "u5"),
            ("w2", "u1"),
        ],
    )
    .expect("valid tree");
    let s: Vec<VertexId> = ["u1", "u2", "u3"]
        .iter()
        .map(|l| tree.vertex(l).expect("present"))
        .collect();
    let hull = tree.convex_hull(&s);
    let mut labels: Vec<String> = hull.iter().map(|v| tree.label(v).to_string()).collect();
    labels.sort();
    println!("## E5: Figure 1 convex hull\n");
    println!("hull of {{u1, u2, u3}} = {{{}}}", labels.join(", "));
    assert_eq!(labels, ["u1", "u2", "u3", "u4", "u5"], "Figure 1 mismatch");
    println!("matches the paper's Figure 1: yes\n");

    // Randomized cross-validation of the hull law.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut checked = 0usize;
    for _ in 0..200 {
        let size = rng.gen_range(2..50);
        let t = generate::random_prufer(size, &mut rng);
        let k = rng.gen_range(1..=5usize);
        let s: Vec<VertexId> = (0..k)
            .map(|_| t.vertices().nth(rng.gen_range(0..size)).expect("ok"))
            .collect();
        let hull = t.convex_hull(&s);
        for w in t.vertices() {
            assert_eq!(
                hull.contains(w),
                t.hull_contains_naive(&s, w),
                "hull law violated"
            );
            checked += 1;
        }
    }
    println!("randomized hull-law checks: {checked} memberships verified, 0 mismatches");
}
