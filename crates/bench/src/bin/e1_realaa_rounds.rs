//! **E1 — Theorem 3: round complexity of `RealAA`.**
//!
//! Sweeps δ = D/ε and reports, per (n, t): the protocol's fixed round
//! count `3·R`, the paper's stated bound `⌈7·log₂δ/log₂log₂δ⌉ (+3)`, the
//! halving baseline's rounds, and the exact Fekete round lower bound —
//! then validates each configuration by running it against the
//! budget-split adversary and checking ε-agreement and validity.
//!
//! Expected shape: `RealAA` rounds grow like `log δ / log log δ`, visibly
//! flatter than the baseline's `log δ`, and sit between the lower bound
//! and the paper bound.

use bench::{spread, Table};
use lower_bound::round_lower_bound;
use real_aa::adversary::{equal_split_schedule, BudgetSplitEquivocator};
use real_aa::{halving_iterations, rounds_bound, RealAaConfig, RealAaParty};
use sim_net::{run_simulation, PartyId, SimConfig};

fn main() {
    for (n, t) in [(16usize, 5usize), (31, 10), (61, 20)] {
        println!("\n## E1: RealAA rounds vs delta (n = {n}, t = {t}, eps = 1)\n");
        let mut table = Table::new(&[
            "delta",
            "RealAA rounds (3R)",
            "paper bound",
            "halving rounds",
            "lower bound",
            "adv final spread",
            "eps ok",
        ]);
        for exp in [2u32, 4, 8, 12, 16, 20, 40, 100, 200] {
            let d = 2f64.powi(exp as i32);
            let cfg = RealAaConfig::new(n, t, 1.0, d).expect("valid");
            let byz: Vec<PartyId> = (0..t).map(PartyId).collect();
            let schedule = equal_split_schedule(t, cfg.iterations() as usize);
            let adv = BudgetSplitEquivocator::new(n, byz.clone(), schedule);
            let inputs: Vec<f64> = (0..n).map(|i| d * i as f64 / (n - 1) as f64).collect();
            let report = run_simulation(
                SimConfig {
                    n,
                    t,
                    max_rounds: cfg.rounds() + 5,
                },
                |id, _| RealAaParty::new(id, cfg, inputs[id.index()]),
                adv,
            )
            .expect("simulation completes");
            let outs = report.honest_outputs();
            let s = spread(&outs);
            let lo = inputs[t..].iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = inputs[t..]
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            let valid = outs.iter().all(|&o| o >= lo - 1e-9 && o <= hi + 1e-9);
            assert!(valid, "validity violated at delta = {d}");
            table.row(vec![
                format!("2^{exp}"),
                cfg.rounds().to_string(),
                rounds_bound(d, 1.0).to_string(),
                halving_iterations(d, 1.0).to_string(),
                round_lower_bound(d, n, t).to_string(),
                format!("{s:.3}"),
                (s <= 1.0).to_string(),
            ]);
        }
        table.print();
    }
}
