//! Crash-fault integration tests against real `treeaa serve` OS
//! processes: victims are SIGKILLed right after their `READY` line.
//!
//! * 1 of 4 killed (within the budget `t = 1`): the survivors keep
//!   retransmitting until the dead peer is declared, then terminate
//!   non-degraded with outputs that 1-agree inside the input hull.
//! * 2 of 4 killed (over budget): the survivors' silence deadline
//!   fires and they terminate `Degraded` with an over-budget evidence
//!   certificate.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdout, Command, Stdio};

use tree_model::VertexId;

const INPUT_LABELS: [&str; 4] = ["v0000", "v0003", "v0006", "v0008"];

/// One parsed `OUTCOME` line.
#[derive(Debug)]
struct Outcome {
    vertex: String,
    degraded: bool,
    over_budget: bool,
    retx: u64,
}

fn field<'a>(line: &'a str, key: &str) -> &'a str {
    line.split_whitespace()
        .find_map(|f| f.strip_prefix(key).and_then(|f| f.strip_prefix('=')))
        .unwrap_or_else(|| panic!("no field `{key}` in `{line}`"))
}

/// Spawns the 4-process deployment, waits until every node is READY,
/// SIGKILLs `kills`, and returns the survivors' outcomes (indexed by
/// party, `None` for victims).
fn deploy_and_kill(seed: u64, kills: &[usize]) -> Vec<Option<Outcome>> {
    let n = INPUT_LABELS.len();
    let mut children: Vec<Child> = Vec::new();
    let mut stdouts: Vec<BufReader<ChildStdout>> = Vec::new();
    for i in 0..n {
        let mut child = Command::new(env!("CARGO_BIN_EXE_treeaa"))
            .args([
                "serve",
                "--tree",
                "path9",
                "--inputs",
                &INPUT_LABELS.join(","),
                "--party-id",
                &i.to_string(),
                "--t",
                "1",
                "--seed",
                &seed.to_string(),
                "--bind",
                "127.0.0.1:0",
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn serve");
        stdouts.push(BufReader::new(child.stdout.take().expect("piped stdout")));
        children.push(child);
    }

    let mut line = String::new();
    let mut ports = Vec::new();
    for rd in &mut stdouts {
        line.clear();
        rd.read_line(&mut line).expect("PORT line");
        let port = line.trim().strip_prefix("PORT ").expect("PORT line");
        ports.push(format!("127.0.0.1:{port}"));
    }
    let peers = ports.join(",");
    for child in &mut children {
        let stdin = child.stdin.as_mut().expect("piped stdin");
        writeln!(stdin, "PEERS {peers}").expect("send peers");
    }
    for rd in &mut stdouts {
        line.clear();
        rd.read_line(&mut line).expect("READY line");
        assert_eq!(line.trim(), "READY", "unexpected: {line}");
    }
    // Every link is up and the protocol is starting — crash the victims.
    for &k in kills {
        children[k].kill().expect("SIGKILL victim");
    }

    let mut outcomes = Vec::new();
    for (i, rd) in stdouts.iter_mut().enumerate() {
        if kills.contains(&i) {
            outcomes.push(None);
            continue;
        }
        let outcome = loop {
            line.clear();
            assert!(
                rd.read_line(&mut line).expect("read") > 0,
                "party {i} exited without an OUTCOME line"
            );
            if line.starts_with("OUTCOME ") {
                break Outcome {
                    vertex: field(&line, "vertex").to_string(),
                    degraded: field(&line, "degraded").parse().unwrap(),
                    over_budget: field(&line, "over_budget").parse().unwrap(),
                    retx: field(&line, "retx").parse().unwrap(),
                };
            }
        };
        outcomes.push(Some(outcome));
        let status = children[i].wait().expect("wait");
        assert!(status.success(), "party {i} exited with {status}");
    }
    for &k in kills {
        let _ = children[k].wait();
    }
    outcomes
}

#[test]
fn one_crash_survivors_terminate_in_hull_via_retransmission() {
    let outcomes = deploy_and_kill(5, &[3]);
    let tree = tree_model::generate::path(9);
    let inputs: Vec<VertexId> = INPUT_LABELS
        .iter()
        .map(|l| tree.vertex(l).expect("input label"))
        .collect();
    let mut outputs = Vec::new();
    let mut total_retx = 0;
    for (i, o) in outcomes.iter().enumerate() {
        let Some(o) = o.as_ref() else { continue };
        assert!(!o.degraded, "party {i}: a single crash is within budget");
        assert!(!o.over_budget, "party {i}");
        outputs.push(tree.vertex(&o.vertex).expect("output label"));
        total_retx += o.retx;
    }
    assert_eq!(outputs.len(), 3);
    // The crash is benign, so the victim's input still bounds the hull.
    tree_aa::check_tree_aa(&tree, &inputs, &outputs)
        .expect("survivors must 1-agree inside the input hull");
    assert!(
        total_retx > 0,
        "survivors must have retransmitted to the dead peer"
    );
}

#[test]
fn two_crashes_exceed_the_budget_and_degrade_with_certificates() {
    let outcomes = deploy_and_kill(7, &[2, 3]);
    for (i, o) in outcomes.iter().enumerate() {
        let Some(o) = o.as_ref() else { continue };
        assert!(o.degraded, "party {i}: 2 silent parties > t = 1");
        assert!(
            o.over_budget,
            "party {i}: the certificate must implicate more parties than the budget"
        );
    }
}
