//! The crash-recovery e2e against real OS processes: `treeaa cluster
//! --supervise` SIGKILLs serve nodes mid-protocol, the supervisor
//! restarts them into `--recover` (WAL replay + rejoin through their
//! stable relay address), and the referee still sees in-hull agreement,
//! a passing differential gate, and a proto fingerprint that is
//! bit-identical to an unperturbed deployment.

use std::process::{Command, Output};

fn cluster(seed: u64, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_treeaa"))
        .args([
            "cluster",
            "--tree",
            "path9",
            "--inputs",
            "v0000,v0003,v0006,v0008",
            "--t",
            "1",
            "--seed",
            &seed.to_string(),
        ])
        .args(extra)
        .output()
        .expect("launch cluster")
}

fn fingerprint_line(out: &Output) -> String {
    let stdout = String::from_utf8_lossy(&out.stdout);
    stdout
        .lines()
        .find(|l| l.contains("proto fingerprint"))
        .unwrap_or_else(|| panic!("no fingerprint line in:\n{stdout}"))
        .to_string()
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// SIGKILL 1 of 4 nodes once the deployment is READY: the supervisor
/// must restart it with `--recover`, and the run must end exactly like
/// an unperturbed one — same outcomes, passing gate, and the identical
/// schedule-blind proto fingerprint.
#[test]
fn a_supervised_sigkill_recovers_and_passes_the_gate() {
    let killed = cluster(5, &["--supervise", "--gate", "--kill-after-ready", "2"]);
    assert_ok(&killed, "supervised kill run");
    let stderr = String::from_utf8_lossy(&killed.stderr);
    assert!(
        stderr.contains("restarting with --recover"),
        "the victim was never restarted:\n{stderr}"
    );
    let stdout = String::from_utf8_lossy(&killed.stdout);
    assert!(stdout.contains("gate reconciled"), "{stdout}");

    let clean = cluster(5, &["--supervise", "--gate"]);
    assert_ok(&clean, "clean supervised run");
    assert_eq!(
        fingerprint_line(&killed),
        fingerprint_line(&clean),
        "a crash-and-recovery must be invisible to the proto fingerprint"
    );
}

/// Two reruns of the same supervised kill deployment — fresh processes,
/// fresh ports, fresh WALs — print bit-identical fingerprints.
#[test]
fn supervised_recovery_fingerprints_are_bit_identical() {
    let first = cluster(11, &["--supervise", "--gate", "--kill-after-ready", "1"]);
    assert_ok(&first, "first kill run");
    let second = cluster(11, &["--supervise", "--gate", "--kill-after-ready", "1"]);
    assert_ok(&second, "second kill run");
    assert_eq!(fingerprint_line(&first), fingerprint_line(&second));
}

/// Killing 2 of 4 nodes exceeds the corruption budget `t = 1` — but a
/// supervised deployment restarts both victims, turning the permanent
/// crashes the budget fears into transient ones, so every node still
/// terminates non-degraded.
#[test]
fn an_over_budget_kill_set_recovers_under_supervision() {
    let out = cluster(7, &["--supervise", "--kill-after-ready", "1,3"]);
    assert_ok(&out, "double-kill run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("1 run(s) passed on 4 processes"),
        "{stdout}"
    );
}

/// A seeded chaos plan injected by the relays (resets, corruption,
/// stalls, blackouts) never costs correctness: the referee still sees
/// non-degraded, 1-agreeing, in-hull outcomes.
#[test]
fn a_chaos_cluster_still_agrees_in_hull() {
    let out = cluster(3, &["--chaos", "11"]);
    assert_ok(&out, "chaos run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("1 run(s) passed on 4 processes"),
        "{stdout}"
    );
}
