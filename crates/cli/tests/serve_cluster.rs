//! End-to-end multi-process deployment: the `treeaa cluster` launcher
//! spawns real `treeaa serve` OS processes on loopback, referees their
//! outcomes, and runs the differential trace gate against the
//! in-process reference simulator.

use std::process::Command;

fn treeaa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_treeaa"))
}

fn cluster_args(seed: u64, runs: u64) -> Vec<String> {
    [
        "cluster",
        "--tree",
        "path9",
        "--inputs",
        "v0000,v0003,v0006,v0008",
        "--t",
        "1",
        "--seed",
        &seed.to_string(),
        "--runs",
        &runs.to_string(),
        "--gate",
    ]
    .iter()
    .map(ToString::to_string)
    .collect()
}

/// n = 4 processes on ephemeral loopback ports: outputs agree inside
/// the input hull and the merged networked trace reconciles with the
/// reference event for event — across repeated deployments of the same
/// case (the load-driver path).
#[test]
fn cluster_of_four_processes_passes_the_differential_gate() {
    let out = treeaa()
        .args(cluster_args(5, 3))
        .output()
        .expect("launch cluster");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "cluster failed:\n{stdout}\n{stderr}");
    for run in 0..3 {
        assert!(
            stdout.contains(&format!("run {run}: gate reconciled ")),
            "run {run} missing a gate line:\n{stdout}"
        );
    }
    assert!(
        stdout.contains("3 run(s) passed on 4 processes"),
        "{stdout}"
    );
}

/// Two full deployments of the same seed — fresh processes, fresh
/// sockets — produce bit-identical referee output: same outcomes, same
/// reconciled-event counts.
#[test]
fn networked_deployments_are_bit_identical_across_reruns() {
    let run = || {
        let out = treeaa()
            .args(cluster_args(11, 1))
            .output()
            .expect("launch cluster");
        assert!(
            out.status.success(),
            "cluster failed:\n{}\n{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let first = run();
    let second = run();
    assert_eq!(
        String::from_utf8_lossy(&first),
        String::from_utf8_lossy(&second),
        "reruns of the same seed diverged"
    );
}

/// Mismatched configurations must be refused at the handshake, not
/// silently diverge: a cluster whose children disagree on the seed can
/// never form (checked here through the config-fingerprint error path
/// of a lone `serve` given the wrong peer count).
#[test]
fn serve_rejects_a_malformed_peer_vector() {
    let out = treeaa()
        .args([
            "serve",
            "--tree",
            "path9",
            "--inputs",
            "v0000,v0003,v0006,v0008",
            "--party-id",
            "0",
            "--peers",
            "127.0.0.1:1,127.0.0.1:2",
        ])
        .output()
        .expect("launch serve");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("expected 4 peer addresses"), "{stderr}");
}
