//! Thin shim over the `treeaa-cli` library (see `lib.rs` for everything).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match treeaa_cli::parse_args(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut stdout = std::io::stdout().lock();
    match treeaa_cli::execute(cmd, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
