//! The `treeaa` command-line tool: generate input-space trees, run the AA
//! protocols on them (with or without adversaries), and query the
//! lower-bound calculators — all from tree files in the plain-text format
//! of [`tree_model::parse_tree`].
//!
//! ```text
//! treeaa gen --family caterpillar --size 30 > map.tree
//! treeaa info --tree map.tree
//! treeaa run --tree map.tree --inputs v0003,v0007,v0012,v0020 --t 1 \
//!            --adversary chaos --seed 7
//! treeaa bounds --diameter 1000 --n 31 --t 10
//! ```
//!
//! Argument parsing and command execution live in this library crate so
//! they are unit-testable; `main.rs` is a thin shim.

#![warn(missing_docs)]
use std::collections::HashMap;
use std::sync::Arc;

use lower_bound::{fekete_k, round_lower_bound, theorem2_formula};
use rand::SeedableRng;
use sim_net::{run_simulation, CrashAdversary, PartyId, Passive, SelectiveOmission, SimConfig};
use tree_aa::adversary::TreeAaChaos;
use tree_aa::{
    check_tree_aa, EngineKind, NowakRybickiConfig, NowakRybickiParty, TreeAaConfig, TreeAaParty,
};
use tree_model::{generate, parse_tree, Tree, VertexId};

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `gen`: emit a generated tree (optionally as DOT).
    Gen {
        /// Family name (path, star, binary, caterpillar, spider, broom,
        /// random).
        family: String,
        /// Target size parameter.
        size: usize,
        /// Emit Graphviz DOT instead of the text format.
        dot: bool,
        /// Seed for the random family.
        seed: u64,
    },
    /// `info`: tree statistics and protocol round counts.
    Info {
        /// Path to a tree file.
        tree: String,
    },
    /// `run`: execute a protocol on a tree file.
    Run {
        /// Path to a tree file.
        tree: String,
        /// Comma-separated input vertex labels (one per party).
        inputs: String,
        /// Corruption bound.
        t: usize,
        /// `treeaa` or `baseline`.
        protocol: String,
        /// `gradecast` or `halving`.
        engine: String,
        /// `none`, `chaos`, `crash`, or `omission` (corrupts the last `t`
        /// parties).
        adversary: String,
        /// Adversary seed.
        seed: u64,
    },
    /// `bounds`: print lower bounds for the given parameters.
    Bounds {
        /// Input-space diameter.
        diameter: f64,
        /// Number of parties.
        n: usize,
        /// Corruption bound.
        t: usize,
    },
    /// `fuzz`: run the deterministic adversarial property fuzzer.
    Fuzz {
        /// Master seed of the case stream.
        seed: u64,
        /// Number of cases.
        cases: u64,
        /// Minimize failing cases before reporting them.
        minimize: bool,
        /// Overlay generated benign-fault plans (partitions, crash
        /// windows) and check the degradation contract.
        faults: bool,
        /// Directory for minimized repro files (empty disables saving).
        corpus: String,
    },
    /// `check`: exhaustively model-check a small instance (bounded
    /// schedule enumeration × Byzantine message-lattice assignments).
    Check {
        /// Number of parties (`n > 3t`, `n <= 5`).
        n: usize,
        /// Corruption bound (defaults to `(n - 1) / 3`).
        t: usize,
        /// Tree spec: `<family><size>` (e.g. `path4`, `star5`) or a tree
        /// file path.
        tree: String,
        /// `tree-aa` or `real-aa`.
        protocol: String,
        /// Enumerated delivery decisions per execution.
        depth: usize,
        /// Total execution budget across all assignments.
        max_runs: usize,
        /// File for the counterexample trace JSON if a check fails
        /// (empty disables saving).
        out: String,
    },
    /// `trace`: record a deterministic flight-recorder trace of a named
    /// canonical scenario.
    Trace {
        /// Scenario name (see [`aa_fuzz::scenario_names`]).
        scenario: String,
        /// Adversary seed.
        seed: u64,
        /// Output file (empty writes the JSON to stdout).
        out: String,
    },
    /// `serve`: run one party of a real networked deployment — a TCP
    /// process speaking the MAC-authenticated wire protocol of the
    /// `net` crate.
    Serve {
        /// Tree spec: `<family><size>` (e.g. `path9`) or a tree file.
        tree: String,
        /// Comma-separated input vertex labels (one per party).
        inputs: String,
        /// This process's party index in `0..n`.
        party_id: usize,
        /// Corruption bound.
        t: usize,
        /// Seed of the shared content-keyed delay schedule.
        seed: u64,
        /// Delay floor / conservative lookahead.
        min_delay: f64,
        /// Shared MAC secret (all processes of a deployment must agree).
        secret: u64,
        /// Listen address (`127.0.0.1:0` picks an ephemeral port).
        bind: String,
        /// Comma-separated peer addresses, index-aligned with party ids;
        /// empty reads a `PEERS a0,...,an-1` line from stdin after the
        /// `PORT` line is printed.
        peers: String,
        /// File for this node's canonical trace JSON (empty disables).
        trace_out: String,
        /// Write-ahead log file recording every protocol-relevant state
        /// transition (empty disables durability).
        wal: String,
        /// Replay the WAL at `--wal` before going live: the node
        /// re-executes its logged prefix, re-handshakes, and rejoins the
        /// protocol mid-run. A missing or empty WAL falls back to a
        /// fresh start, so a supervisor can pass this unconditionally.
        recover: bool,
        /// Override of the reconnect policy's dial-attempt budget.
        reconnect_attempts: Option<u32>,
        /// Override of the reconnect policy's dead-peer deadline, in
        /// milliseconds of continuous disconnection.
        dead_after_ms: Option<u64>,
    },
    /// `cluster`: launch `n` local `serve` processes on loopback,
    /// referee their outcomes, and optionally run the differential
    /// trace gate against the in-process reference simulator.
    Cluster {
        /// Tree spec: `<family><size>` (e.g. `path9`) or a tree file.
        tree: String,
        /// Comma-separated input vertex labels (one per party).
        inputs: String,
        /// Corruption bound.
        t: usize,
        /// Seed of the shared content-keyed delay schedule.
        seed: u64,
        /// Delay floor / conservative lookahead.
        min_delay: f64,
        /// Shared MAC secret.
        secret: u64,
        /// Number of repeated runs (load driver).
        runs: u64,
        /// Check every run's merged trace against the in-process
        /// reference, event for event.
        gate: bool,
        /// Supervise the children: run every node durably behind a
        /// stable supervisor-owned relay, restart crashed nodes into
        /// `--recover` mode with capped backoff, and watchdog the whole
        /// deployment against silent stalls.
        supervise: bool,
        /// Seed of a chaos fault plan injected by the relays (resets,
        /// corruption, stalls, transient blackouts). Implies relays;
        /// incompatible with `--gate` (chaos legitimately shifts the
        /// retransmission schedule).
        chaos: Option<u64>,
        /// Comma-separated party indices to SIGKILL once every node has
        /// printed `READY` (the supervised crash-recovery e2e); empty
        /// kills nobody. Requires `--supervise`.
        kill_after_ready: String,
        /// Directory for the children's WALs in supervised mode (empty
        /// uses a per-run scratch directory).
        wal_dir: String,
    },
    /// `bench`: measure bundled many-instance AA throughput against
    /// independent single-instance runs, with a differential output gate.
    Bench {
        /// Number of in-flight AA instances sharing one gradecast wire.
        bundle: usize,
        /// Number of parties.
        n: usize,
        /// Corruption bound.
        t: usize,
        /// `sim` (in-process synchronous engine) or `tcp` (real loopback
        /// deployment through the `net` crate).
        transport: String,
        /// Cap on independent baseline runs actually timed; the baseline
        /// total is linearly extrapolated when `bundle` exceeds it.
        baseline_cap: usize,
        /// Minimum required bundled-vs-independent speedup; exits
        /// non-zero below it (0 disables the gate).
        min_speedup: f64,
        /// JSON report file (empty writes the JSON to stdout).
        out: String,
    },
    /// `help` or no/unknown arguments.
    Help,
}

/// Parses `--key value` style options after the subcommand.
fn options(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(k) = it.next() {
        let key = k
            .strip_prefix("--")
            .ok_or_else(|| format!("expected an option starting with --, got `{k}`"))?;
        if key == "dot"
            || key == "minimize"
            || key == "faults"
            || key == "gate"
            || key == "recover"
            || key == "supervise"
        {
            map.insert(key.to_string(), "true".to_string());
            continue;
        }
        let v = it
            .next()
            .ok_or_else(|| format!("option --{key} needs a value"))?;
        map.insert(key.to_string(), v.clone());
    }
    Ok(map)
}

fn req<'a>(opts: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required option --{key}"))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: `{s}`"))
}

/// Parses a full argument vector (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, missing options
/// or malformed values.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let opts = options(&args[1..])?;
    match cmd.as_str() {
        "gen" => Ok(Command::Gen {
            family: req(&opts, "family")?.to_string(),
            size: parse_num(req(&opts, "size")?, "size")?,
            dot: opts.contains_key("dot"),
            seed: opts.get("seed").map_or(Ok(0), |s| parse_num(s, "seed"))?,
        }),
        "info" => Ok(Command::Info {
            tree: req(&opts, "tree")?.to_string(),
        }),
        "run" => Ok(Command::Run {
            tree: req(&opts, "tree")?.to_string(),
            inputs: req(&opts, "inputs")?.to_string(),
            t: opts.get("t").map_or(Ok(1), |s| parse_num(s, "t"))?,
            protocol: opts
                .get("protocol")
                .cloned()
                .unwrap_or_else(|| "treeaa".into()),
            engine: opts
                .get("engine")
                .cloned()
                .unwrap_or_else(|| "gradecast".into()),
            adversary: opts
                .get("adversary")
                .cloned()
                .unwrap_or_else(|| "none".into()),
            seed: opts.get("seed").map_or(Ok(0), |s| parse_num(s, "seed"))?,
        }),
        "bounds" => Ok(Command::Bounds {
            diameter: parse_num(req(&opts, "diameter")?, "diameter")?,
            n: parse_num(req(&opts, "n")?, "n")?,
            t: parse_num(req(&opts, "t")?, "t")?,
        }),
        "fuzz" => Ok(Command::Fuzz {
            seed: opts.get("seed").map_or(Ok(0), |s| parse_num(s, "seed"))?,
            cases: opts
                .get("cases")
                .map_or(Ok(100), |s| parse_num(s, "cases"))?,
            minimize: opts.contains_key("minimize"),
            faults: opts.contains_key("faults"),
            corpus: opts.get("corpus").cloned().unwrap_or_default(),
        }),
        "check" => {
            let n: usize = parse_num(req(&opts, "n")?, "n")?;
            Ok(Command::Check {
                n,
                t: opts
                    .get("t")
                    .map_or(Ok(n.saturating_sub(1) / 3), |s| parse_num(s, "t"))?,
                tree: req(&opts, "tree")?.to_string(),
                protocol: opts
                    .get("protocol")
                    .cloned()
                    .unwrap_or_else(|| "tree-aa".into()),
                depth: opts.get("depth").map_or(Ok(3), |s| parse_num(s, "depth"))?,
                max_runs: opts
                    .get("max-runs")
                    .map_or(Ok(50_000), |s| parse_num(s, "max-runs"))?,
                out: opts.get("out").cloned().unwrap_or_default(),
            })
        }
        "serve" => Ok(Command::Serve {
            tree: req(&opts, "tree")?.to_string(),
            inputs: req(&opts, "inputs")?.to_string(),
            party_id: parse_num(req(&opts, "party-id")?, "party-id")?,
            t: opts.get("t").map_or(Ok(1), |s| parse_num(s, "t"))?,
            seed: opts.get("seed").map_or(Ok(0), |s| parse_num(s, "seed"))?,
            min_delay: opts
                .get("min-delay")
                .map_or(Ok(0.5), |s| parse_num(s, "min-delay"))?,
            secret: opts
                .get("secret")
                .map_or(Ok(0), |s| parse_num(s, "secret"))?,
            bind: opts
                .get("bind")
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:0".into()),
            peers: opts.get("peers").cloned().unwrap_or_default(),
            trace_out: opts.get("trace-out").cloned().unwrap_or_default(),
            wal: opts.get("wal").cloned().unwrap_or_default(),
            recover: opts.contains_key("recover"),
            reconnect_attempts: opts
                .get("reconnect-attempts")
                .map(|s| parse_num(s, "reconnect-attempts"))
                .transpose()?,
            dead_after_ms: opts
                .get("dead-after-ms")
                .map(|s| parse_num(s, "dead-after-ms"))
                .transpose()?,
        }),
        "cluster" => Ok(Command::Cluster {
            tree: req(&opts, "tree")?.to_string(),
            inputs: req(&opts, "inputs")?.to_string(),
            t: opts.get("t").map_or(Ok(1), |s| parse_num(s, "t"))?,
            seed: opts.get("seed").map_or(Ok(0), |s| parse_num(s, "seed"))?,
            min_delay: opts
                .get("min-delay")
                .map_or(Ok(0.5), |s| parse_num(s, "min-delay"))?,
            secret: opts
                .get("secret")
                .map_or(Ok(0), |s| parse_num(s, "secret"))?,
            runs: opts.get("runs").map_or(Ok(1), |s| parse_num(s, "runs"))?,
            gate: opts.contains_key("gate"),
            supervise: opts.contains_key("supervise"),
            chaos: opts
                .get("chaos")
                .map(|s| parse_num(s, "chaos"))
                .transpose()?,
            kill_after_ready: opts.get("kill-after-ready").cloned().unwrap_or_default(),
            wal_dir: opts.get("wal-dir").cloned().unwrap_or_default(),
        }),
        "bench" => Ok(Command::Bench {
            bundle: parse_num(req(&opts, "bundle")?, "bundle")?,
            n: opts.get("n").map_or(Ok(4), |s| parse_num(s, "n"))?,
            t: opts.get("t").map_or(Ok(1), |s| parse_num(s, "t"))?,
            transport: opts
                .get("transport")
                .cloned()
                .unwrap_or_else(|| "sim".into()),
            baseline_cap: opts
                .get("baseline-cap")
                .map_or(Ok(64), |s| parse_num(s, "baseline-cap"))?,
            min_speedup: opts
                .get("min-speedup")
                .map_or(Ok(0.0), |s| parse_num(s, "min-speedup"))?,
            out: opts.get("out").cloned().unwrap_or_default(),
        }),
        "trace" => Ok(Command::Trace {
            scenario: req(&opts, "scenario")?.to_string(),
            seed: opts.get("seed").map_or(Ok(0), |s| parse_num(s, "seed"))?,
            out: opts.get("out").cloned().unwrap_or_default(),
        }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown command `{other}`; see `treeaa help`")),
    }
}

/// Usage text.
pub const USAGE: &str = "\
treeaa — Byzantine approximate agreement on trees (PODC 2025 reproduction)

USAGE:
  treeaa gen    --family <path|star|binary|caterpillar|spider|broom|random>
                --size <K> [--seed <S>] [--dot]
  treeaa info   --tree <file>
  treeaa run    --tree <file> --inputs <l1,l2,...> [--t <T>]
                [--protocol treeaa|baseline] [--engine gradecast|gradecast-batched|halving]
                [--adversary none|chaos|crash|omission] [--seed <S>]
  treeaa bounds --diameter <D> --n <N> --t <T>
  treeaa fuzz   [--seed <S>] [--cases <K>] [--minimize] [--faults]
                [--corpus <dir>]
  treeaa check  --n <N> --tree <familyK|file> [--t <T>]
                [--protocol tree-aa|real-aa] [--depth <D>]
                [--max-runs <K>] [--out <file>]
  treeaa trace  --scenario <name> [--seed <S>] [--out <file>]
  treeaa bench  --bundle <K> [--n <N>] [--t <T>] [--transport sim|tcp]
                [--baseline-cap <C>] [--min-speedup <X>] [--out <file>]
  treeaa serve  --tree <familyK|file> --inputs <l1,l2,...> --party-id <I>
                [--t <T>] [--seed <S>] [--min-delay <F>] [--secret <K>]
                [--bind <addr:port>] [--peers <a0,a1,...>]
                [--trace-out <file>] [--wal <file>] [--recover]
                [--reconnect-attempts <K>] [--dead-after-ms <MS>]
  treeaa cluster --tree <familyK|file> --inputs <l1,l2,...> [--t <T>]
                [--seed <S>] [--min-delay <F>] [--secret <K>]
                [--runs <R>] [--gate] [--supervise] [--chaos <S>]
                [--kill-after-ready <i,j,...>] [--wal-dir <dir>]

`run` uses one party per input label; with an adversary, the *last* t
parties are corrupted and their input labels are ignored.

`fuzz` runs K generated cases (random tree, inputs and adversary; all a
pure function of the seed) through TreeAA, the baseline and RealAA,
checking determinism, the round bound, validity and agreement. With
--minimize, failing cases are shrunk before reporting; with --corpus,
minimized repros are written there as JSON for `cargo test` replay.
With --faults, each case is additionally overlaid with a deterministic
benign-fault plan (healing partitions, crash/recovery windows, and
occasional over-budget crash sets), and the degradation contract is
checked: transient faults still terminate within the relaxed round
bound, and over-budget fault sets must yield `Degraded` outcomes with
checkable evidence certificates. Identical seed and case count give
bit-identical output. Exits non-zero if any case fails.

`check` exhaustively model-checks one small instance (n <= 5, trees of
<= 7 vertices): every Byzantine value-assignment from a finite message
lattice x every asynchronous delivery schedule up to --depth enumerated
decisions, with sleep-set and visited-state pruning. Every completed
execution is checked for validity, convex-hull containment,
1-agreement (or eps-agreement for real-aa), the termination bound and
the degradation contract, and a canonical run is cross-checked against
the lockstep synchronous simulators. --tree takes a generated family
with a trailing size (`path4`, `star5`) or a tree file. Output is
bit-identical across reruns; on failure the minimized counterexample
is printed and, with --out, its replayable trace JSON is saved. Exits
non-zero on a violation.

`trace` runs a named canonical scenario (path-honest, star-crash,
caterpillar-equivocate, broom-realaa-equivocate, path-baseline-flaky,
star-halving-honest, partition-heal, crash-recovery) under the
deterministic flight recorder and emits
the canonical trace JSON — every round, send, delivery and protocol
decision. The trace is byte-identical across step modes and runs, so
`(scenario, seed)` reproduces the file exactly.

`bench` measures amortized many-instance throughput: one run of the
bundled party (--bundle K instances sharing each gradecast round's
struct-of-arrays wire) against K independent single-instance runs on
the same inputs. --transport sim times the in-process synchronous
engine (CPU-bound amortization); --transport tcp times real loopback
deployments through the `net` crate — n MAC-authenticated TCP
processes per run — where each independent instance also pays its own
handshakes, round pacing, and per-message syscalls, the costs bundling
amortizes. At most --baseline-cap independent runs are timed and the
baseline total is linearly extrapolated beyond that (the per-run cost
is constant). Every timed independent run's outputs must be
bit-identical to the matching bundled instance — any divergence is an
error, so the bench doubles as a differential gate. Emits a JSON
report (agreements/sec for both sides and the speedup); with
--min-speedup X, exits non-zero if the speedup falls below X.

`serve` runs one party of a real multi-process deployment: it binds a
TCP listener, prints `PORT <p>`, learns the full index-aligned address
vector from --peers or from a `PEERS a0,...,an-1` stdin line, completes
the MAC-authenticated handshakes, prints `READY`, executes the async
tree-AA protocol under conservative virtual-time synchronisation, and
prints one final machine-readable `OUTCOME` line. All processes of a
deployment must be launched with identical --tree/--inputs/--t/--seed/
--min-delay (a fingerprint in the handshake rejects mismatches) and the
same --secret. With --wal the node appends every protocol-relevant
state transition to a checksummed write-ahead log; with --recover it
first replays that log (shaving any torn tail a crash left behind),
re-handshakes under the same config fingerprint, and rejoins the
protocol exactly where it died — recovery is invisible to the
differential gate. --reconnect-attempts and --dead-after-ms loosen the
reconnect policy so peers sit out a supervised restart.

`cluster` is the local launcher and referee: it spawns n `serve`
processes on 127.0.0.1 ephemeral ports (n = number of input labels),
wires them up over the PORT/PEERS protocol, waits for the outcomes, and
checks 1-agreement inside the input hull. With --gate it additionally
runs the in-process reference simulator on the same case, demands that
the merged networked trace reconciles with the reference trace event
for event — the differential gate — and prints the schedule-blind
`proto fingerprint` of the merged trace. --runs repeats the whole
deployment as a load driver; every run must pass. Exits non-zero on any
disagreement, degradation, or gate divergence.

With --supervise every child runs durably (a WAL under --wal-dir)
behind a stable supervisor-owned relay; a child that exits before its
OUTCOME is restarted with --recover under capped backoff (at most 3
restarts), its relay is retargeted to the new incarnation, and a
liveness watchdog turns a silent stall into a diagnostic dump and a
non-zero exit instead of a hang. --kill-after-ready i,j SIGKILLs those
children once the whole deployment is READY — the crash-recovery e2e.
--chaos S drives the relays with the seeded fault plan S (connection
resets, byte corruption, latency stalls, transient blackouts);
correctness is still refereed, but --gate is refused because chaos
legitimately shifts the retransmission schedule.
";

fn build_family(family: &str, size: usize, seed: u64) -> Result<Tree, String> {
    if size == 0 {
        return Err("size must be positive".into());
    }
    Ok(match family {
        "path" => generate::path(size),
        "star" => generate::star(size),
        "binary" => generate::balanced_kary(2, (size.max(2) as f64).log2().floor() as u32),
        "caterpillar" => generate::caterpillar(size.div_ceil(3).max(1), 2),
        "spider" => generate::spider(4, size.div_ceil(4).max(1)),
        "broom" => generate::broom(size.div_ceil(2).max(1), size / 2),
        "random" => {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            generate::random_prufer(size, &mut rng)
        }
        other => return Err(format!("unknown family `{other}`")),
    })
}

/// Resolves a `check` tree spec: a family name with a trailing size
/// (`path4`, `star5`) or a path to a tree file.
fn build_tree_spec(spec: &str) -> Result<Tree, String> {
    let digits = spec.len() - spec.chars().rev().take_while(char::is_ascii_digit).count();
    let (family, size) = spec.split_at(digits);
    if !family.is_empty() && !size.is_empty() {
        if let Ok(tree) = build_family(family, size.parse().map_err(|_| "bad size")?, 0) {
            return Ok(tree);
        }
    }
    let text = std::fs::read_to_string(spec)
        .map_err(|e| format!("`{spec}` is neither a tree family spec nor a readable file: {e}"))?;
    parse_tree(&text).map_err(|e| e.to_string())
}

/// Builds the fully pinned networked-execution case shared by `serve`
/// processes, the `cluster` launcher, and the in-process reference run.
/// Every process of a deployment derives the same case (and thus the
/// same handshake fingerprint) from the same arguments.
fn build_gate_case(
    tree_spec: &str,
    inputs: &str,
    t: usize,
    seed: u64,
    min_delay: f64,
) -> Result<net::GateCase, String> {
    let tree = build_tree_spec(tree_spec)?;
    let input_ids: Vec<VertexId> = inputs
        .split(',')
        .map(str::trim)
        .map(|l| {
            tree.vertex(l)
                .ok_or_else(|| format!("unknown vertex label `{l}`"))
        })
        .collect::<Result<_, _>>()?;
    if !(min_delay > 0.0 && min_delay <= 1.0) {
        return Err(format!("--min-delay must be in (0, 1], got {min_delay}"));
    }
    let case = net::GateCase {
        tree: Arc::new(tree),
        inputs: input_ids,
        t,
        seed,
        min_delay,
        label: format!("serve-{seed}"),
    };
    case.protocol_config()?;
    Ok(case)
}

/// Parses the comma-separated, index-aligned peer address vector.
fn parse_peer_addrs(list: &str, n: usize) -> Result<Vec<std::net::SocketAddr>, String> {
    let addrs: Vec<std::net::SocketAddr> = list
        .split(',')
        .map(str::trim)
        .map(|a| {
            a.parse()
                .map_err(|e| format!("bad peer address `{a}`: {e}"))
        })
        .collect::<Result<_, _>>()?;
    if addrs.len() != n {
        return Err(format!(
            "expected {n} peer addresses (one per party), got {}",
            addrs.len()
        ));
    }
    Ok(addrs)
}

/// One parsed `OUTCOME` line printed by a `serve` process.
#[derive(Debug)]
struct ServeOutcome {
    party: usize,
    vertex: String,
    degraded: bool,
    over_budget: bool,
    retx: u64,
}

fn parse_outcome_line(line: &str) -> Result<ServeOutcome, String> {
    let rest = line
        .trim()
        .strip_prefix("OUTCOME ")
        .ok_or_else(|| format!("not an OUTCOME line: `{line}`"))?;
    let mut o = ServeOutcome {
        party: usize::MAX,
        vertex: String::new(),
        degraded: false,
        over_budget: false,
        retx: 0,
    };
    for field in rest.split_whitespace() {
        let (k, v) = field
            .split_once('=')
            .ok_or_else(|| format!("malformed OUTCOME field `{field}`"))?;
        match k {
            "party" => o.party = parse_num(v, "party")?,
            "vertex" => o.vertex = v.to_string(),
            "degraded" => o.degraded = parse_num(v, "degraded")?,
            "over_budget" => o.over_budget = parse_num(v, "over_budget")?,
            "retx" => o.retx = parse_num(v, "retx")?,
            _ => {}
        }
    }
    if o.party == usize::MAX || o.vertex.is_empty() {
        return Err(format!("incomplete OUTCOME line: `{line}`"));
    }
    Ok(o)
}

/// Everything needed to launch one `serve` child of a cluster run.
struct ClusterSpec<'a> {
    exe: &'a std::path::Path,
    tree: &'a str,
    inputs: &'a str,
    t: usize,
    seed: u64,
    min_delay: f64,
    secret: u64,
}

/// Per-incarnation launch parameters of one `serve` child.
#[derive(Default)]
struct ChildLaunch<'a> {
    /// `--peers` to pass directly (None uses the PORT/PEERS protocol).
    peers: Option<&'a str>,
    /// `--trace-out` file.
    trace_file: Option<&'a std::path::Path>,
    /// `--wal` file and whether to pass `--recover`.
    wal: Option<(&'a std::path::Path, bool)>,
    /// `--reconnect-attempts` / `--dead-after-ms` overrides.
    reconnect: Option<(u32, u64)>,
}

/// Spawns one `serve` child with piped stdin/stdout.
fn spawn_serve_child(
    spec: &ClusterSpec<'_>,
    i: usize,
    launch: &ChildLaunch<'_>,
) -> Result<(std::process::Child, std::process::ChildStdout), String> {
    use std::process::Stdio;
    let mut cmd = std::process::Command::new(spec.exe);
    cmd.arg("serve")
        .args(["--tree", spec.tree])
        .args(["--inputs", spec.inputs])
        .args(["--party-id", &i.to_string()])
        .args(["--t", &spec.t.to_string()])
        .args(["--seed", &spec.seed.to_string()])
        .args(["--min-delay", &spec.min_delay.to_string()])
        .args(["--secret", &spec.secret.to_string()])
        .args(["--bind", "127.0.0.1:0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped());
    if let Some(peers) = launch.peers {
        cmd.args(["--peers", peers]);
    }
    if let Some(file) = launch.trace_file {
        cmd.args(["--trace-out", &file.to_string_lossy()]);
    }
    if let Some((wal, recover)) = launch.wal {
        cmd.args(["--wal", &wal.to_string_lossy()]);
        if recover {
            cmd.arg("--recover");
        }
    }
    if let Some((attempts, dead_after)) = launch.reconnect {
        cmd.args(["--reconnect-attempts", &attempts.to_string()])
            .args(["--dead-after-ms", &dead_after.to_string()]);
    }
    let mut child = cmd.spawn().map_err(|e| format!("party {i}: {e}"))?;
    let stdout = child.stdout.take().expect("piped stdout");
    Ok((child, stdout))
}

/// Launches `n` `serve` processes on loopback, wires them over the
/// PORT/PEERS protocol, and collects their outcomes (and traces, when
/// `trace_files` names one file per party).
fn run_cluster_once(
    spec: &ClusterSpec<'_>,
    n: usize,
    trace_files: Option<&[std::path::PathBuf]>,
) -> Result<Vec<ServeOutcome>, String> {
    use std::io::{BufRead, BufReader, Write};
    use std::process::Child;

    let mut children: Vec<Child> = Vec::with_capacity(n);
    let mut stdouts = Vec::with_capacity(n);
    let spawn_err = |i: usize, e: &dyn std::fmt::Display| format!("party {i}: {e}");
    for i in 0..n {
        let launch = ChildLaunch {
            trace_file: trace_files.map(|files| files[i].as_path()),
            ..ChildLaunch::default()
        };
        let (child, stdout) = spawn_serve_child(spec, i, &launch)?;
        stdouts.push(BufReader::new(stdout));
        children.push(child);
    }
    // Kill everything on any error so a partial deployment can't linger.
    let result = (|| {
        let mut ports = Vec::with_capacity(n);
        for (i, rd) in stdouts.iter_mut().enumerate() {
            let mut line = String::new();
            rd.read_line(&mut line).map_err(|e| spawn_err(i, &e))?;
            let port = line
                .trim()
                .strip_prefix("PORT ")
                .ok_or_else(|| format!("party {i}: expected a PORT line, got `{line}`"))?;
            ports.push(format!("127.0.0.1:{port}"));
        }
        let peers = ports.join(",");
        for (i, child) in children.iter_mut().enumerate() {
            let stdin = child.stdin.as_mut().expect("piped stdin");
            writeln!(stdin, "PEERS {peers}").map_err(|e| spawn_err(i, &e))?;
        }
        let mut outcomes = Vec::with_capacity(n);
        for (i, rd) in stdouts.iter_mut().enumerate() {
            loop {
                let mut line = String::new();
                if rd.read_line(&mut line).map_err(|e| spawn_err(i, &e))? == 0 {
                    // EOF before an OUTCOME: reap the child right here
                    // (no zombie) and report how it actually died.
                    let status = children[i].wait().map_err(|e| spawn_err(i, &e))?;
                    return Err(format!(
                        "party {i}: exited with {status} before an OUTCOME line"
                    ));
                }
                if line.starts_with("OUTCOME ") {
                    outcomes.push(parse_outcome_line(&line)?);
                    break;
                }
            }
        }
        for (i, child) in children.iter_mut().enumerate() {
            let status = child.wait().map_err(|e| spawn_err(i, &e))?;
            if !status.success() {
                return Err(format!("party {i}: exited with {status}"));
            }
        }
        outcomes.sort_by_key(|o| o.party);
        Ok(outcomes)
    })();
    if result.is_err() {
        for child in &mut children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
    result
}

/// One stdout event from a supervised child.
enum ChildEvent {
    Line(String),
    Eof,
}

/// Streams one incarnation's stdout into the supervisor's event queue.
/// Each incarnation gets its own reader thread; the thread dies with
/// the pipe, so per-party events stay ordered (…lines, then Eof).
fn spawn_stdout_reader(
    i: usize,
    stdout: std::process::ChildStdout,
    tx: std::sync::mpsc::Sender<(usize, ChildEvent)>,
) {
    use std::io::{BufRead, BufReader};
    std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if tx.send((i, ChildEvent::Line(line))).is_err() {
                return;
            }
        }
        let _ = tx.send((i, ChildEvent::Eof));
    });
}

/// Supervision state of one child slot (across incarnations).
struct Supervised {
    child: Option<std::process::Child>,
    port: Option<u16>,
    ready: bool,
    outcome: Option<ServeOutcome>,
    reaped: bool,
    restarts: u32,
    last_line: String,
}

/// Restarts a crashed child are capped at this many per slot.
const MAX_RESTARTS: u32 = 3;

/// No event from any child for this long earns a diagnostic dump; for
/// twice this long, the supervisor kills the deployment and errors out
/// instead of hanging.
const WATCHDOG: std::time::Duration = std::time::Duration::from_secs(30);

/// The supervised (and/or chaos-injected) cluster runner.
///
/// Every child is fronted by a supervisor-owned relay with a *stable*
/// address: the PEERS vector names the relays, so when a crashed child
/// restarts on a fresh ephemeral port (binding the old port would race
/// lingering TIME_WAIT sockets), the supervisor simply retargets its
/// relay and the peers' reconnect dials reach the new incarnation.
/// Children run durably (a WAL each under `wal_dir`) and restarts pass
/// `--recover`, so a restarted node replays its prefix and rejoins
/// mid-protocol. With `chaos = Some(seed)` the same relays also inject
/// the seeded fault plan.
fn run_cluster_supervised(
    spec: &ClusterSpec<'_>,
    n: usize,
    trace_files: Option<&[std::path::PathBuf]>,
    wal_dir: &std::path::Path,
    chaos: Option<u64>,
    kills: &[usize],
    supervise: bool,
) -> Result<Vec<ServeOutcome>, String> {
    use std::io::Write;
    use std::sync::mpsc;

    // Chaos needs many dial attempts (relay resets are routine) but a
    // dead-peer deadline well below the node's wall cap: a peer that
    // exits just as a reset eats its final Done announcement would
    // otherwise be waited on until the wall timeout. Plain supervision
    // needs the opposite — few retries, but a deadline long enough to
    // sit out a capped-backoff restart plus a WAL replay.
    let reconnect = if chaos.is_some() {
        (200u32, 15_000u64)
    } else {
        (60u32, 20_000u64)
    };
    let max_restarts = if supervise { MAX_RESTARTS } else { 0 };
    let wal_file = |i: usize| wal_dir.join(format!("node{i}.wal"));

    let (tx, rx) = mpsc::channel::<(usize, ChildEvent)>();
    let mut slots: Vec<Supervised> = Vec::with_capacity(n);
    for i in 0..n {
        let wal = wal_file(i);
        let launch = ChildLaunch {
            trace_file: trace_files.map(|files| files[i].as_path()),
            wal: Some((&wal, false)),
            reconnect: Some(reconnect),
            ..ChildLaunch::default()
        };
        let (child, stdout) = spawn_serve_child(spec, i, &launch)?;
        spawn_stdout_reader(i, stdout, tx.clone());
        slots.push(Supervised {
            child: Some(child),
            port: None,
            ready: false,
            outcome: None,
            reaped: false,
            restarts: 0,
            last_line: String::new(),
        });
    }

    let mut proxies: Vec<net::ChaosProxy> = Vec::new();
    let mut peer_list = String::new();
    let mut kills_fired = kills.is_empty();
    let mut idle_strikes = 0u32;

    let dump = |slots: &[Supervised], note: &str| {
        eprintln!("supervisor: {note}");
        for (i, s) in slots.iter().enumerate() {
            eprintln!(
                "supervisor:   party {i}: port={:?} ready={} outcome={} reaped={} \
                 restarts={} last=`{}`",
                s.port,
                s.ready,
                s.outcome.is_some(),
                s.reaped,
                s.restarts,
                s.last_line,
            );
        }
    };

    let result = (|| -> Result<(), String> {
        loop {
            if slots.iter().all(|s| s.outcome.is_some() && s.reaped) {
                return Ok(());
            }
            let (i, event) = match rx.recv_timeout(WATCHDOG) {
                Ok(ev) => ev,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    idle_strikes += 1;
                    dump(&slots, "no progress from any child, dumping state");
                    if idle_strikes >= 2 {
                        return Err(format!(
                            "watchdog: no child produced output for {}s",
                            WATCHDOG.as_secs() * u64::from(idle_strikes)
                        ));
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err("watchdog: every child stream closed unexpectedly".into());
                }
            };
            idle_strikes = 0;
            match event {
                ChildEvent::Line(line) => {
                    slots[i].last_line.clone_from(&line);
                    if let Some(port) = line.strip_prefix("PORT ") {
                        let port: u16 = parse_num(port.trim(), "port")?;
                        slots[i].port = Some(port);
                        let addr = std::net::SocketAddr::from(([127, 0, 0, 1], port));
                        if let Some(proxy) = proxies.get(i) {
                            // A restarted incarnation: swing its stable
                            // relay over to the fresh port.
                            proxy.retarget(addr);
                            eprintln!("supervisor: party {i} back up on {addr}, relay retargeted");
                        } else if slots.iter().all(|s| s.port.is_some()) && proxies.is_empty() {
                            // Bring-up complete: front every child with
                            // a relay and hand out the relay addresses.
                            for (j, slot) in slots.iter().enumerate() {
                                let target = std::net::SocketAddr::from((
                                    [127, 0, 0, 1],
                                    slot.port.expect("all ports known"),
                                ));
                                let plan = match chaos {
                                    Some(seed) => net::seeded_plan(seed, n),
                                    None => sim_net::FaultPlan::none(),
                                };
                                let proxy = net::spawn_chaos_proxy(
                                    target,
                                    net::ChaosConfig {
                                        plan,
                                        node: j,
                                        round_ms: 40,
                                    },
                                )
                                .map_err(|e| format!("relay for party {j}: {e}"))?;
                                proxies.push(proxy);
                            }
                            peer_list = proxies
                                .iter()
                                .map(|p| p.addr.to_string())
                                .collect::<Vec<_>>()
                                .join(",");
                            for (j, slot) in slots.iter_mut().enumerate() {
                                let child = slot.child.as_mut().expect("live child");
                                let stdin = child.stdin.as_mut().expect("piped stdin");
                                writeln!(stdin, "PEERS {peer_list}")
                                    .map_err(|e| format!("party {j}: {e}"))?;
                            }
                        }
                    } else if line.trim() == "READY" {
                        slots[i].ready = true;
                        if !kills_fired && slots.iter().all(|s| s.ready) {
                            kills_fired = true;
                            for &k in kills {
                                eprintln!("supervisor: SIGKILL party {k} (deployment is READY)");
                                if let Some(child) = slots[k].child.as_mut() {
                                    child.kill().map_err(|e| format!("kill party {k}: {e}"))?;
                                }
                            }
                        }
                    } else if line.starts_with("OUTCOME ") {
                        slots[i].outcome = Some(parse_outcome_line(&line)?);
                    }
                }
                ChildEvent::Eof => {
                    let mut child = slots[i].child.take().expect("live child");
                    let status = child.wait().map_err(|e| format!("party {i}: {e}"))?;
                    if slots[i].outcome.is_some() {
                        if !status.success() {
                            return Err(format!(
                                "party {i}: exited with {status} after its OUTCOME"
                            ));
                        }
                        slots[i].reaped = true;
                        continue;
                    }
                    // Died before an outcome: restart into recovery, or
                    // give up and surface how it actually died.
                    if peer_list.is_empty() {
                        return Err(format!("party {i}: exited with {status} during bring-up"));
                    }
                    if slots[i].restarts >= max_restarts {
                        return Err(format!(
                            "party {i}: exited with {status} and exhausted {max_restarts} restart(s)"
                        ));
                    }
                    let backoff = std::time::Duration::from_millis(
                        (100u64 << slots[i].restarts.min(10)).min(1_000),
                    );
                    eprintln!(
                        "supervisor: party {i} exited with {status}; restarting with --recover \
                         in {backoff:?} ({}/{max_restarts})",
                        slots[i].restarts + 1,
                    );
                    std::thread::sleep(backoff);
                    let wal = wal_file(i);
                    let launch = ChildLaunch {
                        peers: Some(&peer_list),
                        trace_file: trace_files.map(|files| files[i].as_path()),
                        wal: Some((&wal, true)),
                        reconnect: Some(reconnect),
                    };
                    let (child, stdout) = spawn_serve_child(spec, i, &launch)?;
                    spawn_stdout_reader(i, stdout, tx.clone());
                    slots[i].child = Some(child);
                    slots[i].port = None;
                    slots[i].ready = false;
                    slots[i].restarts += 1;
                }
            }
        }
    })();

    if let Err(e) = result {
        dump(&slots, &format!("aborting: {e}"));
        for slot in &mut slots {
            if let Some(mut child) = slot.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        return Err(e);
    }
    let mut outcomes: Vec<ServeOutcome> = slots
        .into_iter()
        .map(|s| s.outcome.expect("complete run"))
        .collect();
    outcomes.sort_by_key(|o| o.party);
    Ok(outcomes)
}

/// Result of one bundled-vs-independent throughput comparison.
#[derive(Debug)]
pub struct BundleBenchReport {
    /// `sim` or `tcp`.
    pub transport: String,
    /// Instances bundled onto one wire.
    pub k: usize,
    /// Parties / corruption bound of every run.
    pub n: usize,
    /// Corruption bound.
    pub t: usize,
    /// Synchronous rounds each run executes (no early stopping).
    pub rounds: u32,
    /// Wall-clock seconds of the single bundled simulation.
    pub bundled_secs: f64,
    /// Bundled agreements per second (`k / bundled_secs`).
    pub bundled_rate: f64,
    /// Independent baseline runs actually timed (`min(k, cap)`).
    pub timed: usize,
    /// Wall-clock seconds of the timed independent runs.
    pub independent_secs: f64,
    /// Independent agreements per second (`timed / independent_secs`).
    pub independent_rate: f64,
    /// Linear extrapolation of the full k-run independent baseline.
    pub independent_total_secs_extrapolated: f64,
    /// `bundled_rate / independent_rate`.
    pub speedup: f64,
}

impl BundleBenchReport {
    /// Renders the report as a self-describing JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"transport\": \"{}\",\n  \"k\": {},\n  \"n\": {},\n  \"t\": {},\n  \
             \"rounds\": {},\n  \
             \"bundled\": {{ \"wall_s\": {:.6}, \"agreements_per_sec\": {:.1} }},\n  \
             \"independent\": {{ \"runs_timed\": {}, \"wall_s\": {:.6}, \
             \"agreements_per_sec\": {:.1}, \"extrapolated_total_s\": {:.3} }},\n  \
             \"speedup\": {:.2}\n}}",
            self.transport,
            self.k,
            self.n,
            self.t,
            self.rounds,
            self.bundled_secs,
            self.bundled_rate,
            self.timed,
            self.independent_secs,
            self.independent_rate,
            self.independent_total_secs_extrapolated,
            self.speedup,
        )
    }
}

/// Deterministic per-(party, instance) bench input in `[0, 8)`.
fn bench_input(p: usize, j: usize) -> f64 {
    ((p * 31 + j * 17 + 3) % 101) as f64 / 100.0 * 8.0
}

/// Times one bundled k-instance run against `min(k, baseline_cap)`
/// independent single-instance runs on identical inputs, demanding
/// bit-identical outputs for every timed pair (the differential gate).
fn run_bundle_bench(
    k: usize,
    n: usize,
    t: usize,
    transport: &str,
    baseline_cap: usize,
) -> Result<BundleBenchReport, String> {
    if k == 0 {
        return Err("--bundle must be at least 1".into());
    }
    if baseline_cap == 0 {
        return Err("--baseline-cap must be at least 1".into());
    }
    match transport {
        "sim" => run_bundle_bench_sim(k, n, t, baseline_cap),
        "tcp" => run_bundle_bench_tcp(k, n, t, baseline_cap),
        other => Err(format!("unknown transport `{other}`; use sim or tcp")),
    }
}

fn run_bundle_bench_sim(
    k: usize,
    n: usize,
    t: usize,
    baseline_cap: usize,
) -> Result<BundleBenchReport, String> {
    // No early stopping: every instance runs the full round count, so
    // both sides time an identical, deterministic workload.
    let cfg = real_aa::RealAaConfig::new(n, t, 0.5, 8.0)?;
    let sim = SimConfig {
        n,
        t,
        max_rounds: cfg.rounds() + 8,
    };

    let start = std::time::Instant::now();
    let bundled = run_simulation(
        sim,
        |id, _n| {
            let inputs = (0..k).map(|j| bench_input(id.index(), j)).collect();
            real_aa::BundledAaParty::new(id, cfg, inputs).expect("k >= 1 checked above")
        },
        Passive,
    )
    .map_err(|e| format!("bundled run failed: {e}"))?;
    let bundled_secs = start.elapsed().as_secs_f64().max(1e-9);
    let bundled_outputs = bundled.honest_outputs();
    if bundled_outputs.len() != n {
        return Err("bundled run lost a party".into());
    }

    let timed = k.min(baseline_cap);
    let start = std::time::Instant::now();
    let mut solo_outputs: Vec<Vec<f64>> = Vec::with_capacity(timed);
    for j in 0..timed {
        let report = run_simulation(
            sim,
            |id, _n| real_aa::RealAaBatchParty::new(id, cfg, bench_input(id.index(), j)),
            Passive,
        )
        .map_err(|e| format!("independent run {j} failed: {e}"))?;
        solo_outputs.push(report.honest_outputs());
    }
    let independent_secs = start.elapsed().as_secs_f64().max(1e-9);

    // Differential gate: each timed independent run must reproduce its
    // bundled instance bit for bit.
    for (j, solo) in solo_outputs.iter().enumerate() {
        for (p, &v) in solo.iter().enumerate() {
            let b = bundled_outputs[p][j];
            if b.to_bits() != v.to_bits() {
                return Err(format!(
                    "differential gate: instance {j} party {p} diverged \
                     (bundled {b}, independent {v})"
                ));
            }
        }
    }

    let bundled_rate = k as f64 / bundled_secs;
    let independent_rate = timed as f64 / independent_secs;
    Ok(BundleBenchReport {
        transport: "sim".into(),
        k,
        n,
        t,
        rounds: cfg.rounds(),
        bundled_secs,
        bundled_rate,
        timed,
        independent_secs,
        independent_rate,
        independent_total_secs_extrapolated: independent_secs / timed as f64 * k as f64,
        speedup: bundled_rate / independent_rate,
    })
}

/// One real loopback deployment of `Reliable<BundledAaParty>`: n TCP
/// processes (threads) on ephemeral 127.0.0.1 ports, MAC-authenticated
/// handshakes, conservative virtual-time synchronisation. Returns every
/// party's per-instance outputs.
fn run_tcp_bundle_deployment(
    cfg: real_aa::RealAaConfig,
    inputs: &[Vec<f64>],
) -> Result<Vec<Vec<f64>>, String> {
    let n = cfg.n;
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bench bind: {e}")))
        .collect::<Result<_, _>>()?;
    let peers: Vec<std::net::SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr().map_err(|e| format!("bench addr: {e}")))
        .collect::<Result<_, _>>()?;
    let mut handles = Vec::with_capacity(n);
    for (me, listener) in listeners.into_iter().enumerate() {
        let mut node_cfg = net::NodeConfig::new(me, n, cfg.t, peers.clone(), 0xbe9c_b09d, 0xb1, 7);
        node_cfg.label = "bench-bundle".into();
        let party = async_net::Reliable::new(
            real_aa::BundledAaParty::new(sim_net::PartyId(me), cfg, inputs[me].clone())
                .map_err(|e| e.to_string())?,
            n,
        );
        handles.push(std::thread::spawn(move || {
            net::run_node(&node_cfg, listener, party, || {})
        }));
    }
    let mut outputs = Vec::with_capacity(n);
    for (me, h) in handles.into_iter().enumerate() {
        let report = h
            .join()
            .map_err(|_| format!("bench node {me} panicked"))?
            .map_err(|e| format!("bench node {me}: {e}"))?;
        if report.stats.rejected_malformed != 0 || report.stats.rejected_mac != 0 {
            return Err(format!("bench node {me} rejected wire messages"));
        }
        outputs.push(
            report
                .output
                .ok_or_else(|| format!("bench node {me} had no output"))?,
        );
    }
    Ok(outputs)
}

fn run_bundle_bench_tcp(
    k: usize,
    n: usize,
    t: usize,
    baseline_cap: usize,
) -> Result<BundleBenchReport, String> {
    let cfg = real_aa::RealAaConfig::new(n, t, 0.5, 8.0)?;
    let inputs: Vec<Vec<f64>> = (0..n)
        .map(|p| (0..k).map(|j| bench_input(p, j)).collect())
        .collect();

    let start = std::time::Instant::now();
    let bundled_outputs = run_tcp_bundle_deployment(cfg, &inputs)?;
    let bundled_secs = start.elapsed().as_secs_f64().max(1e-9);

    // Differential gate, part 1: the networked run must reproduce the
    // in-process synchronous engine bit for bit.
    let reference = run_simulation(
        SimConfig {
            n,
            t,
            max_rounds: cfg.rounds() + 8,
        },
        |id, _n| {
            real_aa::BundledAaParty::new(id, cfg, inputs[id.index()].clone())
                .expect("k >= 1 checked above")
        },
        Passive,
    )
    .map_err(|e| format!("reference run failed: {e}"))?
    .honest_outputs();
    if bundled_outputs != reference {
        return Err("differential gate: networked bundle diverged from the engine".into());
    }

    // Independent baseline: one full deployment per instance (its own
    // sockets, handshakes, and round pacing), carrying exactly one
    // instance.
    let timed = k.min(baseline_cap);
    let start = std::time::Instant::now();
    // `j` indexes instances (inputs AND expected outputs), not a slice.
    #[allow(clippy::needless_range_loop)]
    for j in 0..timed {
        let solo_inputs: Vec<Vec<f64>> = (0..n).map(|p| vec![bench_input(p, j)]).collect();
        let solo = run_tcp_bundle_deployment(cfg, &solo_inputs)?;
        // Differential gate, part 2: a deployment carrying only
        // instance j must reproduce the bundled instance j bit for bit.
        for (p, out) in solo.iter().enumerate() {
            if out[0].to_bits() != bundled_outputs[p][j].to_bits() {
                return Err(format!(
                    "differential gate: instance {j} party {p} diverged \
                     (bundled {}, independent {})",
                    bundled_outputs[p][j], out[0]
                ));
            }
        }
    }
    let independent_secs = start.elapsed().as_secs_f64().max(1e-9);

    let bundled_rate = k as f64 / bundled_secs;
    let independent_rate = timed as f64 / independent_secs;
    Ok(BundleBenchReport {
        transport: "tcp".into(),
        k,
        n,
        t,
        rounds: cfg.rounds(),
        bundled_secs,
        bundled_rate,
        timed,
        independent_secs,
        independent_rate,
        independent_total_secs_extrapolated: independent_secs / timed as f64 * k as f64,
        speedup: bundled_rate / independent_rate,
    })
}

/// Executes a command, writing human-readable output to `out`.
///
/// # Errors
///
/// Returns a message for file, parse, or protocol-precondition problems.
pub fn execute(cmd: Command, out: &mut impl std::io::Write) -> Result<(), String> {
    let io = |e: std::io::Error| format!("i/o error: {e}");
    match cmd {
        Command::Help => write!(out, "{USAGE}").map_err(io),
        Command::Gen {
            family,
            size,
            dot,
            seed,
        } => {
            let tree = build_family(&family, size, seed)?;
            let text = if dot {
                tree.to_dot(&[])
            } else {
                tree.to_text()
            };
            write!(out, "{text}").map_err(io)
        }
        Command::Info { tree } => {
            let text = std::fs::read_to_string(&tree).map_err(io)?;
            let tree = parse_tree(&text).map_err(|e| e.to_string())?;
            let list = tree_model::list_construction(&tree);
            writeln!(out, "vertices        {}", tree.vertex_count()).map_err(io)?;
            writeln!(out, "diameter        {}", tree.diameter()).map_err(io)?;
            writeln!(out, "root            {}", tree.label(tree.root())).map_err(io)?;
            writeln!(out, "euler list len  {}", list.len()).map_err(io)?;
            for (n, t) in [(4usize, 1usize), (7, 2), (10, 3)] {
                let cfg = TreeAaConfig::new(n, t, EngineKind::Gradecast, &tree)
                    .map_err(|e| e.to_string())?;
                let nr = NowakRybickiConfig::new(n, t, &tree).map_err(|e| e.to_string())?;
                writeln!(
                    out,
                    "rounds n={n:<2} t={t}: TreeAA {} (phase1 {} + phase2 {}), baseline {}",
                    cfg.total_rounds(),
                    cfg.phase1_rounds(),
                    cfg.phase2_rounds(),
                    nr.rounds()
                )
                .map_err(io)?;
            }
            Ok(())
        }
        Command::Bounds { diameter, n, t } => {
            writeln!(
                out,
                "exact Fekete round lower bound  {}",
                round_lower_bound(diameter, n, t)
            )
            .map_err(io)?;
            writeln!(
                out,
                "Theorem 2 closed form           {:.2}",
                theorem2_formula(diameter, n, t)
            )
            .map_err(io)?;
            for r in 1..=8u32 {
                writeln!(out, "  K({r}, D) = {:.6}", fekete_k(r, diameter, n, t)).map_err(io)?;
            }
            writeln!(
                out,
                "RealAA rounds for eps = 1       {}",
                real_aa::iterations_for(diameter, 1.0) * 3
            )
            .map_err(io)
        }
        Command::Fuzz {
            seed,
            cases,
            minimize,
            faults,
            corpus,
        } => {
            let opts = aa_fuzz::FuzzOptions {
                seed,
                cases,
                minimize,
                faults,
                corpus_dir: (!corpus.is_empty()).then(|| corpus.into()),
            };
            let violations = aa_fuzz::run_batch(&opts, out).map_err(io)?;
            if violations == 0 {
                Ok(())
            } else {
                Err(format!("{violations} invariant violation(s) found"))
            }
        }
        Command::Check {
            n,
            t,
            tree,
            protocol,
            depth,
            max_runs,
            out: out_path,
        } => {
            let tree = Arc::new(build_tree_spec(&tree)?);
            let protocol = aa_check::CheckProtocol::parse(&protocol)?;
            let mut opts = aa_check::CheckOptions::new(n, t, tree, protocol);
            opts.depth = depth;
            opts.max_runs = max_runs;
            let report = aa_check::check(&opts)?;
            write!(out, "{report}").map_err(io)?;
            writeln!(out).map_err(io)?;
            match report.violation {
                None => Ok(()),
                Some(cex) => {
                    if !out_path.is_empty() {
                        let json = cex.trace.to_canonical_string();
                        std::fs::write(&out_path, format!("{json}\n")).map_err(io)?;
                        writeln!(out, "counterexample trace -> {out_path}").map_err(io)?;
                    }
                    Err(format!("property violation: {}", cex.violation))
                }
            }
        }
        Command::Bench {
            bundle,
            n,
            t,
            transport,
            baseline_cap,
            min_speedup,
            out: out_path,
        } => {
            let report = run_bundle_bench(bundle, n, t, &transport, baseline_cap)?;
            let json = report.to_json();
            if out_path.is_empty() {
                writeln!(out, "{json}").map_err(io)?;
            } else {
                std::fs::write(&out_path, format!("{json}\n")).map_err(io)?;
            }
            writeln!(
                out,
                "bench: k={bundle} bundled {:.1} agreements/s, independent {:.1} \
                 agreements/s, speedup {:.2}x (baseline timed {} of {} runs)",
                report.bundled_rate, report.independent_rate, report.speedup, report.timed, bundle
            )
            .map_err(io)?;
            if min_speedup > 0.0 && report.speedup < min_speedup {
                return Err(format!(
                    "speedup gate failed: {:.2}x < required {min_speedup}x",
                    report.speedup
                ));
            }
            Ok(())
        }
        Command::Trace {
            scenario,
            seed,
            out: out_path,
        } => {
            let trace = aa_fuzz::record_scenario(&scenario, seed)?;
            let json = trace.to_canonical_string();
            if out_path.is_empty() {
                writeln!(out, "{json}").map_err(io)
            } else {
                std::fs::write(&out_path, format!("{json}\n")).map_err(io)?;
                writeln!(
                    out,
                    "trace: {} events, fingerprint {:016x} -> {out_path}",
                    trace.events.len(),
                    trace.fingerprint()
                )
                .map_err(io)
            }
        }
        Command::Run {
            tree,
            inputs,
            t,
            protocol,
            engine,
            adversary,
            seed,
        } => {
            let text = std::fs::read_to_string(&tree).map_err(io)?;
            let tree = Arc::new(parse_tree(&text).map_err(|e| e.to_string())?);
            let labels: Vec<&str> = inputs.split(',').map(str::trim).collect();
            let n = labels.len();
            let input_ids: Vec<VertexId> = labels
                .iter()
                .map(|l| {
                    tree.vertex(l)
                        .ok_or_else(|| format!("unknown vertex label `{l}`"))
                })
                .collect::<Result<_, _>>()?;
            let engine = match engine.as_str() {
                "gradecast" => EngineKind::Gradecast,
                "gradecast-batched" => EngineKind::GradecastBatched,
                "halving" => EngineKind::Halving,
                other => return Err(format!("unknown engine `{other}`")),
            };
            let byz: Vec<PartyId> = if adversary == "none" {
                Vec::new()
            } else {
                (n - t..n).map(PartyId).collect()
            };

            let (outputs, rounds, messages) = match protocol.as_str() {
                "treeaa" => {
                    let cfg = TreeAaConfig::new(n, t, engine, &tree).map_err(|e| e.to_string())?;
                    let max = cfg.total_rounds() + 5;
                    let factory = |id: PartyId, _| {
                        TreeAaParty::new(id, cfg.clone(), Arc::clone(&tree), input_ids[id.index()])
                    };
                    let sim = SimConfig {
                        n,
                        t,
                        max_rounds: max,
                    };
                    let report = match adversary.as_str() {
                        "none" => run_simulation(sim, factory, Passive),
                        "chaos" => run_simulation(
                            sim,
                            factory,
                            TreeAaChaos::new(byz.clone(), seed, 2.0 * tree.vertex_count() as f64),
                        ),
                        "crash" => run_simulation(
                            sim,
                            factory,
                            CrashAdversary {
                                crashes: byz.iter().map(|&p| (p, 2)).collect(),
                            },
                        ),
                        "omission" => run_simulation(
                            sim,
                            factory,
                            SelectiveOmission::new(byz.clone(), 0.4, seed),
                        ),
                        other => return Err(format!("unknown adversary `{other}`")),
                    }
                    .map_err(|e| e.to_string())?;
                    (
                        report.honest_outputs(),
                        report.communication_rounds(),
                        report.metrics.total_messages(),
                    )
                }
                "baseline" => {
                    let cfg = NowakRybickiConfig::new(n, t, &tree).map_err(|e| e.to_string())?;
                    let max = cfg.rounds() + 5;
                    let factory = |id: PartyId, _| {
                        NowakRybickiParty::new(
                            id,
                            cfg.clone(),
                            Arc::clone(&tree),
                            input_ids[id.index()],
                        )
                    };
                    let sim = SimConfig {
                        n,
                        t,
                        max_rounds: max,
                    };
                    let report = match adversary.as_str() {
                        "none" => run_simulation(sim, factory, Passive),
                        "crash" => run_simulation(
                            sim,
                            factory,
                            CrashAdversary {
                                crashes: byz.iter().map(|&p| (p, 2)).collect(),
                            },
                        ),
                        "omission" => run_simulation(
                            sim,
                            factory,
                            SelectiveOmission::new(byz.clone(), 0.4, seed),
                        ),
                        other => {
                            return Err(format!(
                                "adversary `{other}` is not available for the baseline"
                            ))
                        }
                    }
                    .map_err(|e| e.to_string())?;
                    (
                        report.honest_outputs(),
                        report.communication_rounds(),
                        report.metrics.total_messages(),
                    )
                }
                other => return Err(format!("unknown protocol `{other}`")),
            };

            let honest_inputs: Vec<VertexId> = (0..n)
                .filter(|i| !byz.iter().any(|b| b.index() == *i))
                .map(|i| input_ids[i])
                .collect();
            writeln!(out, "rounds    {rounds}").map_err(io)?;
            writeln!(out, "messages  {messages}").map_err(io)?;
            for (i, &v) in outputs.iter().enumerate() {
                writeln!(out, "party {i}: output {}", tree.label(v)).map_err(io)?;
            }
            match check_tree_aa(&tree, &honest_inputs, &outputs) {
                Ok(()) => writeln!(out, "verified: validity + 1-agreement hold").map_err(io),
                Err(v) => Err(format!("PROPERTY VIOLATION: {v}")),
            }
        }
        Command::Serve {
            tree,
            inputs,
            party_id,
            t,
            seed,
            min_delay,
            secret,
            bind,
            peers,
            trace_out,
            wal,
            recover,
            reconnect_attempts,
            dead_after_ms,
        } => {
            let case = build_gate_case(&tree, &inputs, t, seed, min_delay)?;
            let n = case.n();
            if party_id >= n {
                return Err(format!("--party-id {party_id} out of range (n = {n})"));
            }
            if recover && wal.is_empty() {
                return Err("--recover needs a log to replay; pass --wal <file>".into());
            }
            let listener = std::net::TcpListener::bind(&bind).map_err(io)?;
            let port = listener.local_addr().map_err(io)?.port();
            writeln!(out, "PORT {port}").map_err(io)?;
            out.flush().map_err(io)?;
            let peer_list = if peers.is_empty() {
                let mut line = String::new();
                std::io::stdin().read_line(&mut line).map_err(io)?;
                line.trim()
                    .strip_prefix("PEERS ")
                    .ok_or_else(|| format!("expected `PEERS a0,...` on stdin, got `{line}`"))?
                    .to_string()
            } else {
                peers
            };
            let addrs = parse_peer_addrs(&peer_list, n)?;
            let mut cfg = net::node_config(&case, party_id, addrs, secret);
            if let Some(attempts) = reconnect_attempts {
                cfg.reconnect.attempts = attempts;
            }
            if let Some(dead_after) = dead_after_ms {
                cfg.reconnect.dead_after_ms = dead_after;
            }
            let durability = (!wal.is_empty()).then(|| net::Durability {
                wal_path: std::path::PathBuf::from(&wal),
                recover,
            });
            let party = case.party(party_id);
            // READY must reach the launcher the moment the links are up
            // (crash tests kill victims on it), so it bypasses `out` and
            // goes straight to the process stdout — the same stream in a
            // real `serve` process.
            let report = net::run_node_durable(
                &cfg,
                listener,
                party,
                durability.as_ref(),
                |p| p.state_fingerprint(),
                || {
                    use std::io::Write as _;
                    let mut so = std::io::stdout();
                    let _ = writeln!(so, "READY");
                    let _ = so.flush();
                },
            )
            .map_err(|e| format!("party {party_id}: {e}"))?;
            if !trace_out.is_empty() {
                let json = report.trace.to_canonical_string();
                std::fs::write(&trace_out, format!("{json}\n")).map_err(io)?;
            }
            let outcome = report
                .output
                .ok_or_else(|| format!("party {party_id} terminated without an output"))?;
            let over_budget = match &outcome {
                sim_net::Outcome::Degraded(d) => d.certificate.exceeds_budget(),
                sim_net::Outcome::Value(_) => false,
            };
            writeln!(
                out,
                "OUTCOME party={party_id} vertex={} degraded={} over_budget={} retx={} vtime={:.3}",
                case.tree.label(*outcome.value()),
                outcome.is_degraded(),
                over_budget,
                report.stats.retransmissions,
                report.vtime,
            )
            .map_err(io)?;
            out.flush().map_err(io)
        }
        Command::Cluster {
            tree,
            inputs,
            t,
            seed,
            min_delay,
            secret,
            runs,
            gate,
            supervise,
            chaos,
            kill_after_ready,
            wal_dir,
        } => {
            let case = build_gate_case(&tree, &inputs, t, seed, min_delay)?;
            let n = case.n();
            let kills: Vec<usize> = kill_after_ready
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| parse_num(s, "kill-after-ready index"))
                .collect::<Result<_, _>>()?;
            if kills.iter().any(|&k| k >= n) {
                return Err(format!("--kill-after-ready index out of range (n = {n})"));
            }
            if !kills.is_empty() && !supervise {
                return Err(
                    "--kill-after-ready needs --supervise (nobody would restart the victim)".into(),
                );
            }
            if gate && chaos.is_some() {
                return Err(
                    "--gate and --chaos are incompatible: chaos legitimately shifts the \
                     retransmission schedule the gate reconciles"
                        .into(),
                );
            }
            let managed = supervise || chaos.is_some();
            let exe = std::env::current_exe().map_err(io)?;
            let spec = ClusterSpec {
                exe: &exe,
                tree: &tree,
                inputs: &inputs,
                t,
                seed,
                min_delay,
                secret,
            };
            let reference = if gate {
                Some(case.reference_run()?)
            } else {
                None
            };
            for run in 0..runs {
                let trace_files: Option<Vec<std::path::PathBuf>> = gate.then(|| {
                    let dir = std::env::temp_dir();
                    (0..n)
                        .map(|i| {
                            dir.join(format!(
                                "treeaa-cluster-{}-{run}-{i}.trace.json",
                                std::process::id()
                            ))
                        })
                        .collect()
                });
                let outcomes = if managed {
                    let (wdir, scratch) = if wal_dir.is_empty() {
                        let dir = std::env::temp_dir()
                            .join(format!("treeaa-wal-{}-{run}", std::process::id()));
                        (dir, true)
                    } else {
                        (std::path::PathBuf::from(&wal_dir), false)
                    };
                    std::fs::create_dir_all(&wdir).map_err(io)?;
                    let result = run_cluster_supervised(
                        &spec,
                        n,
                        trace_files.as_deref(),
                        &wdir,
                        chaos,
                        &kills,
                        supervise,
                    );
                    // A failed run keeps its WALs around for diagnosis.
                    if scratch && result.is_ok() {
                        let _ = std::fs::remove_dir_all(&wdir);
                    }
                    result
                } else {
                    run_cluster_once(&spec, n, trace_files.as_deref())
                }
                .map_err(|e| format!("run {run}: {e}"))?;
                for o in &outcomes {
                    if o.degraded {
                        return Err(format!(
                            "run {run}: party {} degraded on a clean deployment",
                            o.party
                        ));
                    }
                }
                let outputs: Vec<VertexId> = outcomes
                    .iter()
                    .map(|o| {
                        case.tree
                            .vertex(&o.vertex)
                            .ok_or_else(|| format!("run {run}: unknown output `{}`", o.vertex))
                    })
                    .collect::<Result<_, _>>()?;
                check_tree_aa(&case.tree, &case.inputs, &outputs)
                    .map_err(|v| format!("run {run}: PROPERTY VIOLATION: {v}"))?;
                let labels: Vec<&str> = outcomes.iter().map(|o| o.vertex.as_str()).collect();
                writeln!(out, "run {run}: outputs {} (verified)", labels.join(" ")).map_err(io)?;
                if let (Some(reference), Some(files)) = (&reference, &trace_files) {
                    let traces = files
                        .iter()
                        .map(|f| {
                            let text = std::fs::read_to_string(f).map_err(io)?;
                            let _ = std::fs::remove_file(f);
                            aa_trace::Trace::parse(&text)
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    let merged = aa_trace::merge_traces(&traces)?;
                    let reconciled = net::differential_gate(&reference.trace, &merged)
                        .map_err(|e| format!("run {run}: differential gate FAILED: {e}"))?;
                    writeln!(out, "run {run}: gate reconciled {reconciled} proto events")
                        .map_err(io)?;
                    // Schedule-blind hash of the merged protocol events:
                    // bit-identical across reruns, and blind to whether
                    // any node crashed and recovered along the way.
                    let fp =
                        net::proto_fingerprint(&merged).map_err(|e| format!("run {run}: {e}"))?;
                    writeln!(out, "run {run}: proto fingerprint {fp:016x}").map_err(io)?;
                }
            }
            writeln!(out, "cluster: {runs} run(s) passed on {n} processes").map_err(io)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_gen() {
        let cmd = parse_args(&argv("gen --family path --size 5 --dot")).unwrap();
        assert_eq!(
            cmd,
            Command::Gen {
                family: "path".into(),
                size: 5,
                dot: true,
                seed: 0
            }
        );
    }

    #[test]
    fn parses_run_with_defaults() {
        let cmd = parse_args(&argv("run --tree x.tree --inputs a,b,c,d")).unwrap();
        match cmd {
            Command::Run {
                t,
                protocol,
                engine,
                adversary,
                ..
            } => {
                assert_eq!(t, 1);
                assert_eq!(protocol, "treeaa");
                assert_eq!(engine, "gradecast");
                assert_eq!(adversary, "none");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_bench_with_defaults() {
        let cmd = parse_args(&argv("bench --bundle 100")).unwrap();
        assert_eq!(
            cmd,
            Command::Bench {
                bundle: 100,
                n: 4,
                t: 1,
                transport: "sim".into(),
                baseline_cap: 64,
                min_speedup: 0.0,
                out: String::new(),
            }
        );
        let cmd = parse_args(&argv(
            "bench --bundle 17 --n 7 --t 2 --transport tcp --baseline-cap 5 \
             --min-speedup 1.5 --out b.json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Bench {
                bundle: 17,
                n: 7,
                t: 2,
                transport: "tcp".into(),
                baseline_cap: 5,
                min_speedup: 1.5,
                out: "b.json".into(),
            }
        );
    }

    #[test]
    fn bench_times_both_sides_and_passes_the_differential_gate() {
        let mut buf = Vec::new();
        execute(
            Command::Bench {
                bundle: 8,
                n: 4,
                t: 1,
                transport: "sim".into(),
                baseline_cap: 3,
                min_speedup: 0.0,
                out: String::new(),
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"k\": 8"), "{text}");
        assert!(text.contains("\"runs_timed\": 3"), "{text}");
        assert!(text.contains("\"speedup\""), "{text}");
        assert!(text.contains("bench: k=8"), "{text}");
    }

    #[test]
    fn bench_rejects_an_empty_bundle_and_gates_on_min_speedup() {
        let err = execute(
            Command::Bench {
                bundle: 0,
                n: 4,
                t: 1,
                transport: "sim".into(),
                baseline_cap: 64,
                min_speedup: 0.0,
                out: String::new(),
            },
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.contains("--bundle"), "{err}");
        // An impossible gate must fail the command after printing the report.
        let err = execute(
            Command::Bench {
                bundle: 2,
                n: 4,
                t: 1,
                transport: "sim".into(),
                baseline_cap: 1,
                min_speedup: 1e12,
                out: String::new(),
            },
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.contains("speedup gate failed"), "{err}");
    }

    #[test]
    fn missing_required_option_is_an_error() {
        let err = parse_args(&argv("gen --size 5")).unwrap_err();
        assert!(err.contains("--family"), "{err}");
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(parse_args(&argv("frobnicate")).is_err());
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn gen_and_info_roundtrip_through_a_file() {
        let mut buf = Vec::new();
        execute(
            Command::Gen {
                family: "caterpillar".into(),
                size: 12,
                dot: false,
                seed: 0,
            },
            &mut buf,
        )
        .unwrap();
        let dir = std::env::temp_dir().join("treeaa-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("t.tree");
        std::fs::write(&file, &buf).unwrap();

        let mut info = Vec::new();
        execute(
            Command::Info {
                tree: file.to_string_lossy().into_owned(),
            },
            &mut info,
        )
        .unwrap();
        let text = String::from_utf8(info).unwrap();
        assert!(text.contains("vertices        12"), "{text}");
        assert!(text.contains("TreeAA"), "{text}");
    }

    #[test]
    fn run_executes_and_verifies() {
        let mut buf = Vec::new();
        execute(
            Command::Gen {
                family: "path".into(),
                size: 9,
                dot: false,
                seed: 0,
            },
            &mut buf,
        )
        .unwrap();
        let dir = std::env::temp_dir().join("treeaa-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("run.tree");
        std::fs::write(&file, &buf).unwrap();

        for (protocol, engine, adversary) in [
            ("treeaa", "gradecast", "none"),
            ("treeaa", "gradecast", "chaos"),
            ("treeaa", "halving", "none"),
            ("treeaa", "gradecast", "crash"),
            ("treeaa", "gradecast", "omission"),
            ("baseline", "gradecast", "none"),
            ("baseline", "gradecast", "omission"),
        ] {
            let mut out = Vec::new();
            execute(
                Command::Run {
                    tree: file.to_string_lossy().into_owned(),
                    inputs: "v0000,v0003,v0006,v0008".into(),
                    t: 1,
                    protocol: protocol.into(),
                    engine: engine.into(),
                    adversary: adversary.into(),
                    seed: 11,
                },
                &mut out,
            )
            .unwrap();
            let text = String::from_utf8(out).unwrap();
            assert!(
                text.contains("verified"),
                "{protocol}/{engine}/{adversary}: {text}"
            );
        }
    }

    #[test]
    fn parses_fuzz_with_defaults_and_flags() {
        assert_eq!(
            parse_args(&argv("fuzz")).unwrap(),
            Command::Fuzz {
                seed: 0,
                cases: 100,
                minimize: false,
                faults: false,
                corpus: String::new(),
            }
        );
        assert_eq!(
            parse_args(&argv(
                "fuzz --seed 42 --cases 500 --minimize --faults --corpus fuzz-corpus"
            ))
            .unwrap(),
            Command::Fuzz {
                seed: 42,
                cases: 500,
                minimize: true,
                faults: true,
                corpus: "fuzz-corpus".into(),
            }
        );
    }

    #[test]
    fn fuzz_runs_clean_and_is_bit_identical() {
        let run = || {
            let mut out = Vec::new();
            execute(
                Command::Fuzz {
                    seed: 42,
                    cases: 25,
                    minimize: true,
                    faults: false,
                    corpus: String::new(),
                },
                &mut out,
            )
            .unwrap();
            out
        };
        let first = run();
        assert_eq!(first, run());
        let text = String::from_utf8(first).unwrap();
        assert!(text.contains("0 violation(s)"), "{text}");
    }

    #[test]
    fn faulted_fuzz_runs_clean_and_is_bit_identical() {
        let run = || {
            let mut out = Vec::new();
            execute(
                Command::Fuzz {
                    seed: 42,
                    cases: 15,
                    minimize: false,
                    faults: true,
                    corpus: String::new(),
                },
                &mut out,
            )
            .unwrap();
            out
        };
        let first = run();
        assert_eq!(first, run());
        let text = String::from_utf8(first).unwrap();
        assert!(text.contains("faults on"), "{text}");
        assert!(text.contains("0 violation(s)"), "{text}");
    }

    #[test]
    fn parses_check_with_defaults() {
        assert_eq!(
            parse_args(&argv("check --n 4 --tree path4 --protocol tree-aa")).unwrap(),
            Command::Check {
                n: 4,
                t: 1,
                tree: "path4".into(),
                protocol: "tree-aa".into(),
                depth: 3,
                max_runs: 50_000,
                out: String::new(),
            }
        );
        assert_eq!(
            parse_args(&argv(
                "check --n 5 --t 1 --tree star5 --protocol real-aa --depth 2 \
                 --max-runs 999 --out cex.json"
            ))
            .unwrap(),
            Command::Check {
                n: 5,
                t: 1,
                tree: "star5".into(),
                protocol: "real-aa".into(),
                depth: 2,
                max_runs: 999,
                out: "cex.json".into(),
            }
        );
        assert!(parse_args(&argv("check --tree path4")).is_err());
    }

    // The acceptance invocation: `treeaa check --n 4 --tree path4
    // --protocol tree-aa` explores exhaustively, passes, reports its
    // explored/pruned counts, and is bit-identical across reruns.
    #[test]
    fn check_passes_and_is_bit_identical() {
        let run = || {
            let mut out = Vec::new();
            execute(
                Command::Check {
                    n: 4,
                    t: 1,
                    tree: "path4".into(),
                    protocol: "tree-aa".into(),
                    depth: 2,
                    max_runs: 50_000,
                    out: String::new(),
                },
                &mut out,
            )
            .unwrap();
            String::from_utf8(out).unwrap()
        };
        let first = run();
        assert_eq!(first, run());
        assert!(first.contains("verdict: PASS"), "{first}");
        assert!(first.contains("executions:"), "{first}");
        assert!(first.contains("canonical fingerprint:"), "{first}");
        assert!(!first.contains("[truncated"), "{first}");
    }

    #[test]
    fn check_accepts_a_tree_file_and_rejects_bad_specs() {
        let mut buf = Vec::new();
        execute(
            Command::Gen {
                family: "path".into(),
                size: 4,
                dot: false,
                seed: 0,
            },
            &mut buf,
        )
        .unwrap();
        let dir = std::env::temp_dir().join("treeaa-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("check.tree");
        std::fs::write(&file, &buf).unwrap();
        let mut out = Vec::new();
        execute(
            Command::Check {
                n: 4,
                t: 1,
                tree: file.to_string_lossy().into_owned(),
                protocol: "tree-aa".into(),
                depth: 1,
                max_runs: 10_000,
                out: String::new(),
            },
            &mut out,
        )
        .unwrap();
        assert!(String::from_utf8(out).unwrap().contains("verdict: PASS"));

        let err = execute(
            Command::Check {
                n: 4,
                t: 1,
                tree: "definitely-not-a-tree".into(),
                protocol: "tree-aa".into(),
                depth: 1,
                max_runs: 10,
                out: String::new(),
            },
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.contains("neither a tree family spec"), "{err}");
    }

    #[test]
    fn parses_trace_with_defaults() {
        assert_eq!(
            parse_args(&argv("trace --scenario path-honest")).unwrap(),
            Command::Trace {
                scenario: "path-honest".into(),
                seed: 0,
                out: String::new(),
            }
        );
        assert!(parse_args(&argv("trace")).is_err());
    }

    #[test]
    fn trace_emits_reproducible_canonical_json() {
        let run = || {
            let mut out = Vec::new();
            execute(
                Command::Trace {
                    scenario: "star-halving-honest".into(),
                    seed: 3,
                    out: String::new(),
                },
                &mut out,
            )
            .unwrap();
            String::from_utf8(out).unwrap()
        };
        let first = run();
        assert_eq!(first, run());
        let parsed = aa_fuzz::Json::parse(first.trim()).unwrap();
        assert_eq!(
            parsed.get("label").and_then(aa_fuzz::Json::as_str),
            Some("star-halving-honest:3")
        );
    }

    #[test]
    fn trace_writes_a_file_and_reports_the_fingerprint() {
        let dir = std::env::temp_dir().join("treeaa-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("golden.trace.json");
        let mut out = Vec::new();
        execute(
            Command::Trace {
                scenario: "path-honest".into(),
                seed: 1,
                out: file.to_string_lossy().into_owned(),
            },
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("fingerprint"), "{text}");
        let written = std::fs::read_to_string(&file).unwrap();
        assert!(
            written.starts_with('{') && written.ends_with("}\n"),
            "bad file shape"
        );
    }

    #[test]
    fn trace_unknown_scenario_lists_the_names() {
        let err = execute(
            Command::Trace {
                scenario: "bogus".into(),
                seed: 0,
                out: String::new(),
            },
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.contains("caterpillar-equivocate"), "{err}");
    }

    #[test]
    fn parses_serve_with_defaults() {
        assert_eq!(
            parse_args(&argv(
                "serve --tree path9 --inputs a,b,c,d --party-id 2 --seed 9"
            ))
            .unwrap(),
            Command::Serve {
                tree: "path9".into(),
                inputs: "a,b,c,d".into(),
                party_id: 2,
                t: 1,
                seed: 9,
                min_delay: 0.5,
                secret: 0,
                bind: "127.0.0.1:0".into(),
                peers: String::new(),
                trace_out: String::new(),
                wal: String::new(),
                recover: false,
                reconnect_attempts: None,
                dead_after_ms: None,
            }
        );
        let err = parse_args(&argv("serve --tree path9 --inputs a,b")).unwrap_err();
        assert!(err.contains("--party-id"), "{err}");
    }

    #[test]
    fn parses_serve_durability_flags() {
        let cmd = parse_args(&argv(
            "serve --tree path9 --inputs a,b,c,d --party-id 1 --wal /tmp/n1.wal --recover \
             --reconnect-attempts 60 --dead-after-ms 20000",
        ))
        .unwrap();
        let Command::Serve {
            wal,
            recover,
            reconnect_attempts,
            dead_after_ms,
            ..
        } = cmd
        else {
            panic!("not a serve command: {cmd:?}");
        };
        assert_eq!(wal, "/tmp/n1.wal");
        assert!(recover);
        assert_eq!(reconnect_attempts, Some(60));
        assert_eq!(dead_after_ms, Some(20_000));
    }

    #[test]
    fn parses_cluster_with_gate_flag() {
        assert_eq!(
            parse_args(&argv(
                "cluster --tree path9 --inputs a,b,c,d --runs 5 --gate --secret 77"
            ))
            .unwrap(),
            Command::Cluster {
                tree: "path9".into(),
                inputs: "a,b,c,d".into(),
                t: 1,
                seed: 0,
                min_delay: 0.5,
                secret: 77,
                runs: 5,
                gate: true,
                supervise: false,
                chaos: None,
                kill_after_ready: String::new(),
                wal_dir: String::new(),
            }
        );
    }

    #[test]
    fn parses_cluster_supervision_flags() {
        let cmd = parse_args(&argv(
            "cluster --tree path9 --inputs a,b,c,d --supervise --chaos 7 \
             --kill-after-ready 1,3 --wal-dir /tmp/wals",
        ))
        .unwrap();
        let Command::Cluster {
            supervise,
            chaos,
            kill_after_ready,
            wal_dir,
            ..
        } = cmd
        else {
            panic!("not a cluster command: {cmd:?}");
        };
        assert!(supervise);
        assert_eq!(chaos, Some(7));
        assert_eq!(kill_after_ready, "1,3");
        assert_eq!(wal_dir, "/tmp/wals");
    }

    #[test]
    fn cluster_refuses_contradictory_fault_flags() {
        let cluster = |extra: &str| {
            parse_args(&argv(&format!(
                "cluster --tree path9 --inputs v0000,v0003,v0006,v0008 {extra}"
            )))
            .unwrap()
        };
        let err = execute(cluster("--gate --chaos 3"), &mut Vec::new()).unwrap_err();
        assert!(err.contains("incompatible"), "{err}");
        let err = execute(cluster("--kill-after-ready 1"), &mut Vec::new()).unwrap_err();
        assert!(err.contains("--supervise"), "{err}");
        let err =
            execute(cluster("--supervise --kill-after-ready 9"), &mut Vec::new()).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn serve_recover_without_a_wal_is_refused() {
        let err = execute(
            parse_args(&argv(
                "serve --tree path9 --inputs v0000,v0003,v0006,v0008 --party-id 0 --recover",
            ))
            .unwrap(),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.contains("--wal"), "{err}");
    }

    #[test]
    fn serve_rejects_bad_arguments_cleanly() {
        let err = execute(
            Command::Serve {
                tree: "path9".into(),
                inputs: "v0000,v0003,v0006,v0008".into(),
                party_id: 9,
                t: 1,
                seed: 0,
                min_delay: 0.5,
                secret: 0,
                bind: "127.0.0.1:0".into(),
                peers: "x".into(),
                trace_out: String::new(),
                wal: String::new(),
                recover: false,
                reconnect_attempts: None,
                dead_after_ms: None,
            },
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.contains("out of range"), "{err}");

        let err = execute(
            Command::Cluster {
                tree: "path9".into(),
                inputs: "v0000,nope".into(),
                t: 1,
                seed: 0,
                min_delay: 0.5,
                secret: 0,
                runs: 1,
                gate: false,
                supervise: false,
                chaos: None,
                kill_after_ready: String::new(),
                wal_dir: String::new(),
            },
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.contains("unknown vertex label"), "{err}");
    }

    #[test]
    fn outcome_lines_roundtrip_through_the_parser() {
        let o = parse_outcome_line(
            "OUTCOME party=2 vertex=v0003 degraded=true over_budget=true retx=7 vtime=16.000",
        )
        .unwrap();
        assert_eq!(o.party, 2);
        assert_eq!(o.vertex, "v0003");
        assert!(o.degraded && o.over_budget);
        assert_eq!(o.retx, 7);
        assert!(parse_outcome_line("READY").is_err());
        assert!(parse_outcome_line("OUTCOME party=1").is_err());
    }

    #[test]
    fn bounds_prints_the_numbers() {
        let mut out = Vec::new();
        execute(
            Command::Bounds {
                diameter: 1000.0,
                n: 31,
                t: 10,
            },
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Fekete"));
        assert!(text.contains("Theorem 2"));
    }

    #[test]
    fn unknown_vertex_label_is_a_clean_error() {
        let mut buf = Vec::new();
        execute(
            Command::Gen {
                family: "path".into(),
                size: 4,
                dot: false,
                seed: 0,
            },
            &mut buf,
        )
        .unwrap();
        let dir = std::env::temp_dir().join("treeaa-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("labels.tree");
        std::fs::write(&file, &buf).unwrap();
        let err = execute(
            Command::Run {
                tree: file.to_string_lossy().into_owned(),
                inputs: "nope,v0001,v0002,v0003".into(),
                t: 1,
                protocol: "treeaa".into(),
                engine: "gradecast".into(),
                adversary: "none".into(),
                seed: 0,
            },
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.contains("unknown vertex label"), "{err}");
    }
}
