//! Property tests for the kernel contract: every chunked/SIMD kernel is
//! bit-identical to its scalar reference on every input it accepts
//! (NaN-free for the f64 kernels), across the edge shapes the protocol
//! stack actually produces — n ∈ {1, 2, odd, 4096}, dispatch-boundary
//! lengths, signed zeros, and adversarially repeated values.

use aa_kernels::{
    eq_count_u64, eq_count_u64_ref, min_max_f64, min_max_f64_ref, min_max_usize, min_max_usize_ref,
    sum_f64, sum_f64_ref, CHUNK_DISPATCH, LANES,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// The length shapes that matter: tiny, the dispatch boundary ±1, odd
/// sizes that leave a ragged tail, and the full n=4096 scale target.
const EDGE_LENS: [usize; 12] = [
    1,
    2,
    3,
    7,
    CHUNK_DISPATCH - 1,
    CHUNK_DISPATCH,
    CHUNK_DISPATCH + 1,
    CHUNK_DISPATCH + LANES - 1,
    255,
    1021,
    4095,
    4096,
];

/// A NaN-free f64 vector: mixed magnitudes, signed zeros, repeats.
fn arb_floats() -> impl Strategy<Value = Vec<f64>> {
    (0usize..EDGE_LENS.len(), any::<u64>()).prop_map(|(li, seed)| {
        let n = EDGE_LENS[li];
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| match rng.gen_range(0u8..8) {
                0 => 0.0,
                1 => -0.0,
                2 => f64::from(rng.gen_range(-4i32..=4)),
                3 => rng.gen_range(-1.0f64..1.0) * 1e-12,
                4 => rng.gen_range(-1.0f64..1.0) * 1e12,
                _ => rng.gen_range(-1.0f64..1.0),
            })
            .collect()
    })
}

fn arb_usizes() -> impl Strategy<Value = Vec<usize>> {
    (0usize..EDGE_LENS.len(), any::<u64>()).prop_map(|(li, seed)| {
        let n = EDGE_LENS[li];
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0usize..10_000)).collect()
    })
}

/// Tally-shaped input: slot values, candidate values biased to collide
/// with them (the honest all-match fast path plus Byzantine divergence),
/// and a pre-existing count vector.
fn arb_tally() -> impl Strategy<Value = (Vec<u64>, Vec<u64>, Vec<u32>)> {
    (0usize..EDGE_LENS.len(), any::<u64>()).prop_map(|(li, seed)| {
        let n = EDGE_LENS[li];
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let cands: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..16)).collect();
        let vals: Vec<u64> = cands
            .iter()
            .map(|&c| {
                if rng.gen_range(0u8..4) == 0 {
                    rng.gen_range(0u64..16)
                } else {
                    c
                }
            })
            .collect();
        let counts: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..100)).collect();
        (vals, cands, counts)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sum_kernel_is_bit_identical_to_reference(xs in arb_floats()) {
        prop_assert_eq!(sum_f64(&xs).to_bits(), sum_f64_ref(&xs).to_bits());
    }

    #[test]
    fn min_max_f64_kernel_is_bit_identical_to_reference(xs in arb_floats()) {
        let k = min_max_f64(&xs).expect("non-empty");
        let r = min_max_f64_ref(&xs).expect("non-empty");
        prop_assert_eq!(k.0.to_bits(), r.0.to_bits());
        prop_assert_eq!(k.1.to_bits(), r.1.to_bits());
    }

    #[test]
    fn min_max_usize_kernel_matches_reference(xs in arb_usizes()) {
        prop_assert_eq!(min_max_usize(&xs), min_max_usize_ref(&xs));
    }

    #[test]
    fn eq_count_kernel_matches_reference((vals, cands, counts) in arb_tally()) {
        let mut k_counts = counts.clone();
        let mut r_counts = counts;
        let k = eq_count_u64(&vals, &cands, &mut k_counts);
        let r = eq_count_u64_ref(&vals, &cands, &mut r_counts);
        prop_assert_eq!(k, r);
        prop_assert_eq!(k_counts, r_counts);
    }

    #[test]
    fn small_sums_preserve_the_historical_order(seed in any::<u64>()) {
        // Below the dispatch threshold the kernel must reproduce the exact
        // left-to-right fold every pre-scaling call site used.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let n = rng.gen_range(0usize..CHUNK_DISPATCH);
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0f64..1.0)).collect();
        let naive: f64 = xs.iter().sum();
        prop_assert_eq!(sum_f64(&xs).to_bits(), naive.to_bits());
    }
}
