//! Chunked, auto-vectorizable reduction kernels for the AA hot loops.
//!
//! `RealAA`'s trimmed-mean update, the accepted-hull min/max scans, and the
//! batched gradecast tallies all reduce large dense arrays once per party
//! per round. At n = 4096 those reductions dominate the per-round local
//! work, so this crate provides them as *chunked* kernels written so the
//! compiler's auto-vectorizer turns the lane loops into SIMD, plus a
//! `#[cfg]`-gated explicit SSE2 path for the f64 sum on `x86_64` (where it
//! measurably pays and the baseline ISA makes it unconditionally safe).
//!
//! # The kernel contract
//!
//! Every kernel has a scalar reference implementation (`*_ref`) that
//! performs **the same floating-point operations in the same association
//! order**; kernels are *bit-identical* to their references on every input
//! they accept (NaN-free for the f64 kernels). This is what lets the
//! protocol stack adopt them without perturbing a single recorded trace:
//!
//! * Reductions over fewer than [`CHUNK_DISPATCH`] elements use the plain
//!   left-to-right order every pre-existing call site used, so all small
//!   instances (golden traces, the model checker, the fuzz corpus) compute
//!   byte-for-byte the values they always did.
//! * Reductions at or above [`CHUNK_DISPATCH`] elements switch to a fixed
//!   [`LANES`]-accumulator association (lane `j` folds elements
//!   `j, j+LANES, …`; lanes combine pairwise, then the tail folds in
//!   left-to-right). The association is part of the contract — scalar
//!   reference, auto-vectorized chunked loop, and the explicit-SIMD path
//!   all produce identical bits because IEEE-754 addition is deterministic
//!   once the order is fixed.
//!
//! Min/max kernels use strict `<` / `>` comparisons (first extremum wins),
//! never `f64::min`/`f64::max`, so their tie behaviour on `±0.0` is fully
//! specified rather than left to whichever `minnum` lowering the backend
//! picks for a given vector width.

#![warn(missing_docs)]

/// Element count at which the f64 reductions switch from the historical
/// left-to-right order to the chunked [`LANES`]-accumulator order.
///
/// Every pre-scaling workload in this repository (golden traces at
/// n ≤ 64, the aa-check instances at n ≤ 5, the fuzz corpus) reduces
/// fewer elements than this, so the switch cannot perturb any recorded
/// artifact; the n ∈ {1024, 4096} scale path always exceeds it.
pub const CHUNK_DISPATCH: usize = 128;

/// Number of independent accumulator lanes in the chunked f64 kernels
/// (8 f64 lanes = two 256-bit or four 128-bit vector registers).
pub const LANES: usize = 8;

/// Combines 8 lane accumulators pairwise: `((l0+l1)+(l2+l3)) +
/// ((l4+l5)+(l6+l7))`. Shared by every sum path so they agree bitwise.
#[inline]
fn combine_lanes(acc: &[f64; LANES]) -> f64 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Strict left-to-right f64 sum — the historical small-input order.
#[inline]
fn sum_sequential(xs: &[f64]) -> f64 {
    let mut s = 0.0;
    for &x in xs {
        s += x;
    }
    s
}

/// Scalar reference for [`sum_f64`]: same dispatch, same lane association,
/// no explicit SIMD. Kernel and reference are bit-identical on every
/// input.
pub fn sum_f64_ref(xs: &[f64]) -> f64 {
    if xs.len() < CHUNK_DISPATCH {
        return sum_sequential(xs);
    }
    let mut acc = [0.0f64; LANES];
    let chunks = xs.chunks_exact(LANES);
    let tail = chunks.remainder();
    for chunk in chunks {
        // One scalar add per lane per chunk; the auto-vectorizer may or
        // may not vectorize this reference, but either way the operation
        // order — and therefore the result bits — is the same.
        for j in 0..LANES {
            acc[j] += chunk[j];
        }
    }
    let mut s = combine_lanes(&acc);
    for &x in tail {
        s += x;
    }
    s
}

/// Sums `xs` (NaN-free): left-to-right below [`CHUNK_DISPATCH`], the
/// chunked [`LANES`]-lane association at or above it. Bit-identical to
/// [`sum_f64_ref`] everywhere.
pub fn sum_f64(xs: &[f64]) -> f64 {
    if xs.len() < CHUNK_DISPATCH {
        return sum_sequential(xs);
    }
    // SSE2 is part of the x86_64 baseline: no runtime detection needed,
    // the gate is purely an ISA availability cfg.
    #[cfg(target_arch = "x86_64")]
    {
        unsafe { simd::sum_chunked_sse2(xs) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        sum_f64_ref(xs)
    }
}

#[cfg(target_arch = "x86_64")]
mod simd {
    use super::{combine_lanes, LANES};
    use std::arch::x86_64::{_mm_add_pd, _mm_loadu_pd, _mm_setzero_pd, _mm_storeu_pd};

    /// Chunked sum over four 2-wide SSE2 accumulators holding lanes
    /// `(0,1) (2,3) (4,5) (6,7)`; combined through [`combine_lanes`] so
    /// the bits match the scalar reference exactly.
    ///
    /// # Safety
    ///
    /// SSE2 is unconditionally available on `x86_64`; the pointer
    /// arithmetic stays within `xs`.
    pub(super) unsafe fn sum_chunked_sse2(xs: &[f64]) -> f64 {
        let chunks = xs.chunks_exact(LANES);
        let tail = chunks.remainder();
        let mut v = [_mm_setzero_pd(); 4];
        for chunk in chunks {
            let p = chunk.as_ptr();
            for (i, acc) in v.iter_mut().enumerate() {
                *acc = _mm_add_pd(*acc, _mm_loadu_pd(p.add(2 * i)));
            }
        }
        let mut acc = [0.0f64; LANES];
        for (i, reg) in v.iter().enumerate() {
            _mm_storeu_pd(acc.as_mut_ptr().add(2 * i), *reg);
        }
        let mut s = combine_lanes(&acc);
        for &x in tail {
            s += x;
        }
        s
    }
}

/// Scalar reference for [`min_max_f64`]: one strict-comparison pass,
/// first extremum wins. NaN-free inputs only (a NaN never compares `<`
/// or `>`, so it would simply be skipped — callers enforce finiteness).
pub fn min_max_f64_ref(xs: &[f64]) -> Option<(f64, f64)> {
    let (&first, rest) = xs.split_first()?;
    let mut lo = first;
    let mut hi = first;
    for &x in rest {
        if x < lo {
            lo = x;
        }
        if x > hi {
            hi = x;
        }
    }
    Some((lo, hi))
}

/// Min and max of `xs` (NaN-free) in one chunked pass, or `None` on empty
/// input. Bit-identical to [`min_max_f64_ref`]: strict comparisons are
/// order-insensitive on totally ordered inputs, and ties (equal bits, or
/// `±0.0` which never satisfies `<`/`>` against its twin) keep the
/// earliest element in both implementations.
pub fn min_max_f64(xs: &[f64]) -> Option<(f64, f64)> {
    if xs.len() < CHUNK_DISPATCH {
        return min_max_f64_ref(xs);
    }
    let mut lo = [xs[0]; LANES];
    let mut hi = [xs[0]; LANES];
    let chunks = xs.chunks_exact(LANES);
    let tail = chunks.remainder();
    for chunk in chunks {
        for j in 0..LANES {
            let x = chunk[j];
            if x < lo[j] {
                lo[j] = x;
            }
            if x > hi[j] {
                hi[j] = x;
            }
        }
    }
    let mut l = lo[0];
    let mut h = hi[0];
    for j in 1..LANES {
        if lo[j] < l {
            l = lo[j];
        }
        if hi[j] > h {
            h = hi[j];
        }
    }
    for &x in tail {
        if x < l {
            l = x;
        }
        if x > h {
            h = x;
        }
    }
    // `±0.0` caveat: strict comparisons never distinguish the signed
    // zeros, so when zero is an extremum both implementations keep the
    // *first* zero they visit — and the lane traversal visits elements in
    // a different order than the reference. Canonicalize to the first
    // zero in slice order (what the reference reports) so the
    // bit-identity contract stays unconditional.
    if l == 0.0 {
        l = first_zero(xs);
    }
    if h == 0.0 {
        h = first_zero(xs);
    }
    Some((l, h))
}

/// First signed zero in slice order — the bit pattern the sequential
/// reference reports when zero is an extremum.
fn first_zero(xs: &[f64]) -> f64 {
    xs.iter().copied().find(|&x| x == 0.0).unwrap_or(0.0)
}

/// Scalar reference for [`min_max_usize`].
pub fn min_max_usize_ref(xs: &[usize]) -> Option<(usize, usize)> {
    let (&first, rest) = xs.split_first()?;
    let mut lo = first;
    let mut hi = first;
    for &x in rest {
        if x < lo {
            lo = x;
        }
        if x > hi {
            hi = x;
        }
    }
    Some((lo, hi))
}

/// Min and max of a position slice in one chunked pass, or `None` on
/// empty input. Integer comparisons are exact, so kernel and reference
/// agree on every input unconditionally.
pub fn min_max_usize(xs: &[usize]) -> Option<(usize, usize)> {
    if xs.len() < CHUNK_DISPATCH {
        return min_max_usize_ref(xs);
    }
    let mut lo = [xs[0]; LANES];
    let mut hi = [xs[0]; LANES];
    let chunks = xs.chunks_exact(LANES);
    let tail = chunks.remainder();
    for chunk in chunks {
        for j in 0..LANES {
            let x = chunk[j];
            lo[j] = lo[j].min(x);
            hi[j] = hi[j].max(x);
        }
    }
    let mut l = lo[0];
    let mut h = hi[0];
    for j in 1..LANES {
        l = l.min(lo[j]);
        h = h.max(hi[j]);
    }
    for &x in tail {
        l = l.min(x);
        h = h.max(x);
    }
    Some((l, h))
}

/// Scalar reference for [`eq_count_u64`].
pub fn eq_count_u64_ref(vals: &[u64], cands: &[u64], counts: &mut [u32]) -> usize {
    assert_eq!(vals.len(), cands.len());
    assert_eq!(vals.len(), counts.len());
    let mut mismatches = 0;
    for i in 0..vals.len() {
        if vals[i] == cands[i] {
            counts[i] += 1;
        } else {
            mismatches += 1;
        }
    }
    mismatches
}

/// The batched-gradecast tally kernel: for every slot `i`, increments
/// `counts[i]` when `vals[i] == cands[i]`, and returns how many slots
/// mismatched (0 on the honest fast path, telling the caller it can skip
/// the slow per-slot divergence handling entirely).
///
/// Branch-free over [`LANES`]-wide chunks so the auto-vectorizer turns
/// the compare/accumulate into packed integer ops; exact (integer)
/// semantics, so kernel ≡ reference on every input.
///
/// # Panics
///
/// Panics if the three slices differ in length.
pub fn eq_count_u64(vals: &[u64], cands: &[u64], counts: &mut [u32]) -> usize {
    assert_eq!(vals.len(), cands.len());
    assert_eq!(vals.len(), counts.len());
    let n = vals.len();
    let mut mismatches = 0usize;
    let mut i = 0;
    while i + LANES <= n {
        for j in 0..LANES {
            let eq = vals[i + j] == cands[i + j];
            counts[i + j] += u32::from(eq);
            mismatches += usize::from(!eq);
        }
        i += LANES;
    }
    while i < n {
        let eq = vals[i] == cands[i];
        counts[i] += u32::from(eq);
        mismatches += usize::from(!eq);
        i += 1;
    }
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton_edges() {
        assert_eq!(sum_f64(&[]), 0.0);
        assert_eq!(sum_f64(&[2.5]), 2.5);
        assert_eq!(min_max_f64(&[]), None);
        assert_eq!(min_max_f64(&[7.0]), Some((7.0, 7.0)));
        assert_eq!(min_max_usize(&[]), None);
        assert_eq!(min_max_usize(&[3]), Some((3, 3)));
    }

    #[test]
    fn small_sum_is_left_to_right() {
        // 0.1 + 0.2 + 0.3 depends on association; the small path must use
        // the historical left-to-right order exactly.
        let xs = [0.1, 0.2, 0.3];
        assert_eq!(sum_f64(&xs).to_bits(), ((0.1f64 + 0.2) + 0.3).to_bits());
    }

    #[test]
    fn large_sum_matches_reference_bits() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 1e3).collect();
        assert_eq!(sum_f64(&xs).to_bits(), sum_f64_ref(&xs).to_bits());
    }

    #[test]
    fn large_sum_uses_the_lane_association() {
        let xs: Vec<f64> = (0..CHUNK_DISPATCH).map(|i| 0.1 * i as f64).collect();
        let mut acc = [0.0f64; LANES];
        for chunk in xs.chunks_exact(LANES) {
            for j in 0..LANES {
                acc[j] += chunk[j];
            }
        }
        assert_eq!(sum_f64(&xs).to_bits(), combine_lanes(&acc).to_bits());
    }

    #[test]
    fn min_max_finds_extrema_wherever_they_sit() {
        for pos in [0usize, 1, 200, 255] {
            let mut xs = vec![5.0; 256];
            xs[pos] = -9.0;
            xs[255 - pos] = 9.0;
            let (lo, hi) = min_max_f64(&xs).unwrap();
            assert_eq!((lo, hi), (-9.0, 9.0));
        }
    }

    #[test]
    fn signed_zero_min_is_canonical() {
        let mut xs = vec![1.0; 300];
        xs[13] = 0.0;
        xs[250] = -0.0;
        let (lo, _) = min_max_f64(&xs).unwrap();
        let (rlo, _) = min_max_f64_ref(&xs).unwrap();
        assert_eq!(lo.to_bits(), rlo.to_bits());
    }

    #[test]
    fn eq_count_counts_and_reports_mismatches() {
        let vals = [1u64, 2, 3, 4, 5, 6, 7, 8, 9];
        let cands = [1u64, 0, 3, 4, 5, 0, 7, 8, 9];
        let mut counts = [0u32; 9];
        let mism = eq_count_u64(&vals, &cands, &mut counts);
        assert_eq!(mism, 2);
        assert_eq!(counts, [1, 0, 1, 1, 1, 0, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn eq_count_rejects_length_mismatch() {
        let mut counts = [0u32; 2];
        let _ = eq_count_u64(&[1, 2, 3], &[1, 2, 3], &mut counts);
    }
}
