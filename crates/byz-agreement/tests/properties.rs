//! Property tests for phase-king BA: Agreement always; strong-unanimity
//! Validity; both under chaos, equivocation, and crash faults.

use byz_agreement::{BaMsg, PhaseKingConfig, PhaseKingParty};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sim_net::{
    run_simulation, AdversaryCtx, CrashAdversary, PartyId, ScriptedAdversary, SimConfig,
};

fn scenario(seed: u64) -> (usize, usize, Vec<u64>, Vec<PartyId>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let t = rng.gen_range(1..=3usize);
    let n = 3 * t + 1 + rng.gen_range(0..2usize);
    let unanimous = rng.gen_bool(0.3);
    let base = rng.gen_range(0..50u64);
    let inputs: Vec<u64> = (0..n)
        .map(|_| {
            if unanimous {
                base
            } else {
                rng.gen_range(0..50)
            }
        })
        .collect();
    let nbad = rng.gen_range(0..=t);
    let mut ids: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    let byz = ids[..nbad].iter().map(|&i| PartyId(i)).collect();
    (n, t, inputs, byz)
}

fn chaos(byz: Vec<PartyId>, seed: u64) -> impl FnMut(&mut AdversaryCtx<'_, BaMsg<u64>>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    move |ctx| {
        if ctx.round() == 1 {
            for &b in &byz {
                ctx.corrupt(b).expect("within budget");
            }
        }
        let n = ctx.n();
        let phase = (ctx.round() - 1) / 3;
        for &b in &byz {
            for to in 0..n {
                let v = rng.gen_range(0..60u64);
                let msg = match rng.gen_range(0..4) {
                    0 => BaMsg::Exchange { phase, value: v },
                    1 => BaMsg::Propose {
                        phase,
                        proposal: Some(v),
                    },
                    2 => BaMsg::Propose {
                        phase,
                        proposal: None,
                    },
                    _ => BaMsg::King { phase, value: v },
                };
                ctx.send(b, PartyId(to), msg);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn agreement_and_unanimity_under_chaos(seed in any::<u64>()) {
        let (n, t, inputs, byz) = scenario(seed);
        let cfg = PhaseKingConfig::new(n, t).unwrap();
        let adv = ScriptedAdversary(chaos(byz.clone(), seed));
        let report = run_simulation(
            SimConfig { n, t, max_rounds: cfg.rounds() + 5 },
            |id, _| PhaseKingParty::new(id, cfg, inputs[id.index()]),
            adv,
        ).unwrap();
        let outs = report.honest_outputs();
        let first = outs[0];
        prop_assert!(outs.iter().all(|&v| v == first), "agreement violated: {outs:?}");

        // Strong unanimity: if honest inputs all equal, output equals them.
        let honest_inputs: Vec<u64> = (0..n)
            .filter(|i| !byz.iter().any(|b| b.index() == *i))
            .map(|i| inputs[i])
            .collect();
        let all_same = honest_inputs.windows(2).all(|w| w[0] == w[1]);
        if all_same {
            prop_assert_eq!(first, honest_inputs[0], "unanimity validity violated");
        }
    }

    #[test]
    fn agreement_under_crashes(seed in any::<u64>()) {
        let (n, t, inputs, byz) = scenario(seed);
        let cfg = PhaseKingConfig::new(n, t).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xBEEF);
        let crashes = byz.iter().map(|&p| (p, rng.gen_range(1..=cfg.rounds()))).collect();
        let report = run_simulation(
            SimConfig { n, t, max_rounds: cfg.rounds() + 5 },
            |id, _| PhaseKingParty::new(id, cfg, inputs[id.index()]),
            CrashAdversary { crashes },
        ).unwrap();
        let outs = report.honest_outputs();
        let first = outs[0];
        prop_assert!(outs.iter().all(|&v| v == first), "agreement violated: {outs:?}");
        // Under crash (non-equivocating) faults the decision is always one
        // of the input values.
        prop_assert!(inputs.contains(&first), "decided {first}, inputs {inputs:?}");
    }
}
