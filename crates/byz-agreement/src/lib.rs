//! Phase-king Byzantine Agreement — the *exact* consensus primitive whose
//! `Θ(t) = Θ(n)` round cost is precisely what the paper's `PathsFinder`
//! subprotocol avoids.
//!
//! Section 6 of the reproduced paper opens with the observation that
//! finding a common path through the honest inputs' hull "comes down to
//! solving Byzantine Agreement", which "would require `t + 1 = O(n)`
//! communication rounds, which generally prevents us from achieving our
//! round complexity goal" — motivating *approximate* agreement on paths
//! instead. This crate implements that alternative so the trade-off can be
//! measured (experiment E12): the classic **phase-king** protocol of
//! Berman, Garay and Perry, which reaches exact agreement on arbitrary
//! (ordered) values with `t < n/3` and no cryptography in
//! `3·(t + 1)` rounds — matching the `Ω(t)` round lower bound for
//! deterministic BA up to the constant.
//!
//! # Protocol
//!
//! `t + 1` phases, one per king (parties `0..=t`); each phase has three
//! rounds:
//!
//! 1. **Exchange.** Broadcast the current value `v`. If one value was
//!    received `≥ n − t` times, *propose* it (else propose nothing).
//! 2. **Proposals.** Broadcast the proposal. At most one value can be
//!    proposed by any honest party (two would need `2(n − t) > n` round-1
//!    votes); let `B` be the value with the most proposals, `c` its count.
//! 3. **King.** The phase's king broadcasts its own candidate (its `B` if
//!    `c_king ≥ t + 1`, else its current value). A party keeps `B` if
//!    `c ≥ n − t`, otherwise it adopts the king's value.
//!
//! If any honest party keeps `B` (`c ≥ n − t`), then `≥ n − 2t ≥ t + 1`
//! honest parties proposed `B`, so every honest party — the king included —
//! sees `c ≥ t + 1` and the (honest) king broadcasts that same `B`: keepers
//! and adopters agree. If no honest party keeps, everyone adopts the
//! honest king's single value. Either way an honest-king phase ends in
//! agreement, and agreement persists (unanimous values are re-proposed by
//! everyone forever after). One of the `t + 1` kings must be honest.
//!
//! **Validity is strong unanimity only**: if honest inputs are unanimous
//! the output is that input, but with divergent honest inputs the decided
//! value may originate from a Byzantine king. This is exactly why exact BA
//! is *not* a drop-in replacement for `PathsFinder` even if its round cost
//! were acceptable: AA on trees needs convex validity, which unanimity
//! does not provide. See `decided_value_can_be_byzantine` in the tests.
//!
//! # Example
//!
//! ```
//! use byz_agreement::{PhaseKingConfig, PhaseKingParty};
//! use sim_net::{run_simulation, Passive, SimConfig};
//!
//! let cfg = PhaseKingConfig::new(4, 1).unwrap();
//! let inputs = [7u64, 7, 7, 7];
//! let report = run_simulation(
//!     SimConfig { n: 4, t: 1, max_rounds: cfg.rounds() + 5 },
//!     |id, _| PhaseKingParty::new(id, cfg, inputs[id.index()]),
//!     Passive,
//! ).unwrap();
//! assert!(report.honest_outputs().iter().all(|&v| v == 7)); // unanimity
//! ```

#![warn(missing_docs)]
use std::collections::BTreeMap;

use sim_net::{Inbox, PartyId, Payload, Protocol, RoundCtx};

/// Public parameters of a phase-king execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseKingConfig {
    /// Number of parties.
    pub n: usize,
    /// Corruption bound; requires `t < n/3`.
    pub t: usize,
}

impl PhaseKingConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated precondition if `n ≤ 3t`.
    pub fn new(n: usize, t: usize) -> Result<Self, String> {
        if n <= 3 * t {
            return Err(format!("phase king requires n > 3t, got n = {n}, t = {t}"));
        }
        Ok(PhaseKingConfig { n, t })
    }

    /// Number of phases (`t + 1` kings).
    pub fn phases(&self) -> u32 {
        self.t as u32 + 1
    }

    /// Total communication rounds (3 per phase).
    pub fn rounds(&self) -> u32 {
        3 * self.phases()
    }
}

/// A phase-king wire message, tagged with its phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BaMsg<V> {
    /// Round 1 of a phase: the sender's current value.
    Exchange {
        /// Phase index (0-based).
        phase: u32,
        /// Current value.
        value: V,
    },
    /// Round 2: the sender's proposal (a value seen `≥ n − t` times), if
    /// any.
    Propose {
        /// Phase index (0-based).
        phase: u32,
        /// The proposal; `None` encodes "no value dominated".
        proposal: Option<V>,
    },
    /// Round 3: the king's candidate.
    King {
        /// Phase index (0-based).
        phase: u32,
        /// The king's value.
        value: V,
    },
}

impl<V: Payload> Payload for BaMsg<V> {
    /// Wire size: 1 tag byte + 4 phase bytes + the value's own wire size
    /// (plus 1 option byte for proposals). Delegating to `V::size_bytes`
    /// counts heap payloads (strings, vectors) at their real size instead
    /// of `size_of::<V>()`'s shallow stack footprint.
    fn size_bytes(&self) -> usize {
        5 + match self {
            BaMsg::Exchange { value, .. } | BaMsg::King { value, .. } => value.size_bytes(),
            BaMsg::Propose { proposal, .. } => 1 + proposal.as_ref().map_or(0, Payload::size_bytes),
        }
    }
}

/// One party of the phase-king protocol over any ordered value type.
#[derive(Clone, Debug)]
pub struct PhaseKingParty<V> {
    cfg: PhaseKingConfig,
    me: PartyId,
    value: V,
    /// This phase's proposal-count leader (set in round 2).
    best: Option<(V, usize)>,
    /// This party's own proposal this phase.
    my_proposal: Option<V>,
    output: Option<V>,
}

impl<V: Clone + Ord + std::fmt::Debug> PhaseKingParty<V> {
    /// Creates the party with its input.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range.
    pub fn new(me: PartyId, cfg: PhaseKingConfig, input: V) -> Self {
        assert!(me.index() < cfg.n, "party id out of range");
        PhaseKingParty {
            cfg,
            me,
            value: input,
            best: None,
            my_proposal: None,
            output: None,
        }
    }

    /// Tallies one value per sender (first message wins) for the expected
    /// phase, returning value → distinct-sender count.
    fn tally<'a, T: Clone + Ord + 'a>(
        &self,
        inbox: impl Iterator<Item = (PartyId, &'a T)>,
    ) -> BTreeMap<T, usize> {
        let mut seen = vec![false; self.cfg.n];
        let mut counts: BTreeMap<T, usize> = BTreeMap::new();
        for (from, v) in inbox {
            if !seen[from.index()] {
                seen[from.index()] = true;
                *counts.entry(v.clone()).or_insert(0) += 1;
            }
        }
        counts
    }
}

impl<V: Payload + Ord> Protocol for PhaseKingParty<V> {
    type Msg = BaMsg<V>;
    type Output = V;

    fn step(&mut self, round: u32, inbox: &Inbox<BaMsg<V>>, ctx: &mut RoundCtx<BaMsg<V>>) {
        if self.output.is_some() {
            return;
        }
        let phase = (round - 1) / 3;
        let stage = (round - 1) % 3;
        match stage {
            0 => {
                // Finish the previous phase (process the king round).
                if phase > 0 {
                    // Only the authenticated king of the previous phase
                    // counts; the engine stamps senders, so a Byzantine
                    // non-king cannot forge a King message.
                    let prev_king = PartyId(((phase - 1) as usize) % self.cfg.n);
                    let king_value = inbox.iter().filter(|e| e.from == prev_king).find_map(|e| {
                        match &e.payload {
                            BaMsg::King { phase: p, value } if *p == phase - 1 => {
                                Some(value.clone())
                            }
                            _ => None,
                        }
                    });
                    // Keep own B at the strong threshold, else adopt king.
                    let keep = self
                        .best
                        .as_ref()
                        .filter(|(_, c)| *c >= self.cfg.n - self.cfg.t)
                        .map(|(v, _)| v.clone());
                    let kept_own = keep.is_some();
                    let king_spoke = king_value.is_some();
                    if let Some(b) = keep {
                        self.value = b;
                    } else if let Some(kv) = king_value {
                        self.value = kv;
                    }
                    // else: Byzantine king said nothing; keep current value.
                    ctx.emit_with(|| {
                        sim_net::ProtoEvent::new("pk.phase")
                            .u64("phase", u64::from(phase - 1))
                            .u64("king", prev_king.index() as u64)
                            .bool("kept_own", kept_own)
                            .bool("king_spoke", king_spoke)
                            .str("value", &format!("{:?}", self.value))
                    });
                    if phase >= self.cfg.phases() {
                        self.output = Some(self.value.clone());
                        return;
                    }
                }
                ctx.broadcast(BaMsg::Exchange {
                    phase,
                    value: self.value.clone(),
                });
            }
            1 => {
                let counts = self.tally(inbox.iter().filter_map(|e| match &e.payload {
                    BaMsg::Exchange { phase: p, value } if *p == phase => Some((e.from, value)),
                    _ => None,
                }));
                self.my_proposal = counts
                    .iter()
                    .find(|&(_, &c)| c >= self.cfg.n - self.cfg.t)
                    .map(|(v, _)| v.clone());
                ctx.broadcast(BaMsg::Propose {
                    phase,
                    proposal: self.my_proposal.clone(),
                });
            }
            _ => {
                let counts = self.tally(inbox.iter().filter_map(|e| match &e.payload {
                    BaMsg::Propose {
                        phase: p,
                        proposal: Some(v),
                    } if *p == phase => Some((e.from, v)),
                    _ => None,
                }));
                self.best = counts
                    .into_iter()
                    .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)));
                // The king broadcasts its candidate.
                if self.me.index() == (phase as usize) % self.cfg.n {
                    let candidate = self
                        .best
                        .as_ref()
                        .filter(|(_, c)| *c > self.cfg.t)
                        .map(|(v, _)| v.clone())
                        .unwrap_or_else(|| self.value.clone());
                    ctx.broadcast(BaMsg::King {
                        phase,
                        value: candidate,
                    });
                }
            }
        }
    }

    fn output(&self) -> Option<V> {
        self.output.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_net::{run_simulation, AdversaryCtx, Passive, SimConfig, StaticByzantine};

    fn run_honest(n: usize, t: usize, inputs: &[u64]) -> Vec<u64> {
        let cfg = PhaseKingConfig::new(n, t).unwrap();
        let report = run_simulation(
            SimConfig {
                n,
                t,
                max_rounds: cfg.rounds() + 5,
            },
            |id, _| PhaseKingParty::new(id, cfg, inputs[id.index()]),
            Passive,
        )
        .unwrap();
        report.honest_outputs()
    }

    #[test]
    fn message_sizes_count_heap_payloads() {
        // 1 tag + 4 phase + real value size (not size_of::<V>()).
        let e = BaMsg::Exchange {
            phase: 0,
            value: "x".repeat(100),
        };
        assert_eq!(e.size_bytes(), 105);
        let none: BaMsg<String> = BaMsg::Propose {
            phase: 0,
            proposal: None,
        };
        assert_eq!(none.size_bytes(), 6);
        let some = BaMsg::Propose {
            phase: 0,
            proposal: Some("ab".to_string()),
        };
        assert_eq!(some.size_bytes(), 8);
        let king = BaMsg::King {
            phase: 1,
            value: 7u64,
        };
        assert_eq!(king.size_bytes(), 13);
    }

    #[test]
    fn unanimity_is_preserved() {
        let outs = run_honest(7, 2, &[5, 5, 5, 5, 5, 5, 5]);
        assert!(outs.iter().all(|&v| v == 5));
    }

    #[test]
    fn agreement_with_divergent_inputs() {
        let outs = run_honest(7, 2, &[1, 2, 3, 4, 5, 6, 7]);
        let first = outs[0];
        assert!(outs.iter().all(|&v| v == first), "{outs:?}");
    }

    #[test]
    fn rounds_are_three_per_phase() {
        let cfg = PhaseKingConfig::new(10, 3).unwrap();
        assert_eq!(cfg.rounds(), 12);
        let inputs: Vec<u64> = (0..10).collect();
        let report = run_simulation(
            SimConfig {
                n: 10,
                t: 3,
                max_rounds: cfg.rounds() + 5,
            },
            |id, _| PhaseKingParty::new(id, cfg, inputs[id.index()]),
            Passive,
        )
        .unwrap();
        // Final phase's king round is round 3(t+1); processing happens one
        // round later without sends.
        assert_eq!(report.communication_rounds(), cfg.rounds());
    }

    #[test]
    fn agreement_under_equivocating_byzantine() {
        let n = 7;
        let t = 2;
        let cfg = PhaseKingConfig::new(n, t).unwrap();
        let inputs: Vec<u64> = vec![10, 20, 10, 20, 10, 0, 0];
        let adv = StaticByzantine {
            parties: vec![PartyId(5), PartyId(6)],
            behave: |ctx: &mut AdversaryCtx<'_, BaMsg<u64>>| {
                let round = ctx.round();
                let phase = (round - 1) / 3;
                let stage = (round - 1) % 3;
                for b in [5usize, 6] {
                    for to in 0..7 {
                        let v = if to % 2 == 0 { 10 } else { 20 };
                        let msg = match stage {
                            0 => BaMsg::Exchange { phase, value: v },
                            1 => BaMsg::Propose {
                                phase,
                                proposal: Some(v),
                            },
                            _ => BaMsg::King { phase, value: v },
                        };
                        ctx.send(PartyId(b), PartyId(to), msg);
                    }
                }
            },
        };
        let report = run_simulation(
            SimConfig {
                n,
                t,
                max_rounds: cfg.rounds() + 5,
            },
            |id, _| PhaseKingParty::new(id, cfg, inputs[id.index()]),
            adv,
        )
        .unwrap();
        let outs = report.honest_outputs();
        let first = outs[0];
        assert!(
            outs.iter().all(|&v| v == first),
            "agreement violated: {outs:?}"
        );
        assert!(
            first == 10 || first == 20,
            "decided a value nobody held: {first}"
        );
    }

    /// The weak-validity caveat the crate docs call out: with divergent
    /// honest inputs a Byzantine king can impose an arbitrary value. This
    /// is a *feature test* documenting why exact BA cannot replace
    /// PathsFinder for convex validity.
    #[test]
    fn decided_value_can_be_byzantine() {
        let n = 4;
        let t = 1;
        let cfg = PhaseKingConfig::new(n, t).unwrap();
        // Party 0 is the first king and Byzantine; honest inputs diverge.
        let inputs: Vec<u64> = vec![0, 1, 2, 3];
        let adv = StaticByzantine {
            parties: vec![PartyId(0)],
            behave: |ctx: &mut AdversaryCtx<'_, BaMsg<u64>>| {
                let round = ctx.round();
                let phase = (round - 1) / 3;
                let stage = (round - 1) % 3;
                // Behave consistently (so later phases persist) but push
                // the planted value 999 as king of phase 0.
                let msg = match stage {
                    0 => BaMsg::Exchange {
                        phase,
                        value: 999u64,
                    },
                    1 => BaMsg::Propose {
                        phase,
                        proposal: None,
                    },
                    _ => BaMsg::King { phase, value: 999 },
                };
                for to in 0..4 {
                    ctx.send(PartyId(0), PartyId(to), msg.clone());
                }
            },
        };
        let report = run_simulation(
            SimConfig {
                n,
                t,
                max_rounds: cfg.rounds() + 5,
            },
            |id, _| PhaseKingParty::new(id, cfg, inputs[id.index()]),
            adv,
        )
        .unwrap();
        let outs = report.honest_outputs();
        let first = outs[0];
        assert!(
            outs.iter().all(|&v| v == first),
            "agreement must still hold"
        );
        assert_eq!(
            first, 999,
            "the Byzantine king's value wins under divergent inputs"
        );
    }

    #[test]
    fn config_rejects_too_many_faults() {
        assert!(PhaseKingConfig::new(6, 2).is_err());
        assert!(PhaseKingConfig::new(7, 2).is_ok());
    }

    #[test]
    fn works_with_string_values() {
        let cfg = PhaseKingConfig::new(4, 1).unwrap();
        let inputs = ["apple", "apple", "apple", "apple"];
        let report = run_simulation(
            SimConfig {
                n: 4,
                t: 1,
                max_rounds: cfg.rounds() + 5,
            },
            |id, _| PhaseKingParty::new(id, cfg, inputs[id.index()].to_string()),
            Passive,
        )
        .unwrap();
        assert!(report.honest_outputs().iter().all(|v| v == "apple"));
    }
}
