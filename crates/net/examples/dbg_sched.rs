//! Debug harness: runs one loopback cluster and dumps stats.
use net::{run_local_cluster, GateCase};

const SPIDER9: &str =
    "vertex 0\nvertex 1\nvertex 2\nvertex 3\nvertex 4\nvertex 5\nvertex 6\nvertex 7\nvertex 8\n\
edge 0 1\nedge 1 2\nedge 2 3\nedge 2 4\nedge 4 5\nedge 0 6\nedge 6 7\nedge 7 8\n";

fn main() {
    let seed: u64 = std::env::args().nth(1).unwrap().parse().unwrap();
    let secret: u64 = std::env::args().nth(2).unwrap().parse().unwrap();
    let picks = [
        (seed % 9) as usize,
        (seed * 3 + 1) as usize % 9,
        (seed * 5 + 4) as usize % 9,
        (seed * 7 + 2) as usize % 9,
    ];
    let case = GateCase::from_text(SPIDER9, &picks, 1, seed).expect("valid case");
    let r = run_local_cluster(&case, secret).expect("cluster");
    println!("vtimes {:?}", r.vtimes);
    println!("outcomes {:?}", r.outcomes);
    for (i, s) in r.stats.iter().enumerate() {
        println!(
            "node {i}: retx={} rej_mac={} rej_replay={} rej_malformed={} reconnects={} send_drops={} dead={}",
            s.retransmissions, s.rejected_mac, s.rejected_replay, s.rejected_malformed,
            s.reconnects, s.send_drops, s.dead_peers
        );
    }
}
