//! Write-ahead log for durable `serve` nodes.
//!
//! Each node appends its protocol-relevant state transitions — the
//! configuration header, `wire_seq` reservation watermarks, every
//! processed event (with the raw body for remote deliveries), and
//! periodic integrity marks — so that a SIGKILL'd process can be
//! restarted with `--recover` and deterministically replay itself back
//! to the exact pre-crash state (see `node::run_node_durable`).
//!
//! # On-disk format
//!
//! A WAL is a flat sequence of records. Each record is
//!
//! ```text
//! [u32 BE payload length][payload][u64 LE FNV-1a of payload]
//! ```
//!
//! where the payload is the canonical `aa-codec` JSON rendering of the
//! record (insertion-ordered objects, shortest-roundtrip floats), the
//! same encoding the trace files use. All 64-bit quantities — sequence
//! numbers, float bit patterns, fingerprints — are hex strings inside
//! the JSON, because canonical JSON integers are only exact up to 2⁵³.
//!
//! # Reopen policy
//!
//! * A **torn tail** (the file ends mid-record, because the process was
//!   killed mid-`write`) is not an error: the reader stops at the last
//!   complete record and reports the valid prefix length, and reopening
//!   for append truncates the torn bytes away.
//! * A **complete record whose checksum does not match** is a hard
//!   [`WalError::Checksum`]: the log is corrupt, not merely torn, and
//!   recovery must not guess.
//! * A length prefix announcing more than [`MAX_WAL_RECORD`] bytes is a
//!   hard [`WalError::Oversized`] — the standard babbling-stream guard,
//!   mirroring the frame layer's `MAX_FRAME`.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use aa_trace::{fnv1a_64, Json};

/// Hard cap on a single WAL record's JSON payload (4 MiB: a remote
/// event's hex-encoded body can be twice `MAX_FRAME`, plus framing).
pub const MAX_WAL_RECORD: usize = 1 << 22;

/// A typed WAL failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalError {
    /// An underlying filesystem error.
    Io(String),
    /// A length prefix announced more than [`MAX_WAL_RECORD`] bytes.
    Oversized {
        /// Byte offset of the offending record.
        offset: u64,
        /// The announced payload length.
        announced: usize,
    },
    /// A complete record's checksum did not match its payload.
    Checksum {
        /// Byte offset of the corrupt record.
        offset: u64,
    },
    /// A record decoded but is not valid WAL JSON.
    Malformed {
        /// Byte offset of the malformed record.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
    /// The log disagrees with the run it is being replayed into
    /// (wrong config fingerprint, diverged replay, bad mark).
    Mismatch(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Oversized { offset, announced } => write!(
                f,
                "wal record at byte {offset} announces {announced} bytes > max {MAX_WAL_RECORD}"
            ),
            WalError::Checksum { offset } => {
                write!(f, "wal record at byte {offset} fails its checksum")
            }
            WalError::Malformed { offset, reason } => {
                write!(f, "wal record at byte {offset} is malformed: {reason}")
            }
            WalError::Mismatch(e) => write!(f, "wal mismatch: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e.to_string())
    }
}

/// The run-identifying header, always the first record of a WAL.
#[derive(Clone, Debug, PartialEq)]
pub struct WalHeader {
    /// The cluster configuration fingerprint (must match at recovery).
    pub config_fp: u64,
    /// This node's party index.
    pub me: usize,
    /// Number of parties.
    pub n: usize,
    /// Corruption bound.
    pub t: usize,
    /// Delay-schedule seed.
    pub seed: u64,
    /// Bit pattern of the minimum link delay.
    pub min_delay_bits: u64,
    /// Wire protocol version the run started under.
    pub wire_version: u32,
    /// Trace label.
    pub label: String,
}

/// Payload of a remote `Data` delivery inside a [`WalRecord::Event`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRemote {
    /// The sending party.
    pub from: usize,
    /// The link-local Data ordinal (feeds the delay schedule).
    pub lseq: u64,
    /// Bit pattern of the sender's virtual send time.
    pub vsend_bits: u64,
    /// The raw message body, exactly as it arrived.
    pub body: Vec<u8>,
}

/// One processed event: the virtual-time key it was popped at, plus the
/// remote payload when the event came off the wire (local timers and
/// self-deliveries are regenerated by replay and need no payload).
#[derive(Clone, Debug, PartialEq)]
pub struct WalEvent {
    /// Bit pattern of the event's virtual time.
    pub time_bits: u64,
    /// VKey class (0 = delivery, 1 = timer).
    pub class: u8,
    /// VKey tiebreaker `a` (sender / owning party).
    pub a: u64,
    /// VKey tiebreaker `b` (receiver / timer set-time ordinal).
    pub b: u64,
    /// VKey tiebreaker `c` (lseq / timer token).
    pub c: u64,
    /// Present iff the event is a remote delivery.
    pub remote: Option<WalRemote>,
}

/// A periodic integrity mark: after `events` processed events at
/// virtual time `time_bits`, the protocol-state probe (the `Reliable`
/// sublayer's structural fingerprint) read `probe`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalMark {
    /// Bit pattern of the virtual time of the mark.
    pub time_bits: u64,
    /// Number of events processed so far.
    pub events: u64,
    /// Protocol-state fingerprint at this point.
    pub probe: u64,
}

/// One WAL record.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// The run-identifying header (first record).
    Header(WalHeader),
    /// `wire_seq` reservation: sequence numbers below `upto` on the
    /// directed link to `peer` may already be on the wire. Appended
    /// *before* any frame in the block is sent, so a recovered node
    /// resumes past every sequence number a peer might have seen.
    Reserve {
        /// The destination peer.
        peer: usize,
        /// Exclusive upper bound of the reserved block.
        upto: u64,
    },
    /// A processed protocol event.
    Event(WalEvent),
    /// A periodic integrity mark.
    Mark(WalMark),
}

fn hx(x: u64) -> Json {
    Json::Str(format!("{x:016x}"))
}

fn hex_bytes(bytes: &[u8]) -> Json {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    Json::Str(s)
}

fn req_hx(json: &Json, key: &str) -> Result<u64, String> {
    let s = json
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing hex field `{key}`"))?;
    u64::from_str_radix(s, 16).map_err(|_| format!("field `{key}` is not hex: `{s}`"))
}

fn req_int(json: &Json, key: &str) -> Result<u64, String> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer field `{key}`"))
}

fn req_hex_bytes(json: &Json, key: &str) -> Result<Vec<u8>, String> {
    let s = json
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing byte field `{key}`"))?;
    if s.len() % 2 != 0 {
        return Err(format!("field `{key}` has odd hex length"));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|_| format!("field `{key}` is not hex at byte {i}"))
        })
        .collect()
}

impl WalRecord {
    /// Canonical JSON for this record.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = Vec::new();
        let mut put = |k: &str, v: Json| fields.push((k.to_string(), v));
        match self {
            WalRecord::Header(h) => {
                put("k", Json::Str("hdr".into()));
                put("fp", hx(h.config_fp));
                put("me", Json::int(h.me as u64));
                put("n", Json::int(h.n as u64));
                put("t", Json::int(h.t as u64));
                put("seed", hx(h.seed));
                put("mind", hx(h.min_delay_bits));
                put("wire", Json::int(u64::from(h.wire_version)));
                put("label", Json::Str(h.label.clone()));
            }
            WalRecord::Reserve { peer, upto } => {
                put("k", Json::Str("res".into()));
                put("peer", Json::int(*peer as u64));
                put("upto", hx(*upto));
            }
            WalRecord::Event(ev) => {
                put("k", Json::Str("ev".into()));
                put("vt", hx(ev.time_bits));
                put("class", Json::int(u64::from(ev.class)));
                put("a", hx(ev.a));
                put("b", hx(ev.b));
                put("c", hx(ev.c));
                if let Some(r) = &ev.remote {
                    put("from", Json::int(r.from as u64));
                    put("lseq", hx(r.lseq));
                    put("vsend", hx(r.vsend_bits));
                    put("body", hex_bytes(&r.body));
                }
            }
            WalRecord::Mark(m) => {
                put("k", Json::Str("mark".into()));
                put("vt", hx(m.time_bits));
                put("events", hx(m.events));
                put("probe", hx(m.probe));
            }
        }
        Json::Obj(fields)
    }

    /// Parses one record object.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or ill-typed field.
    pub fn from_json(json: &Json) -> Result<WalRecord, String> {
        let kind = json
            .get("k")
            .and_then(Json::as_str)
            .ok_or("record missing `k`")?;
        match kind {
            "hdr" => Ok(WalRecord::Header(WalHeader {
                config_fp: req_hx(json, "fp")?,
                me: req_int(json, "me")? as usize,
                n: req_int(json, "n")? as usize,
                t: req_int(json, "t")? as usize,
                seed: req_hx(json, "seed")?,
                min_delay_bits: req_hx(json, "mind")?,
                wire_version: req_int(json, "wire")? as u32,
                label: json
                    .get("label")
                    .and_then(Json::as_str)
                    .ok_or("header missing `label`")?
                    .to_string(),
            })),
            "res" => Ok(WalRecord::Reserve {
                peer: req_int(json, "peer")? as usize,
                upto: req_hx(json, "upto")?,
            }),
            "ev" => {
                let remote = if json.get("from").is_some() {
                    Some(WalRemote {
                        from: req_int(json, "from")? as usize,
                        lseq: req_hx(json, "lseq")?,
                        vsend_bits: req_hx(json, "vsend")?,
                        body: req_hex_bytes(json, "body")?,
                    })
                } else {
                    None
                };
                Ok(WalRecord::Event(WalEvent {
                    time_bits: req_hx(json, "vt")?,
                    class: req_int(json, "class")? as u8,
                    a: req_hx(json, "a")?,
                    b: req_hx(json, "b")?,
                    c: req_hx(json, "c")?,
                    remote,
                }))
            }
            "mark" => Ok(WalRecord::Mark(WalMark {
                time_bits: req_hx(json, "vt")?,
                events: req_hx(json, "events")?,
                probe: req_hx(json, "probe")?,
            })),
            other => Err(format!("unknown record kind `{other}`")),
        }
    }

    /// Encodes the record as framed bytes: length prefix, canonical JSON
    /// payload, FNV-1a checksum.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.to_json().to_string().into_bytes();
        assert!(payload.len() <= MAX_WAL_RECORD, "oversized wal record");
        let mut out = Vec::with_capacity(4 + payload.len() + 8);
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&fnv1a_64(&payload).to_le_bytes());
        out
    }
}

/// Incremental WAL decoder: push bytes in any chunking, pop complete
/// records. Mirrors the frame layer's `FrameBuffer`: a truncated tail is
/// "not yet a record"; an oversized prefix or a checksum failure is a
/// hard error that poisons the cursor.
#[derive(Debug, Default)]
pub struct WalCursor {
    buf: Vec<u8>,
    pos: usize,
    consumed: u64,
    poisoned: Option<WalError>,
}

impl WalCursor {
    /// An empty cursor.
    #[must_use]
    pub fn new() -> Self {
        WalCursor::default()
    }

    /// Appends raw log bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Total bytes consumed as complete, checksummed records — the valid
    /// prefix length to truncate a torn log back to.
    #[must_use]
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Bytes buffered but not yet consumed (a torn tail, if the stream
    /// has ended).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pops the next complete record, `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// [`WalError::Oversized`], [`WalError::Checksum`] or
    /// [`WalError::Malformed`]; the cursor stays poisoned afterwards.
    pub fn next_record(&mut self) -> Result<Option<WalRecord>, WalError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let announced = u32::from_be_bytes(avail[..4].try_into().expect("4 bytes")) as usize;
        if announced > MAX_WAL_RECORD {
            let err = WalError::Oversized {
                offset: self.consumed,
                announced,
            };
            self.poisoned = Some(err.clone());
            return Err(err);
        }
        let total = 4 + announced + 8;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = &avail[4..4 + announced];
        let sum = u64::from_le_bytes(avail[4 + announced..total].try_into().expect("8 bytes"));
        if fnv1a_64(payload) != sum {
            let err = WalError::Checksum {
                offset: self.consumed,
            };
            self.poisoned = Some(err.clone());
            return Err(err);
        }
        let parse = std::str::from_utf8(payload)
            .map_err(|e| e.to_string())
            .and_then(Json::parse)
            .and_then(|j| WalRecord::from_json(&j));
        match parse {
            Ok(rec) => {
                self.pos += total;
                self.consumed += total as u64;
                if self.pos > 65536 && self.pos * 2 > self.buf.len() {
                    self.buf.drain(..self.pos);
                    self.pos = 0;
                }
                Ok(Some(rec))
            }
            Err(reason) => {
                let err = WalError::Malformed {
                    offset: self.consumed,
                    reason,
                };
                self.poisoned = Some(err.clone());
                Err(err)
            }
        }
    }
}

/// The result of scanning a WAL file.
#[derive(Debug)]
pub struct WalScan {
    /// Every complete, checksummed record, in append order.
    pub records: Vec<WalRecord>,
    /// Length of the valid prefix in bytes; anything beyond is a torn
    /// tail from a mid-write crash.
    pub valid_len: u64,
}

/// Reads an entire WAL file, stopping cleanly at a torn tail.
///
/// # Errors
///
/// I/O failures and hard corruption ([`WalError::Checksum`],
/// [`WalError::Oversized`], [`WalError::Malformed`]) are errors; a torn
/// tail is not (it is simply excluded from `valid_len`).
pub fn read_wal(path: &Path) -> Result<WalScan, WalError> {
    let mut file = File::open(path)?;
    let mut cursor = WalCursor::new();
    let mut chunk = [0u8; 65536];
    loop {
        let got = file.read(&mut chunk)?;
        if got == 0 {
            break;
        }
        cursor.push(&chunk[..got]);
    }
    let mut records = Vec::new();
    while let Some(rec) = cursor.next_record()? {
        records.push(rec);
    }
    Ok(WalScan {
        records,
        valid_len: cursor.consumed(),
    })
}

/// An append handle on a WAL file. Every record is flushed to the OS on
/// append — under the SIGKILL crash model the page cache survives the
/// process, so a buffered `write` is durable without `fsync`.
#[derive(Debug)]
pub struct WalWriter {
    out: BufWriter<File>,
    path: PathBuf,
}

impl WalWriter {
    /// Creates (truncating) a fresh WAL and writes its header record.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: &Path, header: &WalHeader) -> Result<WalWriter, WalError> {
        let file = File::create(path)?;
        let mut w = WalWriter {
            out: BufWriter::new(file),
            path: path.to_path_buf(),
        };
        w.append(&WalRecord::Header(header.clone()))?;
        Ok(w)
    }

    /// Reopens an existing WAL for append, truncating a torn tail at
    /// `valid_len` first (as reported by [`read_wal`]).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append_to(path: &Path, valid_len: u64) -> Result<WalWriter, WalError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter {
            out: BufWriter::new(file),
            path: path.to_path_buf(),
        })
    }

    /// Appends one record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&mut self, rec: &WalRecord) -> Result<(), WalError> {
        self.out.write_all(&rec.encode())?;
        self.out.flush()?;
        Ok(())
    }

    /// The file this writer appends to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Header(WalHeader {
                config_fp: 0xfeed_beef_cafe_f00d,
                me: 2,
                n: 4,
                t: 1,
                seed: 7,
                min_delay_bits: 0.25f64.to_bits(),
                wire_version: 2,
                label: "serve-7".into(),
            }),
            WalRecord::Reserve { peer: 0, upto: 256 },
            WalRecord::Event(WalEvent {
                time_bits: 0.375f64.to_bits(),
                class: 0,
                a: 1,
                b: 2,
                c: 0,
                remote: Some(WalRemote {
                    from: 1,
                    lseq: 0,
                    vsend_bits: 0.0f64.to_bits(),
                    body: vec![0, 1, 2, 0xff],
                }),
            }),
            WalRecord::Event(WalEvent {
                time_bits: 2.5f64.to_bits(),
                class: 1,
                a: 2,
                b: 3,
                c: u64::MAX,
                remote: None,
            }),
            WalRecord::Mark(WalMark {
                time_bits: 2.5f64.to_bits(),
                events: 2,
                probe: 0xdead_beef,
            }),
        ]
    }

    #[test]
    fn records_roundtrip_through_json_and_framing() {
        for rec in sample_records() {
            let json = rec.to_json();
            let back = WalRecord::from_json(&Json::parse(&json.to_string()).unwrap()).unwrap();
            assert_eq!(back, rec);
        }
        let mut cursor = WalCursor::new();
        for rec in sample_records() {
            cursor.push(&rec.encode());
        }
        let mut out = Vec::new();
        while let Some(r) = cursor.next_record().unwrap() {
            out.push(r);
        }
        assert_eq!(out, sample_records());
        assert_eq!(cursor.pending(), 0);
    }

    #[test]
    fn file_scan_truncates_a_torn_tail() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("treeaa-wal-test-{}.wal", std::process::id()));
        let recs = sample_records();
        let WalRecord::Header(hdr) = &recs[0] else {
            panic!("first sample is the header")
        };
        let mut w = WalWriter::create(&path, hdr).unwrap();
        for rec in &recs[1..] {
            w.append(rec).unwrap();
        }
        drop(w);
        // Tear the last record in half.
        let full = std::fs::read(&path).unwrap();
        let torn_len = full.len() - 5;
        std::fs::write(&path, &full[..torn_len]).unwrap();

        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records.len(), recs.len() - 1, "torn record excluded");
        assert!(scan.valid_len < torn_len as u64);

        // Reopening for append truncates the tear and new records land
        // on a clean boundary.
        let mut w = WalWriter::append_to(&path, scan.valid_len).unwrap();
        w.append(recs.last().unwrap()).unwrap();
        drop(w);
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records.len(), recs.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_corruption_is_a_typed_error() {
        let rec = WalRecord::Reserve { peer: 1, upto: 512 };
        let mut bytes = rec.encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let mut cursor = WalCursor::new();
        cursor.push(&bytes);
        let err = cursor.next_record().unwrap_err();
        assert!(
            matches!(err, WalError::Checksum { .. } | WalError::Malformed { .. }),
            "got {err:?}"
        );
        // Poisoned: pushing a clean record afterwards does not recover.
        cursor.push(&rec.encode());
        assert!(cursor.next_record().is_err());
    }
}
