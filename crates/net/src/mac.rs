//! Message authentication for wire frames: SipHash-2-4 under pairwise
//! keys derived from a shared cluster secret.
//!
//! The simulators model authenticated channels axiomatically ("channels
//! remain authenticated"); on real sockets that guarantee has to be
//! earned. Every frame carries a 64-bit SipHash-2-4 tag over its entire
//! header + body, keyed per unordered party pair — the standard
//! pairwise-MAC setup of deployed async-BFT prototypes. SipHash-2-4 is
//! implemented here directly (the workspace builds offline, with no
//! crypto crates) from the reference description; known-answer tests
//! below pin it to the published test vectors.

/// A 128-bit SipHash key as two 64-bit halves.
pub type MacKey = (u64, u64);

/// SipHash-2-4 of `data` under `key` — the reference algorithm
/// (Aumasson–Bernstein), 2 compression rounds, 4 finalization rounds.
#[must_use]
pub fn siphash24(key: MacKey, data: &[u8]) -> u64 {
    let (k0, k1) = key;
    let mut v0 = 0x736f_6d65_7073_6575 ^ k0;
    let mut v1 = 0x646f_7261_6e64_6f6d ^ k1;
    let mut v2 = 0x6c79_6765_6e65_7261 ^ k0;
    let mut v3 = 0x7465_6462_7974_6573 ^ k1;

    macro_rules! sipround {
        () => {
            v0 = v0.wrapping_add(v1);
            v1 = v1.rotate_left(13);
            v1 ^= v0;
            v0 = v0.rotate_left(32);
            v2 = v2.wrapping_add(v3);
            v3 = v3.rotate_left(16);
            v3 ^= v2;
            v0 = v0.wrapping_add(v3);
            v3 = v3.rotate_left(21);
            v3 ^= v0;
            v2 = v2.wrapping_add(v1);
            v1 = v1.rotate_left(17);
            v1 ^= v2;
            v2 = v2.rotate_left(32);
        };
    }

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("exact chunk"));
        v3 ^= m;
        sipround!();
        sipround!();
        v0 ^= m;
    }
    let rem = chunks.remainder();
    let mut b = (data.len() as u64) << 56;
    for (i, &x) in rem.iter().enumerate() {
        b |= u64::from(x) << (8 * i);
    }
    v3 ^= b;
    sipround!();
    sipround!();
    v0 ^= b;
    v2 ^= 0xff;
    sipround!();
    sipround!();
    sipround!();
    sipround!();
    v0 ^ v1 ^ v2 ^ v3
}

/// Derives the MAC key for the unordered pair `{a, b}` from the cluster
/// secret. Symmetric by construction (`pair_key(s, a, b) == pair_key(s,
/// b, a)`); frame direction is authenticated through the MAC'd `from`/
/// `to` header fields instead.
#[must_use]
pub fn pair_key(secret: u64, a: usize, b: usize) -> MacKey {
    let (lo, hi) = (a.min(b) as u64, a.max(b) as u64);
    let mix = async_net::splitmix64;
    let k0 = mix(mix(mix(secret ^ 0x6d61_635f_6b30) ^ lo) ^ hi);
    let k1 = mix(mix(mix(secret ^ 0x6d61_635f_6b31) ^ lo) ^ hi);
    (k0, k1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference key 00 01 02 ... 0f as two little-endian halves.
    const VECTOR_KEY: MacKey = (0x0706_0504_0302_0100, 0x0f0e_0d0c_0b0a_0908);

    #[test]
    fn matches_published_test_vectors() {
        // First entries of the SipHash-2-4 reference vector table
        // (vectors_sip64 in the reference implementation): input is the
        // byte string 00 01 02 ... of the given length.
        let expected: [(usize, u64); 4] = [
            (0, 0x726f_db47_dd0e_0e31),
            (1, 0x74f8_39c5_93dc_67fd),
            (2, 0x0d6c_8009_d9a9_4f5a),
            (8, 0x93f5_f579_9a93_2462),
        ];
        for (len, want) in expected {
            let data: Vec<u8> = (0..len as u8).collect();
            assert_eq!(siphash24(VECTOR_KEY, &data), want, "len {len}");
        }
    }

    #[test]
    fn pair_keys_are_symmetric_and_distinct() {
        assert_eq!(pair_key(42, 0, 3), pair_key(42, 3, 0));
        assert_ne!(pair_key(42, 0, 3), pair_key(42, 1, 3));
        assert_ne!(pair_key(42, 0, 3), pair_key(43, 0, 3));
        assert_ne!(pair_key(42, 0, 3).0, pair_key(42, 0, 3).1);
    }

    #[test]
    fn tag_tracks_every_input_bit() {
        let key = pair_key(7, 1, 2);
        let base = siphash24(key, b"hello frame");
        assert_eq!(base, siphash24(key, b"hello frame"));
        assert_ne!(base, siphash24(key, b"hello frame!"));
        assert_ne!(base, siphash24(key, b"hello fram"));
        assert_ne!(base, siphash24(pair_key(7, 1, 3), b"hello frame"));
    }
}
