//! The differential trace gate.
//!
//! A networked deployment is only trustworthy if it runs the *same
//! protocol execution* the verified in-process simulator would run. The
//! gate makes that checkable: a [`GateCase`] pins everything that
//! determines an execution — tree, inputs, `t`, seed, delay floor — and
//! can produce both
//!
//! * the **reference run**: `Reliable<AsyncTreeAaParty>` under the
//!   in-process [`VirtualScheduler`] with an [`AsyncRecorder`], and
//! * the node/cluster configuration for the **networked run** of the
//!   identical case (the config fingerprint in the TCP handshake is
//!   derived here, so mismatched processes refuse to talk).
//!
//! [`differential_gate`] then demands that the merged networked trace
//! reconciles with the reference **event for event** — same protocol
//! events, same virtual times, same per-party order. Any divergence in
//! scheduling, codecs, or transport logic surfaces as a first-diverging
//! event, not as a flaky end-to-end assertion.

use std::sync::Arc;

use aa_trace::{reconcile_proto, Trace};
use async_aa::{AsyncAaMsg, AsyncTreeAaConfig, AsyncTreeAaParty};
use async_net::{
    run_async_recorded, splitmix64, AsyncConfig, AsyncRecorder, DelayModel, PassiveAsync, Reliable,
    VirtualScheduler,
};
use sim_net::{Outcome, PartyId};
use tree_model::{Tree, VertexId};

/// One fully pinned execution: everything both the reference simulator
/// and a networked cluster need to replay the same schedule.
#[derive(Clone, Debug)]
pub struct GateCase {
    /// The public tree.
    pub tree: Arc<Tree>,
    /// Input vertex per party (length = `n`).
    pub inputs: Vec<VertexId>,
    /// Corruption bound.
    pub t: usize,
    /// Seed of the content-keyed delay schedule.
    pub seed: u64,
    /// Delay floor / conservative lookahead (the transport default 0.5).
    pub min_delay: f64,
    /// Trace label.
    pub label: String,
}

/// What the in-process reference produced.
#[derive(Clone, Debug)]
pub struct ReferenceRun {
    /// Per-party outcomes.
    pub outcomes: Vec<Outcome<VertexId>>,
    /// The recorded reference trace.
    pub trace: Trace,
}

impl GateCase {
    /// Builds a case from tree text (the `tree-model` `parse_tree`
    /// format) and per-party input vertex indices.
    ///
    /// # Errors
    ///
    /// Reports unparsable trees, out-of-range inputs, or `n ≤ 3t`.
    pub fn from_text(
        tree_text: &str,
        inputs: &[usize],
        t: usize,
        seed: u64,
    ) -> Result<Self, String> {
        let tree = tree_model::parse_tree(tree_text).map_err(|e| e.to_string())?;
        let nv = tree.vertex_count();
        let mut vids = Vec::with_capacity(inputs.len());
        for &i in inputs {
            let Some(v) = tree.vertices().nth(i) else {
                return Err(format!("input vertex {i} out of range (tree has {nv})"));
            };
            vids.push(v);
        }
        let case = GateCase {
            tree: Arc::new(tree),
            inputs: vids,
            t,
            seed,
            min_delay: 0.5,
            label: format!("net-gate-{seed}"),
        };
        // Validate the protocol preconditions once, up front.
        case.protocol_config()?;
        Ok(case)
    }

    /// Number of parties.
    #[must_use]
    pub fn n(&self) -> usize {
        self.inputs.len()
    }

    /// The derived protocol configuration.
    ///
    /// # Errors
    ///
    /// If `n ≤ 3t`.
    pub fn protocol_config(&self) -> Result<AsyncTreeAaConfig, String> {
        AsyncTreeAaConfig::new(self.n(), self.t, &self.tree)
    }

    /// A 64-bit fingerprint over everything that pins the execution.
    /// Carried in the TCP handshake: two processes launched with
    /// different trees, inputs, seeds, or delay floors refuse to talk
    /// instead of silently diverging.
    #[must_use]
    pub fn config_fp(&self) -> u64 {
        let mut h = splitmix64(0x6761_7465_5f66_7030 ^ self.seed);
        let mut mix = |x: u64| {
            h = splitmix64(h ^ x);
        };
        mix(self.n() as u64);
        mix(self.t as u64);
        mix(self.min_delay.to_bits());
        mix(self.tree.vertex_count() as u64);
        for v in self.tree.vertices() {
            mix(self.tree.parent(v).map_or(u64::MAX, |p| p.index() as u64));
        }
        for v in &self.inputs {
            mix(v.index() as u64);
        }
        h
    }

    /// The party object a node (or the reference run) executes: the
    /// tree-AA protocol behind the retransmitting reliable layer.
    ///
    /// # Panics
    ///
    /// Panics if the case violates `n > 3t` — construct cases through
    /// [`GateCase::from_text`] or validate with
    /// [`GateCase::protocol_config`] first.
    #[must_use]
    pub fn party(&self, i: usize) -> Reliable<AsyncTreeAaParty> {
        let cfg = self.protocol_config().expect("validated case");
        Reliable::new(
            AsyncTreeAaParty::new(cfg, Arc::clone(&self.tree), self.inputs[i]),
            self.n(),
        )
    }

    /// Runs the in-process reference: the identical protocol objects
    /// under [`VirtualScheduler`], with every proto event recorded.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures (event-cap exhaustion) as text.
    pub fn reference_run(&self) -> Result<ReferenceRun, String> {
        let n = self.n();
        let cfg = AsyncConfig {
            n,
            t: self.t,
            seed: self.seed,
            delay: DelayModel::Uniform {
                min: self.min_delay,
            },
            max_events: 3_000_000,
        };
        let mut sched: VirtualScheduler<async_net::RelMsg<AsyncAaMsg>> =
            VirtualScheduler::new(n, self.seed, self.min_delay);
        let mut recorder = AsyncRecorder::new(n, self.t, &self.label);
        let report = run_async_recorded(
            &cfg,
            |p: PartyId, _| self.party(p.index()),
            PassiveAsync,
            &mut sched,
            &mut recorder,
        )
        .map_err(|e| e.to_string())?;
        let outcomes = report
            .outputs
            .into_iter()
            .enumerate()
            .map(|(i, o)| o.ok_or(i))
            .collect::<Result<Vec<_>, usize>>()
            .map_err(|i| format!("reference run: party {i} produced no output"))?;
        Ok(ReferenceRun {
            outcomes,
            trace: recorder.into_trace(),
        })
    }
}

/// The gate itself: the networked trace must reconcile with the
/// reference protocol-event-for-protocol-event (same labels, fields,
/// virtual times, per-party order). Returns the number of reconciled
/// events.
///
/// # Errors
///
/// The first diverging event, rendered with both sides' canonical JSON.
pub fn differential_gate(reference: &Trace, networked: &Trace) -> Result<usize, String> {
    reconcile_proto(reference, networked)
}

/// A canonical fingerprint of a trace's *protocol* projection: the
/// FNV-1a hash of the canonical JSON of the proto events alone, in the
/// gate's reconciliation order. Transport-level events (fault drops,
/// reconnects, recovery markers) are excluded, so a run that crashed
/// and recovered fingerprints identically to one that never did — this
/// is the value the crash-recovery e2e checks for bit-identity.
///
/// # Errors
///
/// Propagates projection failures (malformed proto events) as text.
pub fn proto_fingerprint(trace: &Trace) -> Result<u64, String> {
    let projected = aa_trace::proto_projection(trace)?;
    let mut canon = Trace::new(trace.n, trace.t, &trace.label);
    for ev in projected {
        canon.push(ev.round, ev.kind);
    }
    Ok(aa_trace::fnv1a_64(canon.to_canonical_string().as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const PATH5: &str = "vertex 0\nvertex 1\nvertex 2\nvertex 3\nvertex 4\nedge 0 1\nedge 1 2\nedge 2 3\nedge 3 4\n";

    #[test]
    fn reference_run_terminates_and_agrees() {
        let case = GateCase::from_text(PATH5, &[0, 4, 2, 1], 1, 7).unwrap();
        let r = case.reference_run().unwrap();
        assert_eq!(r.outcomes.len(), 4);
        for o in &r.outcomes {
            assert!(!o.is_degraded(), "clean run must not degrade: {o:?}");
        }
        // The trace carries stamped proto events for every party.
        let proj = aa_trace::proto_projection(&r.trace).unwrap();
        assert!(!proj.is_empty());
    }

    #[test]
    fn reference_run_is_reproducible() {
        let case = GateCase::from_text(PATH5, &[4, 0, 3, 3], 1, 21).unwrap();
        let a = case.reference_run().unwrap();
        let b = case.reference_run().unwrap();
        assert_eq!(a.trace.to_canonical_string(), b.trace.to_canonical_string());
        assert_eq!(differential_gate(&a.trace, &b.trace).unwrap(), {
            aa_trace::proto_projection(&a.trace).unwrap().len()
        });
    }

    #[test]
    fn fingerprint_tracks_every_parameter() {
        let base = GateCase::from_text(PATH5, &[0, 4, 2, 1], 1, 7).unwrap();
        let fp = base.config_fp();
        let mut seed = base.clone();
        seed.seed = 8;
        assert_ne!(fp, seed.config_fp());
        let mut inputs = base.clone();
        inputs.inputs[0] = base.tree.vertices().nth(1).unwrap();
        assert_ne!(fp, inputs.config_fp());
        let mut delay = base.clone();
        delay.min_delay = 0.25;
        assert_ne!(fp, delay.config_fp());
    }
}
