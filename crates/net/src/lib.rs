//! Real-socket transport for the asynchronous tree-AA stack.
//!
//! The simulators in this workspace execute every party in one process
//! under a scheduler they control. This crate runs the *same* protocol
//! objects — `Reliable<AsyncTreeAaParty>` behind the unchanged
//! [`async_net::AsyncProtocol`] traits — across real TCP connections,
//! one OS process (or thread) per party, and still reproduces the
//! in-process schedule bit for bit. The layers, bottom up:
//!
//! * [`frame`] — length-prefixed framing with an incremental,
//!   desync-proof decoder;
//! * [`mac`] — SipHash-2-4 under pairwise keys from a cluster secret;
//! * [`codec`] — total binary codecs for the protocol messages;
//! * [`wire`] — the authenticated [`wire::WrapperMsg`] envelope
//!   (handshake, data, virtual-time promises, completion);
//! * [`node`] — the per-party TCP node: connect/accept with peer
//!   handshakes, per-peer send queues, capped-backoff reconnects, and a
//!   conservative virtual-time main loop;
//! * [`wal`] — a per-node write-ahead log of protocol-relevant state
//!   transitions (checksummed, torn-tail tolerant) that lets a
//!   SIGKILLed node replay itself back to its crash point;
//! * [`node`] — the per-party TCP node: connect/accept with peer
//!   handshakes, per-peer send queues, capped-backoff reconnects,
//!   WAL-backed crash recovery with handshake gap-resend, and a
//!   conservative virtual-time main loop;
//! * [`cluster`] — an in-process loopback cluster (n nodes, n threads,
//!   real sockets) used by the tests and the differential gate;
//! * [`chaos`] — a seeded fault-injecting TCP relay (resets, stalls,
//!   corruption, partitions) driven by the `sim_net` fault plans;
//! * [`gate`] — the differential trace gate: a networked run's merged
//!   trace must reconcile event-for-event with the in-process
//!   [`async_net::VirtualScheduler`] reference run of the same seed.

#![warn(missing_docs)]

pub mod chaos;
pub mod cluster;
pub mod codec;
pub mod frame;
pub mod gate;
pub mod mac;
pub mod node;
pub mod wal;
pub mod wire;

pub use chaos::{seeded_plan, spawn_chaos_proxy, ChaosConfig, ChaosProxy};
pub use cluster::{
    node_config, run_local_cluster, run_local_cluster_opts, ClusterChaos, ClusterOpts,
    ClusterReport,
};
pub use codec::{CodecError, Reader, WireCodec};
pub use frame::{frame, FrameBuffer, FrameError, MAX_FRAME, PREFIX_LEN};
pub use gate::{differential_gate, proto_fingerprint, GateCase, ReferenceRun};
pub use mac::{pair_key, siphash24, MacKey};
pub use node::{
    run_node, run_node_durable, Durability, NetError, NetStats, NodeConfig, NodeReport,
    ReconnectPolicy,
};
pub use wal::{read_wal, WalCursor, WalError, WalHeader, WalRecord, WalScan, WalWriter};
pub use wire::{FrameKind, HelloBody, WrapperMsg, WIRE_VERSION};
