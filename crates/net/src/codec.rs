//! Binary serialization for protocol messages.
//!
//! The simulators pass messages by value; real sockets need bytes. The
//! codec is deliberately boring: little-endian fixed-width integers, one
//! tag byte per enum, length-prefixed sequences — a format simple enough
//! to audit against the decoder by eye. Decoding is total: any byte
//! string either parses or returns [`CodecError`]; it never panics and
//! never reads out of bounds, which the property tests in
//! `tests/frame_props.rs` hammer on.

use std::fmt;

use async_aa::{AsyncAaMsg, RbcMsg};
use async_net::RelMsg;
use sim_net::PartyId;

/// A decode failure. Carries just enough context to report which layer
/// rejected the bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// Bytes remained after a complete top-level value.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A length field announced more elements than the buffer could hold.
    BadLength {
        /// The announced element count.
        announced: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated value"),
            CodecError::BadTag { what, tag } => write!(f, "bad tag {tag:#04x} for {what}"),
            CodecError::TrailingBytes { extra } => write!(f, "{extra} trailing byte(s)"),
            CodecError::BadLength { announced } => {
                write!(f, "length {announced} exceeds remaining input")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// A bounds-checked cursor over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// A type with a canonical byte encoding. Encoding is infallible;
/// decoding is total and allocation-bounded by the input length.
pub trait WireCodec: Sized {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the cursor.
    ///
    /// # Errors
    ///
    /// A [`CodecError`] describing the first malformed element.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Encodes to a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a complete value, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// As [`WireCodec::decode`], plus [`CodecError::TrailingBytes`] if
    /// the value does not consume the whole input.
    fn from_bytes(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        if r.remaining() > 0 {
            return Err(CodecError::TrailingBytes {
                extra: r.remaining(),
            });
        }
        Ok(v)
    }
}

impl WireCodec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u64()
    }
}

impl WireCodec for RbcMsg<u32> {
    fn encode(&self, out: &mut Vec<u8>) {
        let (tag, v) = match self {
            RbcMsg::Init(v) => (0u8, *v),
            RbcMsg::Echo(v) => (1u8, *v),
            RbcMsg::Ready(v) => (2u8, *v),
        };
        out.push(tag);
        out.extend_from_slice(&v.to_le_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let tag = r.u8()?;
        let v = r.u32()?;
        match tag {
            0 => Ok(RbcMsg::Init(v)),
            1 => Ok(RbcMsg::Echo(v)),
            2 => Ok(RbcMsg::Ready(v)),
            tag => Err(CodecError::BadTag {
                what: "RbcMsg",
                tag,
            }),
        }
    }
}

impl WireCodec for AsyncAaMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AsyncAaMsg::Rbc {
                iter,
                broadcaster,
                inner,
            } => {
                out.push(0);
                out.extend_from_slice(&iter.to_le_bytes());
                out.extend_from_slice(&(broadcaster.index() as u32).to_le_bytes());
                inner.encode(out);
            }
            AsyncAaMsg::Report { iter, entries } => {
                out.push(1);
                out.extend_from_slice(&iter.to_le_bytes());
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (p, v) in entries {
                    out.extend_from_slice(&p.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => {
                let iter = r.u32()?;
                let broadcaster = PartyId(r.u32()? as usize);
                let inner = RbcMsg::decode(r)?;
                Ok(AsyncAaMsg::Rbc {
                    iter,
                    broadcaster,
                    inner,
                })
            }
            1 => {
                let iter = r.u32()?;
                let count = r.u32()? as usize;
                // 8 bytes per entry: reject impossible counts before
                // allocating.
                if count > r.remaining() / 8 {
                    return Err(CodecError::BadLength { announced: count });
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    entries.push((r.u32()?, r.u32()?));
                }
                Ok(AsyncAaMsg::Report { iter, entries })
            }
            tag => Err(CodecError::BadTag {
                what: "AsyncAaMsg",
                tag,
            }),
        }
    }
}

impl<M: WireCodec> WireCodec for RelMsg<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RelMsg::Data { seq, inner } => {
                out.push(0);
                out.extend_from_slice(&seq.to_le_bytes());
                inner.encode(out);
            }
            RelMsg::Ack { seq } => {
                out.push(1);
                out.extend_from_slice(&seq.to_le_bytes());
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => {
                let seq = r.u64()?;
                let inner = M::decode(r)?;
                Ok(RelMsg::Data { seq, inner })
            }
            1 => Ok(RelMsg::Ack { seq: r.u64()? }),
            tag => Err(CodecError::BadTag {
                what: "RelMsg",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<M: WireCodec + PartialEq + std::fmt::Debug>(msg: M) {
        let bytes = msg.to_bytes();
        assert_eq!(M::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn protocol_messages_roundtrip() {
        roundtrip(0xdead_beef_u64 << 32);
        roundtrip(RbcMsg::Init(7u32));
        roundtrip(RbcMsg::Echo(0));
        roundtrip(RbcMsg::Ready(u32::MAX));
        roundtrip(AsyncAaMsg::Rbc {
            iter: 3,
            broadcaster: PartyId(2),
            inner: RbcMsg::Ready(5),
        });
        roundtrip(AsyncAaMsg::Report {
            iter: 0,
            entries: vec![],
        });
        roundtrip(AsyncAaMsg::Report {
            iter: 9,
            entries: vec![(0, 4), (3, 1), (u32::MAX, 0)],
        });
        roundtrip(RelMsg::Data {
            seq: 42,
            inner: AsyncAaMsg::Rbc {
                iter: 1,
                broadcaster: PartyId(0),
                inner: RbcMsg::Init(2),
            },
        });
        roundtrip(RelMsg::<AsyncAaMsg>::Ack { seq: u64::MAX });
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = RbcMsg::Init(1u32).to_bytes();
        bytes.push(0);
        assert_eq!(
            RbcMsg::<u32>::from_bytes(&bytes),
            Err(CodecError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn bad_tags_and_truncation_are_rejected() {
        assert_eq!(
            RbcMsg::<u32>::from_bytes(&[9, 0, 0, 0, 0]),
            Err(CodecError::BadTag {
                what: "RbcMsg",
                tag: 9
            })
        );
        assert_eq!(
            RbcMsg::<u32>::from_bytes(&[0, 1, 2]),
            Err(CodecError::Truncated)
        );
        assert_eq!(AsyncAaMsg::from_bytes(&[]), Err(CodecError::Truncated));
    }

    #[test]
    fn absurd_report_length_is_rejected_before_allocation() {
        // tag 1, iter, count = u32::MAX, no entries.
        let mut bytes = vec![1u8];
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            AsyncAaMsg::from_bytes(&bytes),
            Err(CodecError::BadLength {
                announced: u32::MAX as usize
            })
        );
    }
}
