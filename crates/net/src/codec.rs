//! Binary serialization for protocol messages.
//!
//! The simulators pass messages by value; real sockets need bytes. The
//! codec is deliberately boring: little-endian fixed-width integers, one
//! tag byte per enum, length-prefixed sequences — a format simple enough
//! to audit against the decoder by eye. Decoding is total: any byte
//! string either parses or returns [`CodecError`]; it never panics and
//! never reads out of bounds, which the property tests in
//! `tests/frame_props.rs` hammer on.

use std::fmt;
use std::sync::Arc;

use async_aa::{AsyncAaMsg, RbcMsg};
use async_net::RelMsg;
use gradecast::{GcBundleMsg, GcSlots};
use real_aa::{BundledAaMsg, R64};
use sim_net::PartyId;

/// A decode failure. Carries just enough context to report which layer
/// rejected the bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// Bytes remained after a complete top-level value.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A length field announced more elements than the buffer could hold.
    BadLength {
        /// The announced element count.
        announced: usize,
    },
    /// A field held bits with no canonical meaning (non-finite float,
    /// nonzero bitmap padding). Rejected so every value has exactly one
    /// encoding and decode never constructs an invalid domain value.
    BadValue {
        /// The type whose invariant the bytes violated.
        what: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated value"),
            CodecError::BadTag { what, tag } => write!(f, "bad tag {tag:#04x} for {what}"),
            CodecError::TrailingBytes { extra } => write!(f, "{extra} trailing byte(s)"),
            CodecError::BadLength { announced } => {
                write!(f, "length {announced} exceeds remaining input")
            }
            CodecError::BadValue { what } => write!(f, "non-canonical bytes for {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A bounds-checked cursor over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// A type with a canonical byte encoding. Encoding is infallible;
/// decoding is total and allocation-bounded by the input length.
pub trait WireCodec: Sized {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the cursor.
    ///
    /// # Errors
    ///
    /// A [`CodecError`] describing the first malformed element.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Encodes to a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a complete value, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// As [`WireCodec::decode`], plus [`CodecError::TrailingBytes`] if
    /// the value does not consume the whole input.
    fn from_bytes(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        if r.remaining() > 0 {
            return Err(CodecError::TrailingBytes {
                extra: r.remaining(),
            });
        }
        Ok(v)
    }
}

impl WireCodec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u64()
    }
}

impl WireCodec for RbcMsg<u32> {
    fn encode(&self, out: &mut Vec<u8>) {
        let (tag, v) = match self {
            RbcMsg::Init(v) => (0u8, *v),
            RbcMsg::Echo(v) => (1u8, *v),
            RbcMsg::Ready(v) => (2u8, *v),
        };
        out.push(tag);
        out.extend_from_slice(&v.to_le_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let tag = r.u8()?;
        let v = r.u32()?;
        match tag {
            0 => Ok(RbcMsg::Init(v)),
            1 => Ok(RbcMsg::Echo(v)),
            2 => Ok(RbcMsg::Ready(v)),
            tag => Err(CodecError::BadTag {
                what: "RbcMsg",
                tag,
            }),
        }
    }
}

impl WireCodec for AsyncAaMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AsyncAaMsg::Rbc {
                iter,
                broadcaster,
                inner,
            } => {
                out.push(0);
                out.extend_from_slice(&iter.to_le_bytes());
                out.extend_from_slice(&(broadcaster.index() as u32).to_le_bytes());
                inner.encode(out);
            }
            AsyncAaMsg::Report { iter, entries } => {
                out.push(1);
                out.extend_from_slice(&iter.to_le_bytes());
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (p, v) in entries {
                    out.extend_from_slice(&p.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => {
                let iter = r.u32()?;
                let broadcaster = PartyId(r.u32()? as usize);
                let inner = RbcMsg::decode(r)?;
                Ok(AsyncAaMsg::Rbc {
                    iter,
                    broadcaster,
                    inner,
                })
            }
            1 => {
                let iter = r.u32()?;
                let count = r.u32()? as usize;
                // 8 bytes per entry: reject impossible counts before
                // allocating.
                if count > r.remaining() / 8 {
                    return Err(CodecError::BadLength { announced: count });
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    entries.push((r.u32()?, r.u32()?));
                }
                Ok(AsyncAaMsg::Report { iter, entries })
            }
            tag => Err(CodecError::BadTag {
                what: "AsyncAaMsg",
                tag,
            }),
        }
    }
}

impl WireCodec for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u32()
    }
}

impl WireCodec for R64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.get().to_bits().to_le_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        // `R64::new` panics on non-finite input; decode must stay total,
        // so the check happens here on the raw bits.
        let x = f64::from_bits(r.u64()?);
        if !x.is_finite() {
            return Err(CodecError::BadValue { what: "R64" });
        }
        Ok(R64::new(x))
    }
}

impl<T: WireCodec> WireCodec for GcSlots<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        let n = self.n();
        out.extend_from_slice(&(n as u32).to_le_bytes());
        let mut bitmap = vec![0u8; n.div_ceil(8)];
        for (slot, _) in self.iter() {
            bitmap[slot / 8] |= 1 << (slot % 8);
        }
        out.extend_from_slice(&bitmap);
        for (_, v) in self.iter() {
            v.encode(out);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.u32()? as usize;
        // The bitmap alone needs ⌈n/8⌉ bytes: reject impossible widths
        // before allocating anything proportional to `n`.
        if n.div_ceil(8) > r.remaining() {
            return Err(CodecError::BadLength { announced: n });
        }
        let bitmap = r.bytes(n.div_ceil(8))?.to_vec();
        // Padding bits past slot n−1 must be zero so encode∘decode is
        // the identity on bytes, not just on values.
        for pad in n..bitmap.len() * 8 {
            if bitmap[pad / 8] & (1 << (pad % 8)) != 0 {
                return Err(CodecError::BadValue {
                    what: "GcSlots padding",
                });
            }
        }
        let mut slots = Vec::with_capacity(n);
        for slot in 0..n {
            if bitmap[slot / 8] & (1 << (slot % 8)) != 0 {
                slots.push(Some(T::decode(r)?));
            } else {
                slots.push(None);
            }
        }
        Ok(GcSlots::from_options(slots))
    }
}

impl WireCodec for GcBundleMsg<R64> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            GcBundleMsg::Leads(s) => {
                out.push(0);
                s.encode(out);
            }
            GcBundleMsg::Echoes(s) => {
                out.push(1);
                s.encode(out);
            }
            GcBundleMsg::Votes(s) => {
                out.push(2);
                s.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(GcBundleMsg::Leads(Arc::new(GcSlots::decode(r)?))),
            1 => Ok(GcBundleMsg::Echoes(Arc::new(GcSlots::decode(r)?))),
            2 => Ok(GcBundleMsg::Votes(Arc::new(GcSlots::decode(r)?))),
            tag => Err(CodecError::BadTag {
                what: "GcBundleMsg",
                tag,
            }),
        }
    }
}

impl WireCodec for BundledAaMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.iter.to_le_bytes());
        self.body.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let iter = r.u32()?;
        let body = GcBundleMsg::decode(r)?;
        Ok(BundledAaMsg { iter, body })
    }
}

impl<M: WireCodec> WireCodec for RelMsg<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RelMsg::Data { seq, inner } => {
                out.push(0);
                out.extend_from_slice(&seq.to_le_bytes());
                inner.encode(out);
            }
            RelMsg::Ack { seq } => {
                out.push(1);
                out.extend_from_slice(&seq.to_le_bytes());
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => {
                let seq = r.u64()?;
                let inner = M::decode(r)?;
                Ok(RelMsg::Data { seq, inner })
            }
            1 => Ok(RelMsg::Ack { seq: r.u64()? }),
            tag => Err(CodecError::BadTag {
                what: "RelMsg",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<M: WireCodec + PartialEq + std::fmt::Debug>(msg: M) {
        let bytes = msg.to_bytes();
        assert_eq!(M::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn protocol_messages_roundtrip() {
        roundtrip(0xdead_beef_u64 << 32);
        roundtrip(RbcMsg::Init(7u32));
        roundtrip(RbcMsg::Echo(0));
        roundtrip(RbcMsg::Ready(u32::MAX));
        roundtrip(AsyncAaMsg::Rbc {
            iter: 3,
            broadcaster: PartyId(2),
            inner: RbcMsg::Ready(5),
        });
        roundtrip(AsyncAaMsg::Report {
            iter: 0,
            entries: vec![],
        });
        roundtrip(AsyncAaMsg::Report {
            iter: 9,
            entries: vec![(0, 4), (3, 1), (u32::MAX, 0)],
        });
        roundtrip(RelMsg::Data {
            seq: 42,
            inner: AsyncAaMsg::Rbc {
                iter: 1,
                broadcaster: PartyId(0),
                inner: RbcMsg::Init(2),
            },
        });
        roundtrip(RelMsg::<AsyncAaMsg>::Ack { seq: u64::MAX });
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = RbcMsg::Init(1u32).to_bytes();
        bytes.push(0);
        assert_eq!(
            RbcMsg::<u32>::from_bytes(&bytes),
            Err(CodecError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn bad_tags_and_truncation_are_rejected() {
        assert_eq!(
            RbcMsg::<u32>::from_bytes(&[9, 0, 0, 0, 0]),
            Err(CodecError::BadTag {
                what: "RbcMsg",
                tag: 9
            })
        );
        assert_eq!(
            RbcMsg::<u32>::from_bytes(&[0, 1, 2]),
            Err(CodecError::Truncated)
        );
        assert_eq!(AsyncAaMsg::from_bytes(&[]), Err(CodecError::Truncated));
    }

    fn slots<T: Clone>(opts: &[Option<T>]) -> GcSlots<T> {
        GcSlots::from_options(opts.to_vec())
    }

    #[test]
    fn bundle_messages_roundtrip() {
        roundtrip(R64::new(-0.5));
        roundtrip(3u32);
        roundtrip(slots(&[Some(R64::new(1.0)), None, Some(R64::new(-2.5))]));
        roundtrip(slots::<u32>(&[None, None]));
        roundtrip(GcBundleMsg::Leads(Arc::new(slots(&[
            Some(R64::new(0.25)),
            None,
        ]))));
        roundtrip(GcBundleMsg::Echoes(Arc::new(slots(&[
            Some(slots(&[Some(R64::new(7.0)), None, Some(R64::new(0.0))])),
            None,
            Some(slots(&[None, None, None])),
        ]))));
        roundtrip(GcBundleMsg::Votes(Arc::new(slots(&[
            None,
            Some(slots(&[Some(0xdead_u32), Some(1), None])),
        ]))));
        roundtrip(RelMsg::Data {
            seq: 7,
            inner: BundledAaMsg {
                iter: 2,
                body: GcBundleMsg::Leads(Arc::new(slots(&[Some(R64::new(4.0))]))),
            },
        });
    }

    #[test]
    fn non_finite_reals_are_rejected_not_panicked_on() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                R64::from_bytes(&bad.to_bits().to_le_bytes()),
                Err(CodecError::BadValue { what: "R64" })
            );
        }
    }

    #[test]
    fn nonzero_bitmap_padding_is_rejected() {
        // n = 3 with the unused high bits of the bitmap byte set: the
        // same value as a clean encoding, so canonicality demands a
        // rejection.
        let mut bytes = 3u32.to_le_bytes().to_vec();
        bytes.push(0b1111_1000);
        assert_eq!(
            GcSlots::<u32>::from_bytes(&bytes),
            Err(CodecError::BadValue {
                what: "GcSlots padding"
            })
        );
    }

    #[test]
    fn absurd_slot_count_is_rejected_before_allocation() {
        let bytes = u32::MAX.to_le_bytes().to_vec();
        assert_eq!(
            GcSlots::<R64>::from_bytes(&bytes),
            Err(CodecError::BadLength {
                announced: u32::MAX as usize
            })
        );
    }

    #[test]
    fn bundle_tags_are_checked() {
        assert_eq!(
            GcBundleMsg::<R64>::from_bytes(&[3]),
            Err(CodecError::BadTag {
                what: "GcBundleMsg",
                tag: 3
            })
        );
        assert_eq!(
            BundledAaMsg::from_bytes(&[0, 0, 0]),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn absurd_report_length_is_rejected_before_allocation() {
        // tag 1, iter, count = u32::MAX, no entries.
        let mut bytes = vec![1u8];
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            AsyncAaMsg::from_bytes(&bytes),
            Err(CodecError::BadLength {
                announced: u32::MAX as usize
            })
        );
    }
}
