//! The authenticated wire envelope every frame carries.
//!
//! A [`WrapperMsg`] wraps one transport event — handshake, protocol
//! payload, virtual-time promise, or completion notice — in a fixed
//! little-endian header plus an opaque body, tagged with SipHash-2-4
//! over everything that precedes the tag. The header carries the two
//! sequence spaces the transport needs:
//!
//! * `wire_seq` — per directed link, strictly increasing over **all**
//!   frames; the receiver's replay filter (a stale or repeated number is
//!   dropped before delivery).
//! * `lseq` — per directed link, counting **Data** frames only; the
//!   ordinal fed to the deterministic delay function, so both a
//!   networked receiver and the in-process reference compute the same
//!   [`async_net::link_delay`] for the same message.
//!
//! `vsend`/`vdeliver` are IEEE-754 bit patterns of the sender's virtual
//! clock: on Data frames the send and scheduled-delivery times, on Null
//! frames the sender's promise that no future Data will have
//! `vdeliver` below `vsend` (the Chandy–Misra–Bryant null message).

use crate::codec::{CodecError, Reader, WireCodec};
use crate::mac::{siphash24, MacKey};

/// Envelope discriminant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Connection handshake: body is config fingerprint + wire version.
    Hello,
    /// A protocol payload scheduled for virtual time `vdeliver`.
    Data,
    /// A virtual-time promise (no payload): no future Data on this link
    /// will be scheduled before `vsend`.
    Null,
    /// The sender has produced its output and will send no more Data.
    Done,
    /// Acknowledges a received `Done` (no payload). `Done` frames are
    /// re-announced on a wall-clock keepalive until acknowledged, so a
    /// completion notice lost on a live-but-lossy link cannot stall the
    /// peer's termination.
    DoneAck,
}

impl FrameKind {
    fn tag(self) -> u8 {
        match self {
            FrameKind::Hello => 0,
            FrameKind::Data => 1,
            FrameKind::Null => 2,
            FrameKind::Done => 3,
            FrameKind::DoneAck => 4,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, CodecError> {
        match tag {
            0 => Ok(FrameKind::Hello),
            1 => Ok(FrameKind::Data),
            2 => Ok(FrameKind::Null),
            3 => Ok(FrameKind::Done),
            4 => Ok(FrameKind::DoneAck),
            tag => Err(CodecError::BadTag {
                what: "FrameKind",
                tag,
            }),
        }
    }
}

/// Wire protocol version, carried in Hello bodies; bumped on any layout
/// change so mismatched builds fail the handshake instead of
/// misinterpreting frames. Version 2 added the reverse-link HaveSet to
/// the Hello body (crash-recovery resend negotiation) and the
/// `DoneAck` keepalive acknowledgement.
pub const WIRE_VERSION: u32 = 2;

/// Header bytes preceding the body: kind(1) + from(4) + to(4) +
/// wire_seq(8) + lseq(8) + vsend(8) + vdeliver(8) + body_len(4).
pub const HEADER_LEN: usize = 45;

/// The authenticated envelope. See the module docs for field semantics.
#[derive(Clone, Debug, PartialEq)]
pub struct WrapperMsg {
    /// What this frame is.
    pub kind: FrameKind,
    /// Sender party index.
    pub from: u32,
    /// Intended receiver party index (MAC'd, so a frame cannot be
    /// redirected between links sharing a pair key).
    pub to: u32,
    /// Per-directed-link all-frames counter (replay filter).
    pub wire_seq: u64,
    /// Per-directed-link Data ordinal (delay derivation); 0 on non-Data.
    pub lseq: u64,
    /// Sender virtual time (bit-exact f64).
    pub vsend: f64,
    /// Scheduled virtual delivery time; equals `vsend` on non-Data.
    pub vdeliver: f64,
    /// Opaque payload (codec-encoded protocol message, or Hello info).
    pub body: Vec<u8>,
    /// SipHash-2-4 over header + body under the pair key.
    pub mac: u64,
}

impl WrapperMsg {
    /// The bytes the MAC covers: the full header and body, everything
    /// except the trailing tag itself.
    #[must_use]
    pub fn mac_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.body.len());
        out.push(self.kind.tag());
        out.extend_from_slice(&self.from.to_le_bytes());
        out.extend_from_slice(&self.to.to_le_bytes());
        out.extend_from_slice(&self.wire_seq.to_le_bytes());
        out.extend_from_slice(&self.lseq.to_le_bytes());
        out.extend_from_slice(&self.vsend.to_bits().to_le_bytes());
        out.extend_from_slice(&self.vdeliver.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.body.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Returns the envelope with its MAC computed under `key`.
    #[must_use]
    pub fn signed(mut self, key: MacKey) -> Self {
        self.mac = siphash24(key, &self.mac_bytes());
        self
    }

    /// Whether the stored MAC verifies under `key`.
    #[must_use]
    pub fn verify(&self, key: MacKey) -> bool {
        siphash24(key, &self.mac_bytes()) == self.mac
    }

    /// Serializes header + body + MAC tag.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.mac_bytes();
        out.extend_from_slice(&self.mac.to_le_bytes());
        out
    }

    /// Parses an envelope from a complete frame payload.
    ///
    /// Purely structural — MAC verification is a separate, explicit
    /// step ([`WrapperMsg::verify`]) so rejects can be counted apart
    /// from malformed frames.
    ///
    /// # Errors
    ///
    /// A [`CodecError`] if the bytes are not exactly one well-formed
    /// envelope (bad kind tag, body length mismatch, truncation,
    /// trailing bytes).
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        let kind = FrameKind::from_tag(r.u8()?)?;
        let from = r.u32()?;
        let to = r.u32()?;
        let wire_seq = r.u64()?;
        let lseq = r.u64()?;
        let vsend = f64::from_bits(r.u64()?);
        let vdeliver = f64::from_bits(r.u64()?);
        let body_len = r.u32()? as usize;
        // Exactly body + 8-byte MAC must remain.
        if r.remaining() != body_len + 8 {
            return Err(if r.remaining() < body_len + 8 {
                CodecError::Truncated
            } else {
                CodecError::TrailingBytes {
                    extra: r.remaining() - body_len - 8,
                }
            });
        }
        let body = r.bytes(body_len)?.to_vec();
        let mac = r.u64()?;
        Ok(WrapperMsg {
            kind,
            from,
            to,
            wire_seq,
            lseq,
            vsend,
            vdeliver,
            body,
            mac,
        })
    }
}

/// Hard cap on the number of non-contiguous HaveSet entries a Hello may
/// carry; an honest node's gaps are bounded by in-flight traffic, so
/// anything larger is garbage or an attack.
pub const MAX_HAVE_EXTRAS: usize = 1 << 14;

/// The Hello body: proves both ends run the same wire layout and the
/// same experiment configuration before any protocol traffic flows, and
/// (since wire version 2) reports which Data `lseq`s the sender already
/// holds on the **reverse** link, so a reconnecting peer can resend
/// exactly the frames lost to the crash or reset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HelloBody {
    /// Fingerprint of the run configuration (tree, inputs, seed, n, t,
    /// min_delay); mismatch aborts the connection.
    pub config_fp: u64,
    /// Wire protocol version.
    pub version: u32,
    /// All Data `lseq`s below this on the reverse link have been
    /// received (contiguous prefix).
    pub have_prefix: u64,
    /// Received `lseq`s at or above `have_prefix` (out-of-order tail),
    /// strictly increasing.
    pub have_extras: Vec<u64>,
}

impl HelloBody {
    /// Whether the sender reported holding Data ordinal `lseq` on the
    /// reverse link.
    #[must_use]
    pub fn has(&self, lseq: u64) -> bool {
        lseq < self.have_prefix || self.have_extras.binary_search(&lseq).is_ok()
    }
}

impl WireCodec for HelloBody {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.config_fp.to_le_bytes());
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.have_prefix.to_le_bytes());
        out.extend_from_slice(&(self.have_extras.len() as u32).to_le_bytes());
        for lseq in &self.have_extras {
            out.extend_from_slice(&lseq.to_le_bytes());
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let config_fp = r.u64()?;
        let version = r.u32()?;
        let have_prefix = r.u64()?;
        let count = r.u32()? as usize;
        if count > MAX_HAVE_EXTRAS {
            return Err(CodecError::BadLength { announced: count });
        }
        let mut have_extras = Vec::with_capacity(count);
        for _ in 0..count {
            have_extras.push(r.u64()?);
        }
        Ok(HelloBody {
            config_fp,
            version,
            have_prefix,
            have_extras,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::pair_key;

    fn sample() -> WrapperMsg {
        WrapperMsg {
            kind: FrameKind::Data,
            from: 1,
            to: 2,
            wire_seq: 17,
            lseq: 4,
            vsend: 1.25,
            vdeliver: 2.125,
            body: vec![9, 8, 7],
            mac: 0,
        }
    }

    #[test]
    fn envelope_roundtrips_bit_exactly() {
        let key = pair_key(99, 1, 2);
        let msg = sample().signed(key);
        let bytes = msg.encode();
        assert_eq!(bytes.len(), HEADER_LEN + 3 + 8);
        let back = WrapperMsg::decode(&bytes).unwrap();
        assert_eq!(back, msg);
        assert!(back.verify(key));
    }

    #[test]
    fn verification_fails_on_any_header_or_body_change() {
        let key = pair_key(99, 1, 2);
        let msg = sample().signed(key);
        for (i, _) in msg.encode().iter().enumerate() {
            let mut bytes = msg.encode();
            bytes[i] ^= 1;
            // Flips in the kind tag or body_len can make the frame
            // structurally invalid instead — equally rejected.
            if let Ok(tampered) = WrapperMsg::decode(&bytes) {
                assert!(
                    !tampered.verify(key),
                    "bit flip at byte {i} went undetected"
                );
            }
        }
    }

    #[test]
    fn wrong_key_fails_verification() {
        let msg = sample().signed(pair_key(99, 1, 2));
        assert!(!msg.verify(pair_key(99, 1, 3)));
        assert!(!msg.verify(pair_key(98, 1, 2)));
    }

    #[test]
    fn body_length_must_match_exactly() {
        let msg = sample().signed(pair_key(99, 1, 2));
        let mut truncated = msg.encode();
        truncated.pop();
        assert_eq!(WrapperMsg::decode(&truncated), Err(CodecError::Truncated));
        let mut padded = msg.encode();
        padded.push(0);
        assert_eq!(
            WrapperMsg::decode(&padded),
            Err(CodecError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn hello_body_roundtrips() {
        let h = HelloBody {
            config_fp: 0xfeed_f00d,
            version: WIRE_VERSION,
            have_prefix: 12,
            have_extras: vec![14, 17, 900],
        };
        assert_eq!(HelloBody::from_bytes(&h.to_bytes()).unwrap(), h);
        assert!(h.has(0) && h.has(11) && h.has(14) && h.has(900));
        assert!(!h.has(12) && !h.has(15) && !h.has(901));
    }

    #[test]
    fn hello_body_rejects_absurd_have_lists() {
        let mut bytes = HelloBody {
            config_fp: 1,
            version: WIRE_VERSION,
            have_prefix: 0,
            have_extras: Vec::new(),
        }
        .to_bytes();
        // Overwrite the extras count with an absurd value.
        let count_at = 8 + 4 + 8;
        bytes[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            HelloBody::from_bytes(&bytes),
            Err(CodecError::BadLength { .. }) | Err(CodecError::Truncated)
        ));
    }
}
