//! An in-process loopback cluster: `n` real TCP nodes, one thread each.
//!
//! This is the harness the integration tests and the differential gate
//! drive. It is *not* a simulator — every byte goes through the kernel's
//! loopback TCP stack, with real reader/writer threads, real handshakes,
//! and the full MAC/replay machinery. Port assignment is race-free: all
//! `n` listeners are bound on ephemeral ports **before** any node
//! starts, so the full address vector is known up front (the
//! multi-process `treeaa cluster` launcher replays the same idea over
//! stdin/stdout).

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

use aa_trace::{merge_traces, Trace};
use sim_net::{FaultPlan, Outcome};
use tree_model::VertexId;

use crate::chaos::{spawn_chaos_proxy, ChaosConfig};
use crate::gate::GateCase;
use crate::node::{
    run_node_durable, Durability, NetStats, NodeConfig, NodeReport, ReconnectPolicy,
};

/// What a loopback cluster run produced.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Per-party outcomes.
    pub outcomes: Vec<Outcome<VertexId>>,
    /// All nodes' traces merged into one canonical trace (see
    /// [`aa_trace::merge_traces`]).
    pub merged_trace: Trace,
    /// Per-node transport counters.
    pub stats: Vec<NetStats>,
    /// Per-node final virtual times.
    pub vtimes: Vec<f64>,
}

/// Builds the `NodeConfig` for party `me` of `case` — shared between
/// the thread cluster here and the `treeaa serve` process entry point.
#[must_use]
pub fn node_config(case: &GateCase, me: usize, peers: Vec<SocketAddr>, secret: u64) -> NodeConfig {
    let mut cfg = NodeConfig::new(
        me,
        case.n(),
        case.t,
        peers,
        secret,
        case.config_fp(),
        case.seed,
    );
    cfg.min_delay = case.min_delay;
    cfg.label = case.label.clone();
    cfg
}

/// Chaos injection for a loopback cluster run: one [`crate::chaos`]
/// proxy is spawned in front of every node's listener, all driven by
/// the same plan.
#[derive(Clone, Debug)]
pub struct ClusterChaos {
    /// The fault script (use an eventually-connected plan when the run
    /// is expected to terminate).
    pub plan: FaultPlan,
    /// Wall-clock milliseconds per plan round.
    pub round_ms: u64,
}

/// Optional knobs for [`run_local_cluster_opts`].
#[derive(Clone, Debug)]
pub struct ClusterOpts {
    /// Shared cluster secret.
    pub secret: u64,
    /// Reconnect policy override (defaults to the transport default;
    /// chaos and recovery runs want [`ReconnectPolicy::patient`]).
    pub reconnect: Option<ReconnectPolicy>,
    /// Wall-clock cap override.
    pub wall_timeout: Option<Duration>,
    /// Attach a WAL per node (`node{i}.wal` inside this directory).
    pub wal_dir: Option<PathBuf>,
    /// Parties that replay their existing WAL instead of starting
    /// fresh (only meaningful with `wal_dir`).
    pub recover: Vec<usize>,
    /// Front every node with a fault-injecting relay.
    pub chaos: Option<ClusterChaos>,
}

impl ClusterOpts {
    /// Plain options: just the secret, everything else default.
    #[must_use]
    pub fn new(secret: u64) -> Self {
        ClusterOpts {
            secret,
            reconnect: None,
            wall_timeout: None,
            wal_dir: None,
            recover: Vec::new(),
            chaos: None,
        }
    }
}

/// Runs `case` as `n` threads over real loopback sockets and merges the
/// results.
///
/// # Errors
///
/// The first node failure (handshake, timeout, stall) or trace-merge
/// inconsistency, as text.
pub fn run_local_cluster(case: &GateCase, secret: u64) -> Result<ClusterReport, String> {
    run_local_cluster_opts(case, &ClusterOpts::new(secret))
}

/// [`run_local_cluster`] with durability, recovery, and chaos knobs.
///
/// # Errors
///
/// The first node failure (handshake, timeout, stall, recovery) or
/// trace-merge inconsistency, as text.
///
/// # Panics
///
/// Panics if a chaos proxy cannot be bound on loopback.
pub fn run_local_cluster_opts(
    case: &GateCase,
    opts: &ClusterOpts,
) -> Result<ClusterReport, String> {
    let n = case.n();
    case.protocol_config()?;
    let listeners = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| e.to_string())?;
    let real_addrs = listeners
        .iter()
        .map(TcpListener::local_addr)
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| e.to_string())?;

    // With chaos on, peers dial each node through its personal relay.
    let mut proxies = Vec::new();
    let peers: Vec<SocketAddr> = if let Some(chaos) = &opts.chaos {
        let mut dial = Vec::with_capacity(n);
        for (i, &addr) in real_addrs.iter().enumerate() {
            let proxy = spawn_chaos_proxy(
                addr,
                ChaosConfig {
                    plan: chaos.plan.clone(),
                    node: i,
                    round_ms: chaos.round_ms,
                },
            )
            .expect("bind chaos proxy");
            dial.push(proxy.addr);
            proxies.push(proxy);
        }
        dial
    } else {
        real_addrs
    };

    let mut handles = Vec::with_capacity(n);
    for (me, listener) in listeners.into_iter().enumerate() {
        let mut cfg = node_config(case, me, peers.clone(), opts.secret);
        if let Some(policy) = opts.reconnect {
            cfg.reconnect = policy;
        }
        if let Some(cap) = opts.wall_timeout {
            cfg.wall_timeout = cap;
        }
        let durability = opts.wal_dir.as_ref().map(|dir| Durability {
            wal_path: dir.join(format!("node{me}.wal")),
            recover: opts.recover.contains(&me),
        });
        let party = case.party(me);
        handles.push(thread::spawn(move || {
            run_node_durable(
                &cfg,
                listener,
                party,
                durability.as_ref(),
                |p| p.state_fingerprint(),
                || {},
            )
        }));
    }

    let mut reports: Vec<NodeReport<Outcome<VertexId>>> = Vec::with_capacity(n);
    let mut errors = Vec::new();
    for (me, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(Ok(report)) => reports.push(report),
            Ok(Err(e)) => errors.push(format!("node {me}: {e}")),
            Err(_) => errors.push(format!("node {me}: panicked")),
        }
    }
    if !errors.is_empty() {
        return Err(errors.join("; "));
    }

    let outcomes = reports
        .iter()
        .enumerate()
        .map(|(me, r)| r.output.clone().ok_or(me))
        .collect::<Result<Vec<_>, usize>>()
        .map_err(|me| format!("node {me} terminated without an output"))?;
    let traces: Vec<Trace> = reports.iter().map(|r| r.trace.clone()).collect();
    let merged_trace = merge_traces(&traces)?;
    Ok(ClusterReport {
        outcomes,
        merged_trace,
        stats: reports.iter().map(|r| r.stats).collect(),
        vtimes: reports.iter().map(|r| r.vtime).collect(),
    })
}
