//! An in-process loopback cluster: `n` real TCP nodes, one thread each.
//!
//! This is the harness the integration tests and the differential gate
//! drive. It is *not* a simulator — every byte goes through the kernel's
//! loopback TCP stack, with real reader/writer threads, real handshakes,
//! and the full MAC/replay machinery. Port assignment is race-free: all
//! `n` listeners are bound on ephemeral ports **before** any node
//! starts, so the full address vector is known up front (the
//! multi-process `treeaa cluster` launcher replays the same idea over
//! stdin/stdout).

use std::net::{SocketAddr, TcpListener};
use std::thread;

use aa_trace::{merge_traces, Trace};
use sim_net::Outcome;
use tree_model::VertexId;

use crate::gate::GateCase;
use crate::node::{run_node, NetStats, NodeConfig, NodeReport};

/// What a loopback cluster run produced.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Per-party outcomes.
    pub outcomes: Vec<Outcome<VertexId>>,
    /// All nodes' traces merged into one canonical trace (see
    /// [`aa_trace::merge_traces`]).
    pub merged_trace: Trace,
    /// Per-node transport counters.
    pub stats: Vec<NetStats>,
    /// Per-node final virtual times.
    pub vtimes: Vec<f64>,
}

/// Builds the `NodeConfig` for party `me` of `case` — shared between
/// the thread cluster here and the `treeaa serve` process entry point.
#[must_use]
pub fn node_config(case: &GateCase, me: usize, peers: Vec<SocketAddr>, secret: u64) -> NodeConfig {
    let mut cfg = NodeConfig::new(
        me,
        case.n(),
        case.t,
        peers,
        secret,
        case.config_fp(),
        case.seed,
    );
    cfg.min_delay = case.min_delay;
    cfg.label = case.label.clone();
    cfg
}

/// Runs `case` as `n` threads over real loopback sockets and merges the
/// results.
///
/// # Errors
///
/// The first node failure (handshake, timeout, stall) or trace-merge
/// inconsistency, as text.
pub fn run_local_cluster(case: &GateCase, secret: u64) -> Result<ClusterReport, String> {
    let n = case.n();
    case.protocol_config()?;
    let listeners = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| e.to_string())?;
    let peers = listeners
        .iter()
        .map(TcpListener::local_addr)
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| e.to_string())?;

    let mut handles = Vec::with_capacity(n);
    for (me, listener) in listeners.into_iter().enumerate() {
        let cfg = node_config(case, me, peers.clone(), secret);
        let party = case.party(me);
        handles.push(thread::spawn(move || {
            run_node(&cfg, listener, party, || {})
        }));
    }

    let mut reports: Vec<NodeReport<Outcome<VertexId>>> = Vec::with_capacity(n);
    let mut errors = Vec::new();
    for (me, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(Ok(report)) => reports.push(report),
            Ok(Err(e)) => errors.push(format!("node {me}: {e}")),
            Err(_) => errors.push(format!("node {me}: panicked")),
        }
    }
    if !errors.is_empty() {
        return Err(errors.join("; "));
    }

    let outcomes = reports
        .iter()
        .enumerate()
        .map(|(me, r)| r.output.clone().ok_or(me))
        .collect::<Result<Vec<_>, usize>>()
        .map_err(|me| format!("node {me} terminated without an output"))?;
    let traces: Vec<Trace> = reports.iter().map(|r| r.trace.clone()).collect();
    let merged_trace = merge_traces(&traces)?;
    Ok(ClusterReport {
        outcomes,
        merged_trace,
        stats: reports.iter().map(|r| r.stats).collect(),
        vtimes: reports.iter().map(|r| r.vtime).collect(),
    })
}
