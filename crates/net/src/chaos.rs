//! A seeded fault-injecting TCP relay ("chaos proxy").
//!
//! Each proxy fronts one node's listener: peers dial the proxy address
//! instead of the node, and every accepted connection is relayed to the
//! real listener through a pair of forwarding threads that inject
//! faults *below* the frame layer — connection resets, byte
//! corruption, latency spikes, and wholesale blackouts — driven by the
//! same [`sim_net::FaultPlan`] language the simulators use.
//!
//! The mapping from a round-based plan to a byte stream is necessarily
//! approximate (the proxy cannot see virtual time):
//!
//! * Rounds advance on the wall clock, [`ChaosConfig::round_ms`] per
//!   round, starting from the proxy's spawn instant.
//! * A crash window for the fronted node, or any active partition
//!   whose `side` contains it, becomes a **blackout**: new connections
//!   are refused and established relays stall until the window passes.
//!   (Treating the whole `side` as severed from everyone over-cuts
//!   links *within* the side; for transport-robustness testing, harsher
//!   is fine.)
//! * `drop_permille` becomes a per-chunk connection reset,
//!   `dup_permille` a per-chunk single-byte corruption (the MAC layer
//!   turns it into a frame loss), and `delay_spike_permille` a
//!   per-chunk forwarding stall.
//!
//! Everything is deterministic in `(plan.seed, node, connection
//! ordinal, direction)`, so a chaos run can be rerun with the same
//! fault script — though wall-clock interleaving keeps byte-level
//! timing approximate, which is exactly why chaos runs assert in-hull
//! agreement rather than the differential gate.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use async_net::splitmix64;
use sim_net::{CrashFault, FaultPlan, Partition};

/// How a [`ChaosProxy`] distorts the traffic it relays.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// The fault script.
    pub plan: FaultPlan,
    /// The party index the proxy fronts (selects this node's crash and
    /// partition windows from the plan).
    pub node: usize,
    /// Wall-clock milliseconds per plan round.
    pub round_ms: u64,
}

struct ProxyShared {
    cfg: ChaosConfig,
    target: Mutex<SocketAddr>,
    stop: AtomicBool,
    epoch: Instant,
    conn_counter: AtomicU64,
    relays: Mutex<Vec<JoinHandle<()>>>,
}

impl ProxyShared {
    fn round(&self) -> u32 {
        let elapsed = self.epoch.elapsed().as_millis() as u64;
        (elapsed / self.cfg.round_ms.max(1)) as u32 + 1
    }

    /// Whether the fronted node is currently cut off from the world.
    fn blackout(&self) -> bool {
        let r = self.round();
        if self.cfg.plan.crashed_in(self.cfg.node, r) {
            return true;
        }
        self.cfg
            .plan
            .partitions
            .iter()
            .any(|p| p.active(r) && p.side.contains(&self.cfg.node))
    }
}

/// A running chaos relay in front of one node's listener.
pub struct ChaosProxy {
    /// The address peers should dial instead of the node's own.
    pub addr: SocketAddr,
    shared: Arc<ProxyShared>,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Stops the relay and joins its threads. Established connections
    /// are cut.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Points the relay at a new backend address. Established
    /// connections keep their old backend; new ones dial `target`.
    ///
    /// This is what lets a supervisor give each node a *stable*
    /// address: after a crashed node restarts on a fresh ephemeral
    /// port, the supervisor retargets its relay and the peers'
    /// reconnect dials (still aimed at the relay) reach the new
    /// incarnation.
    pub fn retarget(&self, target: SocketAddr) {
        *self.shared.target.lock().expect("chaos lock") = target;
    }

    fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let relays = std::mem::take(&mut *self.shared.relays.lock().expect("chaos lock"));
        for h in relays {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns a chaos proxy relaying to `target` (a node's real listener
/// address).
///
/// # Errors
///
/// An [`std::io::Error`] if the proxy listener cannot be bound.
pub fn spawn_chaos_proxy(target: SocketAddr, cfg: ChaosConfig) -> std::io::Result<ChaosProxy> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shared = Arc::new(ProxyShared {
        cfg,
        target: Mutex::new(target),
        stop: AtomicBool::new(false),
        epoch: Instant::now(),
        conn_counter: AtomicU64::new(0),
        relays: Mutex::new(Vec::new()),
    });
    let acceptor = {
        let shared = Arc::clone(&shared);
        thread::spawn(move || accept_loop(&listener, &shared))
    };
    Ok(ChaosProxy {
        addr,
        shared,
        acceptor: Some(acceptor),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ProxyShared>) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((client, _)) => {
                if shared.blackout() {
                    // Refuse: the fronted node is "crashed"/"severed".
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                }
                let target = *shared.target.lock().expect("chaos lock");
                let Ok(server) = TcpStream::connect_timeout(&target, Duration::from_millis(250))
                else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                let conn = shared.conn_counter.fetch_add(1, Ordering::SeqCst);
                spawn_relay_pair(shared, client, server, conn);
            }
            Err(_) => thread::sleep(Duration::from_millis(3)),
        }
    }
}

fn spawn_relay_pair(shared: &Arc<ProxyShared>, client: TcpStream, server: TcpStream, conn: u64) {
    client.set_nodelay(true).ok();
    server.set_nodelay(true).ok();
    let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    let base = shared.cfg.plan.seed
        ^ (shared.cfg.node as u64).wrapping_mul(0x9e37_79b9)
        ^ conn.wrapping_mul(0x1000_0001);
    let mut relays = shared.relays.lock().expect("chaos lock");
    for (dir, (from, to)) in [(0u64, (client, s2)), (1u64, (server, c2))] {
        let sh = Arc::clone(shared);
        let seed = splitmix64(base ^ (dir << 32));
        relays.push(thread::spawn(move || relay(&sh, from, to, seed)));
    }
}

/// One forwarding direction of one relayed connection.
fn relay(shared: &ProxyShared, mut from: TcpStream, to: TcpStream, seed: u64) {
    // Short read timeouts keep the thread responsive to `stop`.
    from.set_read_timeout(Some(Duration::from_millis(100))).ok();
    let mut to = to;
    let mut state = seed;
    let mut buf = [0u8; 1024];
    let mut next = || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(state)
    };
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let k = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(k) => k,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        // A blackout stalls the stream without closing it: bytes queue
        // behind the window like a long network outage.
        while shared.blackout() && !shared.stop.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(5));
        }
        let plan = &shared.cfg.plan;
        let roll = (next() % 1000) as u32;
        if roll < plan.drop_permille {
            // Connection reset: both directions die; the nodes'
            // reconnect machinery takes over.
            break;
        }
        if roll < plan.drop_permille + plan.dup_permille {
            // Corrupt one byte; the MAC layer rejects the frame and the
            // reject-burst cut heals any framing desync.
            let idx = (next() % k as u64) as usize;
            buf[idx] ^= 1 << (next() % 8);
        }
        if roll < plan.drop_permille + plan.dup_permille + plan.delay_spike_permille {
            thread::sleep(Duration::from_millis(2 + next() % 18));
        }
        if to.write_all(&buf[..k]).is_err() {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Generates a mild, eventually-connected fault plan from a seed: low
/// per-chunk fault rates, and only finite crash/partition windows, so
/// every run must still terminate with in-hull outputs.
#[must_use]
pub fn seeded_plan(seed: u64, n: usize) -> FaultPlan {
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(state)
    };
    let drop_permille = (next() % 25) as u32;
    let dup_permille = (next() % 20) as u32;
    let delay_spike_permille = (next() % 80) as u32;
    let mut partitions = Vec::new();
    if next() % 2 == 0 {
        let from_round = 2 + (next() % 3) as u32;
        partitions.push(Partition {
            side: vec![(next() % n as u64) as usize],
            from_round,
            heal_round: from_round + 1 + (next() % 2) as u32,
        });
    }
    let mut crashes = Vec::new();
    if next() % 3 == 0 {
        let crash_round = 2 + (next() % 4) as u32;
        crashes.push(CrashFault {
            party: (next() % n as u64) as usize,
            crash_round,
            recover_round: crash_round + 1 + (next() % 2) as u32,
        });
    }
    let plan = FaultPlan {
        seed,
        drop_permille,
        dup_permille,
        delay_spike_permille,
        partitions,
        crashes,
    };
    debug_assert!(plan.validate(n).is_ok());
    debug_assert!(plan.eventually_connected());
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_valid_and_eventually_connected() {
        for seed in 0..50 {
            let plan = seeded_plan(seed, 4);
            plan.validate(4).expect("valid plan");
            assert!(plan.eventually_connected(), "seed {seed}");
            assert!(plan.drop_permille < 25);
        }
    }

    #[test]
    fn a_clean_proxy_relays_bytes_both_ways() {
        let target = TcpListener::bind("127.0.0.1:0").expect("bind");
        let target_addr = target.local_addr().expect("addr");
        let proxy = spawn_chaos_proxy(
            target_addr,
            ChaosConfig {
                plan: FaultPlan::none(),
                node: 0,
                round_ms: 1000,
            },
        )
        .expect("proxy");

        let echo = thread::spawn(move || {
            let (mut s, _) = target.accept().expect("accept");
            let mut buf = [0u8; 5];
            s.read_exact(&mut buf).expect("read");
            s.write_all(&buf).expect("write");
        });

        let mut client = TcpStream::connect(proxy.addr).expect("dial proxy");
        client.write_all(b"hello").expect("send");
        let mut back = [0u8; 5];
        client.read_exact(&mut back).expect("echo");
        assert_eq!(&back, b"hello");
        echo.join().expect("echo thread");
        proxy.stop();
    }

    #[test]
    fn a_blacked_out_proxy_refuses_new_connections() {
        let target = TcpListener::bind("127.0.0.1:0").expect("bind");
        let target_addr = target.local_addr().expect("addr");
        // Node 0 is crashed from round 1 through u32::MAX: permanent
        // blackout from the proxy's point of view.
        let plan = FaultPlan {
            crashes: vec![CrashFault {
                party: 0,
                crash_round: 1,
                recover_round: u32::MAX,
            }],
            ..FaultPlan::none()
        };
        let proxy = spawn_chaos_proxy(
            target_addr,
            ChaosConfig {
                plan,
                node: 0,
                round_ms: 10,
            },
        )
        .expect("proxy");

        let mut client = TcpStream::connect(proxy.addr).expect("dial proxy");
        client
            .set_read_timeout(Some(Duration::from_millis(500)))
            .expect("timeout");
        let mut buf = [0u8; 1];
        // The proxy cuts the connection instead of relaying it.
        match client.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(_) => panic!("blacked-out proxy relayed data"),
        }
        proxy.stop();
    }
}
