//! Length-prefixed framing over a byte stream.
//!
//! Every frame on the wire is `u32` big-endian length followed by that
//! many payload bytes. [`FrameBuffer`] is the incremental decoder both
//! reader threads and the property tests drive: feed it arbitrary chunks,
//! pull complete frames out. Truncated input is simply "not yet a frame";
//! an oversized length prefix is a hard protocol error (the peer is
//! babbling or the stream is garbage) and poisons the buffer — the
//! connection must be dropped, never resynchronized by guesswork.

use std::fmt;

/// Hard cap on a frame's payload size (1 MiB). Protocol frames are tiny
/// (tens of bytes); anything near this is an attack or a desynced stream.
pub const MAX_FRAME: usize = 1 << 20;

/// The length-prefix header size.
pub const PREFIX_LEN: usize = 4;

/// A framing-layer protocol error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix announced more than [`MAX_FRAME`] bytes.
    Oversized {
        /// The announced payload length.
        announced: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { announced } => {
                write!(f, "frame announces {announced} bytes > max {MAX_FRAME}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Wraps `payload` in a length prefix.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME`] — encoders construct frames
/// locally and never legitimately approach the cap.
#[must_use]
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME, "oversized outgoing frame");
    let mut out = Vec::with_capacity(PREFIX_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental frame decoder: push bytes in any chunking, pop complete
/// frames. Once an oversized prefix is seen the buffer is poisoned and
/// every further [`FrameBuffer::next_frame`] returns the same error.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily).
    pos: usize,
    poisoned: Option<FrameError>,
}

impl FrameBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends raw stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pops the next complete frame payload, `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] if the length prefix exceeds
    /// [`MAX_FRAME`]; the buffer stays poisoned afterwards.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < PREFIX_LEN {
            return Ok(None);
        }
        let announced =
            u32::from_be_bytes(avail[..PREFIX_LEN].try_into().expect("4 bytes")) as usize;
        if announced > MAX_FRAME {
            let err = FrameError::Oversized { announced };
            self.poisoned = Some(err.clone());
            return Err(err);
        }
        if avail.len() < PREFIX_LEN + announced {
            return Ok(None);
        }
        let payload = avail[PREFIX_LEN..PREFIX_LEN + announced].to_vec();
        self.pos += PREFIX_LEN + announced;
        // Compact once the consumed prefix dominates.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_across_arbitrary_chunking() {
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![7], vec![1, 2, 3], vec![0xff; 300]];
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&frame(p));
        }
        for chunk in [1usize, 2, 3, 5, 7, stream.len()] {
            let mut fb = FrameBuffer::new();
            let mut out = Vec::new();
            for piece in stream.chunks(chunk) {
                fb.push(piece);
                while let Some(f) = fb.next_frame().unwrap() {
                    out.push(f);
                }
            }
            assert_eq!(out, payloads, "chunk size {chunk}");
            assert_eq!(fb.pending(), 0);
        }
    }

    #[test]
    fn truncated_input_is_not_an_error() {
        let mut fb = FrameBuffer::new();
        fb.push(&frame(b"abcdef")[..7]);
        assert_eq!(fb.next_frame().unwrap(), None);
        assert_eq!(fb.pending(), 7);
    }

    #[test]
    fn oversized_prefix_poisons_the_buffer() {
        let mut fb = FrameBuffer::new();
        fb.push(&((MAX_FRAME as u32) + 1).to_be_bytes());
        let err = fb.next_frame().unwrap_err();
        assert!(matches!(err, FrameError::Oversized { .. }));
        // Still poisoned even after valid-looking bytes arrive.
        fb.push(&frame(b"ok"));
        assert!(fb.next_frame().is_err());
    }
}
